//! A small, dependency-free, fully deterministic property-testing shim.
//!
//! This workspace builds in offline environments where the real `proptest`
//! crate cannot be fetched, so this crate re-implements the *subset* of the
//! proptest API the workspace's tests use: `Strategy` with `prop_map` /
//! `prop_recursive` / `boxed`, `any::<T>()`, range strategies, tuple
//! strategies, `prop::collection::vec`, `prop::option::of`, `Just`,
//! `prop_oneof!`, and the `proptest!` / `prop_assert*` macros.
//!
//! Differences from real proptest, by design:
//!
//! * **No shrinking.** A failing case panics with the failure message; the
//!   run is deterministic (the RNG is seeded from the test's module path),
//!   so failures reproduce exactly across runs.
//! * `.proptest-regressions` files are ignored.
//! * The case count honours the `PROPTEST_CASES` environment variable, and
//!   defaults to 256 like the real crate.

pub mod test_runner {
    //! Deterministic RNG, configuration and the test-case error type.

    /// Why a single generated case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// The case failed an assertion.
        Fail(String),
        /// The case was rejected by `prop_assume!` (not a failure).
        Reject(String),
    }

    impl TestCaseError {
        /// A failure with the given message.
        pub fn fail(msg: impl Into<String>) -> TestCaseError {
            TestCaseError::Fail(msg.into())
        }

        /// A rejection (assumption not met) with the given message.
        pub fn reject(msg: impl Into<String>) -> TestCaseError {
            TestCaseError::Reject(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TestCaseError::Fail(m) => write!(f, "{m}"),
                TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
            }
        }
    }

    /// Runner configuration (`ProptestConfig` in the prelude).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of cases each property runs.
        pub cases: u32,
    }

    impl Config {
        /// A configuration running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Config {
            Config { cases }
        }

        /// The case count after applying the `PROPTEST_CASES` env override.
        pub fn resolved_cases(&self) -> u32 {
            std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(self.cases)
        }
    }

    impl Default for Config {
        fn default() -> Config {
            Config { cases: 256 }
        }
    }

    /// A deterministic xorshift64* RNG seeded from the test name.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// An RNG seeded by hashing `name` (FNV-1a), so each test gets a
        /// stable, independent stream.
        pub fn for_test(name: &str) -> TestRng {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.as_bytes() {
                h ^= *b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng {
                state: h | 1, // never zero
            }
        }

        /// An RNG from an explicit seed.
        pub fn from_seed(seed: u64) -> TestRng {
            TestRng { state: seed | 1 }
        }

        /// Next 64 uniformly random bits.
        pub fn next_u64(&mut self) -> u64 {
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }

        /// Uniform value in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            self.next_u64() % bound
        }

        /// Uniform float in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }
}

pub mod strategy {
    //! The `Strategy` trait and combinators.

    use crate::test_runner::TestRng;
    use std::rc::Rc;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Builds recursive values: `f` receives a strategy for "smaller"
        /// values and returns a strategy for one more level of structure.
        /// `depth` bounds recursion; the size hints are accepted for API
        /// compatibility and ignored.
        fn prop_recursive<F, S>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            f: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> S,
            S: Strategy<Value = Self::Value> + 'static,
        {
            let leaf = self.boxed();
            let mut current = leaf.clone();
            for _ in 0..depth {
                let deeper = f(current).boxed();
                current = OneOf::new(vec![leaf.clone(), deeper]).boxed();
            }
            current
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Rc::new(self))
        }
    }

    /// A type-erased, cheaply clonable strategy.
    pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.generate(rng)
        }
    }

    /// Always generates a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Picks one of several strategies uniformly (`prop_oneof!`).
    pub struct OneOf<T> {
        choices: Vec<BoxedStrategy<T>>,
    }

    impl<T> OneOf<T> {
        /// A uniform choice among `choices`; must be non-empty.
        pub fn new(choices: Vec<BoxedStrategy<T>>) -> OneOf<T> {
            assert!(!choices.is_empty(), "prop_oneof! needs at least one arm");
            OneOf { choices }
        }
    }

    impl<T> Strategy for OneOf<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.choices.len() as u64) as usize;
            self.choices[i].generate(rng)
        }
    }

    // Integer and float range strategies.
    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let off = (rng.next_u64() as u128) % span;
                    (self.start as i128 + off as i128) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    let off = (rng.next_u64() as u128) % span;
                    (lo as i128 + off as i128) as $t
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    impl Strategy for std::ops::Range<f32> {
        type Value = f32;
        fn generate(&self, rng: &mut TestRng) -> f32 {
            self.start + (rng.unit_f64() as f32) * (self.end - self.start)
        }
    }

    // Tuple strategies: generate each component in order.
    macro_rules! tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
    }

    /// A minimal regex-pattern string strategy. Supports the single form
    /// `[x-y]{m,n}` (one character class with a bounded repeat); any other
    /// pattern falls back to short lowercase ASCII strings.
    impl Strategy for &'static str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            let (lo_ch, hi_ch, min, max) = parse_simple_pattern(self).unwrap_or(('a', 'z', 0, 8));
            let len = min + rng.below((max - min + 1) as u64) as usize;
            (0..len)
                .map(|_| {
                    let span = hi_ch as u32 - lo_ch as u32 + 1;
                    char::from_u32(lo_ch as u32 + rng.below(span as u64) as u32).unwrap_or('a')
                })
                .collect()
        }
    }

    fn parse_simple_pattern(p: &str) -> Option<(char, char, usize, usize)> {
        // "[a-z]{1,12}"
        let rest = p.strip_prefix('[')?;
        let (class, rest) = rest.split_once(']')?;
        let mut chars = class.chars();
        let lo = chars.next()?;
        if chars.next()? != '-' {
            return None;
        }
        let hi = chars.next()?;
        let rest = rest.strip_prefix('{')?;
        let counts = rest.strip_suffix('}')?;
        let (m, n) = counts.split_once(',')?;
        Some((lo, hi, m.parse().ok()?, n.parse().ok()?))
    }
}

pub mod arbitrary {
    //! `any::<T>()` — strategies for "any value of a type".

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical "generate anything" strategy.
    pub trait Arbitrary: Sized {
        /// Generates an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arb_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            rng.unit_f64() * 2.0 - 1.0
        }
    }

    macro_rules! arb_tuple {
        ($(($($t:ident),+))*) => {$(
            impl<$($t: Arbitrary),+> Arbitrary for ($($t,)+) {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    ($($t::arbitrary(rng),)+)
                }
            }
        )*};
    }
    arb_tuple! { (A) (A, B) (A, B, C) (A, B, C, D) }

    /// The strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// A strategy generating arbitrary values of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    //! Collection strategies (`prop::collection::vec`).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// A size bound for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange {
                min: n,
                max_exclusive: n + 1,
            }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange {
                min: r.start,
                max_exclusive: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                min: *r.start(),
                max_exclusive: *r.end() + 1,
            }
        }
    }

    /// Generates `Vec`s whose elements come from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max_exclusive - self.size.min) as u64;
            let len = self.size.min + rng.below(span.max(1)) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A strategy for `Vec`s of `size` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod option {
    //! Option strategies (`prop::option::of`).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Generates `Option`s that are `Some` three times out of four.
    pub struct OptionStrategy<S>(S);

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.0.generate(rng))
            }
        }
    }

    /// A strategy for optional values of `inner`'s type.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }
}

pub mod prelude {
    //! Everything a property test needs, for glob import.

    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// Namespaced access to the strategy modules (`prop::collection::vec`).
    pub mod prop {
        pub use crate::collection;
        pub use crate::option;
    }
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running the body over generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! { ($crate::test_runner::Config::default()) $($rest)* }
    };
}

/// Internal expansion of [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $cfg;
                let cases = config.resolved_cases();
                let mut rng = $crate::test_runner::TestRng::for_test(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                for case in 0..cases {
                    let strat = ($($strat,)+);
                    let ($($arg,)+) =
                        $crate::strategy::Strategy::generate(&strat, &mut rng);
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (move || {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    match outcome {
                        ::std::result::Result::Ok(()) => {}
                        ::std::result::Result::Err(
                            $crate::test_runner::TestCaseError::Reject(_),
                        ) => {}
                        ::std::result::Result::Err(
                            $crate::test_runner::TestCaseError::Fail(msg),
                        ) => {
                            panic!(
                                "property `{}` failed at case {}/{}: {}",
                                stringify!($name),
                                case + 1,
                                cases,
                                msg
                            );
                        }
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}` ({})\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            format!($($fmt)+),
            l,
            r
        );
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Picks uniformly among the listed strategies (weights are accepted and
/// ignored); all arms must generate the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($(
        $weight:literal =>)? $strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $($crate::strategy::Strategy::boxed($strat),)+
        ])
    };
}

/// Rejects the current case unless the assumption holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u64..17, y in 1usize..=4, f in 0.0f64..1.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((1..=4).contains(&y));
            prop_assert!((0.0..1.0).contains(&f));
        }

        #[test]
        fn vec_sizes_respect_range(v in prop::collection::vec(any::<u8>(), 2..5)) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
        }

        #[test]
        fn map_and_oneof_compose(v in prop_oneof![
            (0u8..10).prop_map(|x| x as u32),
            Just(99u32),
        ]) {
            prop_assert!(v < 10 || v == 99);
        }

        #[test]
        fn assume_rejects(x in 0u8..10) {
            prop_assume!(x < 200); // always holds; exercises the macro
            prop_assert!(x < 10);
        }
    }

    #[test]
    fn determinism_same_name_same_stream() {
        use crate::test_runner::TestRng;
        let mut a = TestRng::for_test("x");
        let mut b = TestRng::for_test("x");
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn recursive_strategies_terminate() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;

        #[derive(Debug)]
        #[allow(dead_code)]
        enum Tree {
            Leaf(u8),
            Node(Vec<Tree>),
        }

        fn depth(t: &Tree) -> usize {
            match t {
                Tree::Leaf(_) => 1,
                Tree::Node(c) => 1 + c.iter().map(depth).max().unwrap_or(0),
            }
        }

        let leaf = (0u8..255).prop_map(Tree::Leaf);
        let strat = leaf.prop_recursive(4, 24, 3, |inner| {
            crate::collection::vec(inner, 0..3).prop_map(Tree::Node)
        });
        let mut rng = TestRng::for_test("tree");
        for _ in 0..200 {
            let t = strat.generate(&mut rng);
            assert!(depth(&t) <= 6, "depth bound violated: {t:?}");
        }
    }
}
