//! A small, dependency-free benchmarking shim with the subset of the
//! criterion API this workspace uses.
//!
//! This workspace builds in offline environments where the real `criterion`
//! crate cannot be fetched. The shim runs each benchmark body a small fixed
//! number of times and prints a single timing line per benchmark — enough to
//! smoke-test the bench binaries and compare orders of magnitude, without
//! criterion's statistics, HTML reports, or CLI.

use std::time::Instant;

/// Iterations per benchmark. Deliberately tiny: the shim exists to keep the
/// bench binaries compiling and runnable, not to produce rigorous numbers.
const ITERS: u32 = 10;

/// Prevents the compiler from optimising away a benchmarked value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Throughput annotation attached to a benchmark group (accepted, unused).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier combining a function name and a parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id of the form `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id that is just the parameter.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Passed to benchmark closures; `iter` times the body.
pub struct Bencher {
    label: String,
}

impl Bencher {
    /// Runs `body` repeatedly and prints the mean wall-clock time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut body: F) {
        let start = Instant::now();
        for _ in 0..ITERS {
            black_box(body());
        }
        let mean = start.elapsed() / ITERS;
        println!("bench {:<48} {:>12?}/iter", self.label, mean);
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the sample count (accepted for API compatibility, unused).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Sets the group throughput (accepted for API compatibility, unused).
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Benchmarks `body` under `id` within this group.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, mut body: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            label: format!("{}/{}", self.name, id),
        };
        body(&mut b);
        self
    }

    /// Benchmarks `body` with an input value under `id`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut body: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            label: format!("{}/{}", self.name, id),
        };
        body(&mut b, input);
        self
    }

    /// Ends the group (no-op).
    pub fn finish(&mut self) {}
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _parent: self,
        }
    }

    /// Benchmarks a standalone function.
    pub fn bench_function<F>(&mut self, name: &str, mut body: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            label: name.to_string(),
        };
        body(&mut b);
        self
    }
}

/// Collects benchmark functions into a runner group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Defines `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
