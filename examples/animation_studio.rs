//! Animation as symbolic media: rendering, keying and spatial composition.
//!
//! Exercises the paper's remaining derivation examples: animation → video
//! rendering (type change), chroma keying ("the content of the first video
//! sequence is partially replaced with that of the second"), a wipe
//! transition, and spatial composition (picture-in-picture regions).
//!
//! ```text
//! cargo run --example animation_studio
//! ```

use tbm::derive::{AnimClip, VideoClip};
use tbm::media::animation::{MoveSpec, Point};
use tbm::media::gen::VideoPattern;
use tbm::prelude::*;

const W: u32 = 96;
const H: u32 = 64;

fn main() {
    let mut db = MediaDb::new();

    // ------------------------------------------------------------------
    // A symbolic animation: a green "puck" bounces across the scene on a
    // green-screen background; it rests mid-way (non-continuous medium!).
    // ------------------------------------------------------------------
    let moves = vec![
        (
            MoveSpec::new(1, Point::new(8, 32), Point::new(48, 12), 7, 0xFFFFFF),
            0,
            20,
        ),
        // rest from tick 20 to 30 — "no associated media elements"
        (
            MoveSpec::new(1, Point::new(48, 12), Point::new(88, 52), 7, 0xFFFFFF),
            30,
            20,
        ),
    ];
    let clip = AnimClip::new(moves, TimeSystem::from_hz(10), W, H, 0x00FF00);
    println!(
        "animation: {} movement elements over {} ticks (symbolic size ≈ {} bytes)",
        clip.moves.len(),
        clip.tick_span().map(|(a, b)| b - a).unwrap_or(0),
        MediaValue::Animation(clip.clone()).approx_bytes()
    );
    db.register_value("puck_anim", MediaValue::Animation(clip))
        .unwrap();

    // A live-action background plate.
    let plate = tbm::media::gen::render_frames(VideoPattern::ShiftingGradient, 0, 125, W, H);
    db.register_value(
        "plate",
        MediaValue::Video(VideoClip::new(plate, TimeSystem::PAL)),
    )
    .unwrap();

    // ------------------------------------------------------------------
    // Derivation chain:
    //   rendered  = render(puck_anim)            [animation → video]
    //   keyed     = chroma_key(rendered, plate)  [green replaced by plate]
    // ------------------------------------------------------------------
    db.create_derived(
        "rendered",
        Node::derive(
            Op::RenderAnimation { fps: 25 },
            vec![Node::source("puck_anim")],
        ),
    )
    .unwrap();
    db.create_derived(
        "keyed",
        Node::derive(
            Op::ChromaKey {
                key_rgb: 0x00FF00,
                tolerance: 60,
            },
            vec![Node::source("rendered"), Node::source("plate")],
        ),
    )
    .unwrap();
    let keyed_frames = match db.materialize("keyed").unwrap() {
        MediaValue::Video(v) => v,
        _ => unreachable!(),
    };
    println!(
        "keyed composite: {} frames of {}x{} (every byte derived — nothing stored)",
        keyed_frames.len(),
        W,
        H
    );

    // A wipe transition from the plate into the keyed composite.
    db.create_derived(
        "reveal",
        Node::derive(
            Op::Wipe {
                frames: 25,
                direction: WipeDirection::LeftToRight,
            },
            vec![Node::source("plate"), Node::source("keyed")],
        ),
    )
    .unwrap();

    // ------------------------------------------------------------------
    // Spatial composition: the reveal full-screen, with the raw rendered
    // animation as a picture-in-picture monitor in the corner.
    // ------------------------------------------------------------------
    let mut m = MultimediaObject::new("studio_monitor");
    m.add_component(
        Component::new(
            "main",
            ComponentKind::Video,
            Node::source("reveal"),
            TimePoint::ZERO,
            TimeDelta::from_secs(1),
        )
        .unwrap(),
    )
    .unwrap();
    m.add_component(
        Component::new(
            "pip",
            ComponentKind::Video,
            Node::source("rendered"),
            TimePoint::ZERO,
            TimeDelta::from_secs(1),
        )
        .unwrap()
        .in_region(Region::new(2, 2, 28, 18).at_layer(5)),
    )
    .unwrap();

    let pip_region = m.component("pip").unwrap().region.unwrap();
    let main_region = Region::new(0, 0, W, H);
    println!(
        "spatial relation: pip is {:?} main canvas",
        pip_region.relation_to(&main_region)
    );

    let mut expander = Expander::new();
    for src in ["reveal", "rendered"] {
        expander.add_source(src, db.materialize(src).unwrap());
    }
    let composer = Composer::new(&expander, W, H);
    let t = TimePoint::from_seconds(Rational::new(1, 2));
    let frame = composer.render_video_frame(&m, t).unwrap();
    // Probe: mid-screen should show plate content (wipe half done), corner
    // shows the PiP.
    let mid = frame.get_rgb(W - 6, H / 2);
    let corner = frame.get_rgb(6, 6);
    println!(
        "frame at t=0.5 s rendered; right-edge pixel {:?}, pip pixel {:?}",
        (mid.r, mid.g, mid.b),
        (corner.r, corner.g, corner.b)
    );
    db.add_multimedia(m).unwrap();
    println!(
        "catalog: {} media objects, {} derivation objects, {} multimedia objects",
        db.objects().len(),
        db.derived_from("puck_anim").len() + db.derived_from("plate").len(),
        db.multimedia_objects().len()
    );
}
