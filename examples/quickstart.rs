//! Quickstart: capture → interpret → classify → edit → query → play.
//!
//! Walks one asset through every layer of the model:
//!
//! ```text
//! cargo run --example quickstart
//! ```

use tbm::codec::dct::DctParams;
use tbm::interp::capture;
use tbm::media::gen::{AudioSignal, VideoPattern};
use tbm::player::{schedule_from_interp, CostModel, PlaybackSim};
use tbm::prelude::*;

fn main() {
    // ------------------------------------------------------------------
    // 1. Synthetic capture: 2 seconds of PAL video + CD-quality audio.
    // ------------------------------------------------------------------
    let frames = tbm::media::gen::render_frames(VideoPattern::MovingBar, 0, 50, 160, 120);
    let audio = AudioSignal::Sine {
        hz: 440.0,
        amplitude: 9000,
    }
    .generate(0, 50 * 1764, 44100, 2);

    let mut db = MediaDb::new();
    let cap = capture::capture_av_interleaved(
        db.store_mut(),
        &frames,
        &audio,
        1764, // CD sample pairs per PAL frame (Fig. 2)
        TimeSystem::PAL,
        DctParams::default(),
        Some(QualityFactor::Video(VideoQuality::Vhs)),
    )
    .expect("capture");
    println!("captured BLOB: {} bytes", cap.blob_len);

    // The interpretation was built during capture: descriptors + tables.
    for (name, stream) in cap.interpretation.streams() {
        println!("\n{}", stream.descriptor());
        println!("  [{name}: {} elements]", stream.len());
    }
    db.register_interpretation(cap.interpretation)
        .expect("register");

    // ------------------------------------------------------------------
    // 2. Classification (Fig. 1 categories) of a rebuilt timed stream.
    // ------------------------------------------------------------------
    let (_, vstream) = db.stream_of("video1").expect("stream");
    let tuples: Vec<TimedTuple<tbm::core::SizedElement>> = vstream
        .entries()
        .iter()
        .map(|e| TimedTuple::new(tbm::core::SizedElement::new(e.size), e.start, e.duration))
        .collect();
    let stream =
        TimedStream::from_tuples(MediaType::video("captured"), TimeSystem::PAL, tuples).unwrap();
    println!("\nvideo1 categories: {}", classify(&stream));

    // ------------------------------------------------------------------
    // 3. Non-destructive editing: derivation objects, not copies.
    // ------------------------------------------------------------------
    let edit = Node::derive(
        Op::VideoEdit {
            cuts: vec![EditCut {
                input: 0,
                from: 10,
                to: 40,
            }],
        },
        vec![Node::source("video1")],
    );
    let spec_bytes = edit.spec_size();
    db.create_derived("highlight", edit).expect("derive");
    println!(
        "\nedit stored as a {spec_bytes}-byte derivation object \
         (source stream: {} bytes — untouched)",
        db.stored_bytes("video1").unwrap()
    );
    if let MediaValue::Video(clip) = db.materialize("highlight").expect("expand") {
        println!("expanded highlight: {} frames", clip.len());
    }

    // ------------------------------------------------------------------
    // 4. Structural queries (§1.2).
    // ------------------------------------------------------------------
    println!(
        "VHS-or-better videos: {:?}",
        db.videos_with_quality_at_least(VideoQuality::Vhs)
    );
    let frame_at_1s = db
        .element_bytes_at("video1", TimePoint::from_secs(1))
        .expect("element at 1 s");
    println!("frame at t=1 s: {} encoded bytes", frame_at_1s.len());

    // ------------------------------------------------------------------
    // 5. Playback simulation: does 2× real-time bandwidth suffice?
    // ------------------------------------------------------------------
    let (_, vstream) = db.stream_of("video1").expect("stream");
    let jobs = schedule_from_interp(vstream, None);
    let demand = tbm::player::demanded_rate(&jobs, TimeSystem::PAL).unwrap();
    let bw = (demand.to_f64() * 2.0) as u64;
    let stats = PlaybackSim::new(CostModel::bandwidth_only(bw)).run(&jobs);
    println!(
        "playback at {bw} B/s: {} elements, {} misses, jitter {:.3} ms",
        stats.elements,
        stats.misses,
        stats.jitter_rms_secs * 1000.0
    );
}
