//! The §1.2 motivating scenario: a movie with sound tracks in several
//! languages, queried structurally.
//!
//! "Consider a digital movie with audio tracks in different languages. If
//! the movie is represented structurally, rather than as a long
//! uninterpreted byte sequence, it is possible to issue queries which
//! select a specific sound track, or select a specific duration, or perhaps
//! retrieve frames at a specific visual fidelity."
//!
//! ```text
//! cargo run --example multilingual_movie
//! ```

use tbm::codec::dct::DctParams;
use tbm::interp::capture::{self, audio_pcm_descriptor};
use tbm::interp::{ElementEntry, StreamInterp};
use tbm::media::gen::AudioSignal;
use tbm::prelude::*;

const W: u32 = 80;
const H: u32 = 60;
const SECS: usize = 3;
const FPS: usize = 25;
const RATE: usize = 44_100;

fn main() {
    let mut db = MediaDb::new();

    // ------------------------------------------------------------------
    // Build the movie: scalable video + three language tracks, all in one
    // BLOB with a complete interpretation.
    // ------------------------------------------------------------------
    let frames = tbm::media::gen::render_frames(
        tbm::media::gen::VideoPattern::ShiftingGradient,
        0,
        SECS * FPS,
        W,
        H,
    );
    // Scalable (layered) video: base + enhancement per frame.
    let (blob, mut interp) = {
        let (blob, interp) = capture::capture_video_scalable(
            db.store_mut(),
            &frames,
            TimeSystem::PAL,
            DctParams::default(),
        )
        .unwrap();
        (blob, interp)
    };
    // Append the three language tracks to the same BLOB.
    {
        use tbm::blob::BlobWriter;
        let store = db.store_mut();
        let mut w = BlobWriter::new(store, blob).unwrap();
        for (lang, hz) in [("en", 300.0), ("de", 440.0), ("fr", 550.0)] {
            let audio = AudioSignal::Sine {
                hz,
                amplitude: 9000,
            }
            .generate(0, SECS * RATE, RATE as u32, 2);
            let span = w.write(&audio.to_bytes()).unwrap();
            let mut desc = audio_pcm_descriptor(
                RATE as i64,
                16,
                2,
                Some(QualityFactor::Audio(AudioQuality::Cd)),
                Rational::from(SECS as i64),
            );
            desc.set(keys::LANGUAGE, lang);
            let entries = vec![ElementEntry::simple(0, (SECS * RATE) as i64, span)];
            interp
                .add_stream(
                    &format!("audio_{lang}"),
                    StreamInterp::new(desc, TimeSystem::CD_AUDIO, entries).unwrap(),
                )
                .unwrap();
        }
    }
    db.register_interpretation(interp).unwrap();
    println!(
        "movie registered: {} media objects in one BLOB of {} bytes\n",
        db.objects().len(),
        db.store().total_bytes()
    );

    // ------------------------------------------------------------------
    // Query 1: "select a specific sound track" — by language.
    // ------------------------------------------------------------------
    for lang in ["en", "de", "fr", "jp"] {
        println!(
            "tracks in `{lang}`: {:?}",
            db.audio_tracks_by_language(lang)
        );
    }

    // ------------------------------------------------------------------
    // Query 2: "select a specific duration".
    // ------------------------------------------------------------------
    println!(
        "\nobjects lasting >= 2 s: {:?}",
        db.objects_with_duration_at_least(TimeDelta::from_secs(2))
    );

    // ------------------------------------------------------------------
    // Query 3: "retrieve frames at a specific visual fidelity" — the
    // scalable layout serves base-only or full reads of the same element.
    // ------------------------------------------------------------------
    let t = TimePoint::from_secs(1);
    let base = db.element_bytes_at_fidelity("video1", t, Some(1)).unwrap();
    let full = db.element_bytes_at("video1", t).unwrap();
    println!(
        "\nframe at t=1 s: {} bytes at preview fidelity, {} bytes at full fidelity \
         ({}% saved by ignoring the enhancement layer)",
        base.len(),
        full.len(),
        100 - 100 * base.len() / full.len()
    );

    // An alternative interpretation view: only the German track visible.
    let view = db.interpretations()[0]
        .view(&["video1", "audio_de"])
        .unwrap();
    println!(
        "\nalternative view of the BLOB: streams {:?} (original still has {})",
        view.stream_names(),
        db.interpretations()[0].len()
    );
}
