//! A disaster drill for the durable archive: crash mid-save, flip bits in
//! the catalog, and watch the database refuse to lie — then salvage what
//! survives.
//!
//! ```text
//! cargo run --example salvage_drill
//! ```

use tbm::codec::dct::DctParams;
use tbm::interp::capture;
use tbm::media::gen::{AudioSignal, VideoPattern};
use tbm::prelude::*;

const SPF: usize = 1764;

fn main() {
    let dir = std::env::temp_dir().join("tbm-salvage-drill");
    let _ = std::fs::remove_dir_all(&dir);

    // ------------------------------------------------------------------
    // Build and save a small archive.
    // ------------------------------------------------------------------
    {
        let mut db = tbm::db::MediaDb::open(&dir).expect("open archive");
        let n = 25;
        let frames = tbm::media::gen::render_frames(VideoPattern::MovingBar, 0, n, 96, 64);
        let audio = AudioSignal::Sine {
            hz: 440.0,
            amplitude: 8000,
        }
        .generate(0, n * SPF, 44_100, 2);
        let cap = capture::capture_av_interleaved(
            db.store_mut(),
            &frames,
            &audio,
            SPF,
            TimeSystem::PAL,
            DctParams::default(),
            None,
        )
        .expect("capture");
        db.register_interpretation(cap.interpretation)
            .expect("register");
        db.create_derived(
            "clip",
            Node::derive(Op::VideoReverse, vec![Node::source("video1")]),
        )
        .expect("derive");
        db.save().expect("persist catalog");
        println!(
            "saved archive with {} objects to {}",
            db.objects().len(),
            dir.display()
        );
    }

    // ------------------------------------------------------------------
    // Drill 1: a crash between write and rename leaves a stale temp file.
    // The committed catalog must win; the orphan is discarded.
    // ------------------------------------------------------------------
    std::fs::write(dir.join(CATALOG_TMP), b"half-written wreckage").expect("plant stale tmp");
    let db = tbm::db::MediaDb::open(&dir).expect("reopen after simulated crash");
    println!(
        "drill 1 (crashed save): reopened cleanly with {} objects; stale tmp removed: {}",
        db.objects().len(),
        !dir.join(CATALOG_TMP).exists()
    );

    // ------------------------------------------------------------------
    // Drill 2: flip one bit in the middle of catalog.tbm. The whole-file
    // checksum footer turns silent corruption into a typed refusal.
    // ------------------------------------------------------------------
    let path = dir.join(tbm::db::CATALOG_FILE);
    let mut bytes = std::fs::read(&path).expect("read catalog");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x01;
    std::fs::write(&path, &bytes).expect("write damage");
    match tbm::db::MediaDb::open(&dir) {
        Err(e) => println!("drill 2 (bit flip): open refused with: {e}"),
        Ok(_) => unreachable!("a damaged catalog must never load silently"),
    }

    // ------------------------------------------------------------------
    // Drill 3: salvage. Decode the longest valid record prefix, drop
    // dangling references, and report exactly what was lost.
    // ------------------------------------------------------------------
    let (salvaged, report) = tbm::db::MediaDb::salvage(&dir).expect("salvage");
    println!(
        "drill 3 (salvage): recovered {}/{} interpretations, {}/{} objects, \
         {}/{} derivations ({} dangling dropped)",
        report.interpretations.recovered,
        report.interpretations.expected,
        report.objects.recovered,
        report.objects.expected,
        report.derivations.recovered,
        report.derivations.expected,
        report.dangling_objects,
    );
    if let Some(detail) = &report.detail {
        println!("                   first damage: {detail}");
    }
    println!(
        "                   salvaged db answers queries over {} object(s)",
        salvaged.objects().len()
    );

    // Truncation is detected the same way.
    std::fs::write(&path, &bytes[..bytes.len() / 3]).expect("truncate");
    match tbm::db::MediaDb::open(&dir) {
        Err(e) => println!("drill 4 (truncation): open refused with: {e}"),
        Ok(_) => unreachable!("a truncated catalog must never load silently"),
    }
    let (_, report) = tbm::db::MediaDb::salvage(&dir).expect("salvage truncated");
    println!(
        "                      salvage still recovers {} interpretation(s), {} object(s)",
        report.interpretations.recovered, report.objects.recovered
    );

    std::fs::remove_dir_all(&dir).ok();
}
