//! A durable media archive: file-backed BLOBs, a persisted catalog, and
//! activity-based resource provisioning (§6's "extended activities").
//!
//! Builds an archive on disk, closes it, reopens it, and answers
//! provisioning questions about playback from cold storage.
//!
//! ```text
//! cargo run --example persistent_archive
//! ```

use tbm::codec::dct::DctParams;
use tbm::interp::capture;
use tbm::media::gen::{AudioSignal, VideoPattern};
use tbm::player::{Activity, Pipeline};
use tbm::prelude::*;

const SPF: usize = 1764;

fn main() {
    let dir = std::env::temp_dir().join("tbm-archive-example");
    let _ = std::fs::remove_dir_all(&dir);

    // ------------------------------------------------------------------
    // Session 1: ingest and save.
    // ------------------------------------------------------------------
    {
        let mut db = tbm::db::MediaDb::open(&dir).expect("open archive");
        let n = 50;
        let frames = tbm::media::gen::render_frames(VideoPattern::Checkerboard(7), 0, n, 160, 120);
        let audio = AudioSignal::Chirp {
            from_hz: 150.0,
            to_hz: 900.0,
            sweep_frames: (n * SPF) as u64,
            amplitude: 8000,
        }
        .generate(0, n * SPF, 44_100, 2);
        let cap = capture::capture_av_interleaved(
            db.store_mut(),
            &frames,
            &audio,
            SPF,
            TimeSystem::PAL,
            DctParams::default(),
            Some(QualityFactor::Video(VideoQuality::Vhs)),
        )
        .expect("capture");
        db.register_interpretation(cap.interpretation)
            .expect("register");
        db.create_derived(
            "teaser",
            Node::derive(
                Op::VideoEdit {
                    cuts: vec![EditCut {
                        input: 0,
                        from: 10,
                        to: 35,
                    }],
                },
                vec![Node::source("video1")],
            ),
        )
        .expect("derive");
        db.save().expect("persist catalog");
        println!(
            "session 1: ingested {} objects, saved catalog to {}",
            db.objects().len(),
            dir.display()
        );
    }

    // ------------------------------------------------------------------
    // Session 2: reopen — everything is still there.
    // ------------------------------------------------------------------
    let db = tbm::db::MediaDb::open(&dir).expect("reopen archive");
    println!(
        "session 2: reopened with {} objects / {} interpretation(s) / teaser derives from {:?}",
        db.objects().len(),
        db.interpretations().len(),
        db.provenance("teaser").unwrap().unwrap().sources(),
    );
    let frame = db
        .element_bytes_at("video1", TimePoint::from_secs(1))
        .expect("time retrieval");
    println!("frame at t=1 s still decodable: {} bytes", frame.len());
    if let MediaValue::Video(v) = db.materialize("teaser").expect("expand") {
        println!("teaser expands to {} frames", v.len());
    }

    // ------------------------------------------------------------------
    // Provisioning (§6 activities): can various storage tiers feed
    // playback of this archive in real time?
    // ------------------------------------------------------------------
    let demand = db
        .average_data_rate("video1")
        .expect("descriptor carries rate")
        + Rational::from(176_400);
    // Raw presentation demand after decode (frames + samples).
    let raw_rate = 160u64 * 120 * 3 * 25 + 176_400;
    println!(
        "\nprovisioning: stored demand {} B/s, presentation demand {} B/s",
        demand, raw_rate
    );
    let expansion = Rational::from(raw_rate as i64) / demand;
    for (tier, bw) in [
        ("CD-ROM 1x", 150 * 1024u64),
        ("CD-ROM 4x", 600 * 1024),
        ("early HDD", 2_000_000),
    ] {
        let chain = Pipeline::new()
            .then(Activity::producer(tier, bw))
            .then(Activity::new("decoder", Rational::from(4_000_000), expansion).expect("positive"))
            .then(Activity::producer("presentation", 40_000_000));
        let ok = chain.sustains(Rational::from(raw_rate as i64));
        let (_, bottleneck, cap) = chain.bottleneck().unwrap();
        println!(
            "  {tier:<10} -> sustains {:>10.0} B/s of {} demanded: {} (bottleneck: {bottleneck})",
            cap.to_f64(),
            raw_rate,
            if ok { "plays" } else { "stalls" }
        );
    }

    let _ = std::fs::remove_dir_all(&dir);
}
