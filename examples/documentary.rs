//! The paper's Figure 4 workflow, end to end.
//!
//! Reproduces §4.3's "Example of Composition":
//!
//! * `audio1` (music) and `audio2` (narration) are interleaved in one BLOB;
//! * `video1` and `video2` come from a single capture and share a second BLOB;
//! * a derived 10-second fade `videoF` dissolves `video1` into `video2`;
//! * `videoF` is concatenated with cut versions of the originals into `video3`;
//! * a multimedia object `m` temporally composes `audio1`, `audio2`, `video3`.
//!
//! ```text
//! cargo run --example documentary
//! ```

use tbm::codec::dct::DctParams;
use tbm::interp::capture::{self, audio_pcm_descriptor};
use tbm::interp::{ElementEntry, Interpretation, StreamInterp};
use tbm::media::gen::{AudioSignal, VideoPattern};
use tbm::prelude::*;

// Scaled-down geometry so the example runs in moments; the structure is
// identical to the paper's full-scale numbers.
const W: u32 = 96;
const H: u32 = 64;
const FPS: usize = 25;
const SCENE_SECS: usize = 8; // per source scene
const FADE_SECS: usize = 2; // the paper uses 10 s on longer scenes
const RATE: usize = 44_100;

fn main() {
    let mut db = MediaDb::new();

    // ------------------------------------------------------------------
    // Raw material, BLOB 1: music + narration interleaved in one BLOB.
    // "The two audio sequences contain music and narration and are
    //  intended to be presented simultaneously. For this reason they are
    //  interleaved in a single BLOB."
    // ------------------------------------------------------------------
    let total_audio_secs = 2 * SCENE_SECS - FADE_SECS;
    let music = AudioSignal::Chirp {
        from_hz: 180.0,
        to_hz: 700.0,
        sweep_frames: (total_audio_secs * RATE) as u64,
        amplitude: 6000,
    }
    .generate(0, total_audio_secs * RATE, RATE as u32, 2);
    let narration_secs = SCENE_SECS / 2;
    let narration = AudioSignal::Sine {
        hz: 220.0,
        amplitude: 8000,
    }
    .generate(0, narration_secs * RATE, RATE as u32, 2);

    let blob_a = {
        use tbm::blob::BlobWriter;
        let store = db.store_mut();
        let blob = store.create().unwrap();
        let mut w = BlobWriter::new(store, blob).unwrap();
        // Chunk-interleave the two sequences (1/10th-second chunks).
        let chunk = RATE / 10;
        let mut interp = Interpretation::new(blob);
        let mut entries_music = Vec::new();
        let mut entries_narr = Vec::new();
        let chunks = total_audio_secs * 10;
        for i in 0..chunks {
            let span = w
                .write(&music.slice_frames(i * chunk, (i + 1) * chunk).to_bytes())
                .unwrap();
            entries_music.push(ElementEntry::simple((i * chunk) as i64, chunk as i64, span));
            if i < narration_secs * 10 {
                let span = w
                    .write(
                        &narration
                            .slice_frames(i * chunk, (i + 1) * chunk)
                            .to_bytes(),
                    )
                    .unwrap();
                entries_narr.push(ElementEntry::simple((i * chunk) as i64, chunk as i64, span));
            }
        }
        let sys = TimeSystem::CD_AUDIO;
        let mk = |secs: usize| {
            audio_pcm_descriptor(
                RATE as i64,
                16,
                2,
                Some(QualityFactor::Audio(AudioQuality::Cd)),
                Rational::from(secs as i64),
            )
        };
        interp
            .add_stream(
                "audio1",
                StreamInterp::new(mk(total_audio_secs), sys, entries_music).unwrap(),
            )
            .unwrap();
        interp
            .add_stream(
                "audio2",
                StreamInterp::new(mk(narration_secs), sys, entries_narr).unwrap(),
            )
            .unwrap();
        interp
    };
    db.register_interpretation(blob_a).unwrap();

    // ------------------------------------------------------------------
    // Raw material, BLOB 2: two video scenes from one capture.
    // "Suppose the two video sequences result from a single capture
    //  operation … and so also reside in a single BLOB."
    // ------------------------------------------------------------------
    let scene1 = tbm::media::gen::render_frames(VideoPattern::MovingBar, 0, SCENE_SECS * FPS, W, H);
    let scene2 =
        tbm::media::gen::render_frames(VideoPattern::ShiftingGradient, 0, SCENE_SECS * FPS, W, H);
    let blob_v = {
        use tbm::blob::BlobWriter;
        use tbm::codec::dct;
        let store = db.store_mut();
        let blob = store.create().unwrap();
        let mut w = BlobWriter::new(store, blob).unwrap();
        let mut interp = Interpretation::new(blob);
        let make_stream = |name: &str, frames: &[tbm::media::Frame], w: &mut BlobWriter<_>| {
            let mut entries = Vec::new();
            for (i, f) in frames.iter().enumerate() {
                let span = w
                    .write(&dct::encode_frame(f, DctParams::default()))
                    .unwrap();
                entries.push(ElementEntry::simple(i as i64, 1, span));
            }
            let desc = capture::video_descriptor(
                W,
                H,
                Rational::from(FPS as i64),
                Some(QualityFactor::Video(VideoQuality::Vhs)),
                Rational::from(SCENE_SECS as i64),
                "YUV 8:2:2, JPEG",
                "homogeneous, constant frequency",
            );
            (
                name.to_owned(),
                StreamInterp::new(desc, TimeSystem::PAL, entries).unwrap(),
            )
        };
        let (n1, s1) = make_stream("video1", &scene1, &mut w);
        let (n2, s2) = make_stream("video2", &scene2, &mut w);
        interp.add_stream(&n1, s1).unwrap();
        interp.add_stream(&n2, s2).unwrap();
        interp
    };
    db.register_interpretation(blob_v).unwrap();

    println!(
        "raw material registered: {} media objects over {} BLOBs ({} bytes)",
        db.objects().len(),
        db.store().blob_ids().len(),
        db.store().total_bytes()
    );

    // ------------------------------------------------------------------
    // Derivations: cut1, cut2, fade, concat (the four derivation objects
    // of Fig. 4a).
    // ------------------------------------------------------------------
    let fade_frames = (FADE_SECS * FPS) as u32;
    let scene_frames = (SCENE_SECS * FPS) as u32;

    // videoF: the slow fade from video1 to video2.
    db.create_derived(
        "videoF",
        Node::derive(
            Op::Fade {
                frames: fade_frames,
            },
            vec![Node::source("video1"), Node::source("video2")],
        ),
    )
    .unwrap();
    // videoC1 / videoC2: "cut versions of the original sequences".
    db.create_derived(
        "videoC1",
        Node::derive(
            Op::VideoEdit {
                cuts: vec![EditCut {
                    input: 0,
                    from: 0,
                    to: scene_frames - fade_frames,
                }],
            },
            vec![Node::source("video1")],
        ),
    )
    .unwrap();
    db.create_derived(
        "videoC2",
        Node::derive(
            Op::VideoEdit {
                cuts: vec![EditCut {
                    input: 0,
                    from: fade_frames,
                    to: scene_frames,
                }],
            },
            vec![Node::source("video2")],
        ),
    )
    .unwrap();
    // video3 = concat(videoC1, videoF, videoC2).
    let c1 = scene_frames - fade_frames;
    let c2 = fade_frames;
    db.create_derived(
        "video3",
        Node::derive(
            Op::VideoEdit {
                cuts: vec![
                    EditCut {
                        input: 0,
                        from: 0,
                        to: c1,
                    },
                    EditCut {
                        input: 1,
                        from: 0,
                        to: c2,
                    },
                    EditCut {
                        input: 2,
                        from: 0,
                        to: c1,
                    },
                ],
            },
            vec![
                Node::source("videoC1"),
                Node::source("videoF"),
                Node::source("videoC2"),
            ],
        ),
    )
    .unwrap();
    for name in ["videoF", "videoC1", "videoC2", "video3"] {
        println!(
            "derivation object `{name}`: {} bytes (expands to {} frames)",
            db.derivation_storage_bytes(name).unwrap(),
            match db.materialize(name).unwrap() {
                MediaValue::Video(v) => v.len(),
                _ => unreachable!(),
            }
        );
    }

    // ------------------------------------------------------------------
    // Composition: the multimedia object m with components audio1,
    // audio2, video3 (temporal relationships c1, c2, c3).
    // ------------------------------------------------------------------
    let total = TimeDelta::from_secs(total_audio_secs as i64);
    let mut m = MultimediaObject::new("m");
    m.add_component(
        Component::new(
            "audio1",
            ComponentKind::Audio,
            Node::source("audio1"),
            TimePoint::ZERO,
            total,
        )
        .unwrap(),
    )
    .unwrap();
    m.add_component(
        Component::new(
            "audio2",
            ComponentKind::Audio,
            Node::source("audio2"),
            TimePoint::ZERO,
            TimeDelta::from_secs(narration_secs as i64),
        )
        .unwrap(),
    )
    .unwrap();
    m.add_component(
        Component::new(
            "video3",
            ComponentKind::Video,
            Node::source("video3"),
            TimePoint::ZERO,
            total,
        )
        .unwrap(),
    )
    .unwrap();
    m.add_constraint("audio1", AllenRelation::Equals, "video3")
        .unwrap();
    m.add_constraint("audio2", AllenRelation::Starts, "video3")
        .unwrap();
    m.validate().expect("sync constraints hold");

    println!("\ntimeline of m (cf. paper Fig. 4b):");
    print!("{}", m.timeline_diagram(48));

    // ------------------------------------------------------------------
    // Present one moment of m: composite video + mixed audio.
    // ------------------------------------------------------------------
    let mut expander = Expander::new();
    for src in ["audio1", "audio2", "video3"] {
        expander.add_source(src, db.materialize(src).unwrap());
    }
    let composer = Composer::new(&expander, W, H);
    let mid = TimePoint::from_secs((total_audio_secs / 2) as i64);
    let frame = composer.render_video_frame(&m, mid).unwrap();
    let window = composer
        .mix_audio_window(&m, mid, TimeDelta::from_millis(200))
        .unwrap();
    println!(
        "\npresented t={}: frame {}x{}, 200 ms audio window peak {}",
        Timecode::new(mid).minutes_seconds(),
        frame.width(),
        frame.height(),
        window.peak()
    );
    db.add_multimedia(m).unwrap();
    println!(
        "multimedia objects in catalog: {}",
        db.multimedia_objects().len()
    );
}
