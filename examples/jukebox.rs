//! Music as symbolic media: MIDI-style scores, synthesis, and audio
//! post-production — the paper's type-changing derivation chain.
//!
//! "Animation and music deal with symbolic representations from which audio
//! or video sequences are derived. … A synthesizer then takes these
//! sequences and derives audio sequences." (§6)
//!
//! ```text
//! cargo run --example jukebox
//! ```

use tbm::core::SizedElement;
use tbm::media::gen::{chord_progression, major_scale};
use tbm::media::midi::notes_to_events;
use tbm::prelude::*;

fn main() {
    let mut db = MediaDb::new();

    // ------------------------------------------------------------------
    // Two symbolic scores: a melody and a chord bed.
    // ------------------------------------------------------------------
    let melody = major_scale(0, 72, 1, 480, 400);
    let chords = chord_progression(1, 48, 960);
    db.register_value(
        "melody",
        MediaValue::Music(tbm::derive::MusicClip::new(melody.clone(), 480, 120)),
    )
    .unwrap();
    db.register_value(
        "chords",
        MediaValue::Music(tbm::derive::MusicClip::new(chords.clone(), 480, 120)),
    )
    .unwrap();

    // ------------------------------------------------------------------
    // The music medium in Figure 1 terms: notes overlap (chords), so the
    // stream is non-continuous; the MIDI event form is event-based.
    // ------------------------------------------------------------------
    let note_stream = TimedStream::from_tuples(MediaType::music(), TimeSystem::MIDI_PPQ_480, {
        let mut tuples: Vec<_> = chords
            .iter()
            .map(|&(_, s, d)| TimedTuple::new(SizedElement::new(3), s, d))
            .collect();
        tuples.sort_by_key(|t| t.start);
        tuples
    })
    .unwrap();
    println!("chord score as notes:  {}", classify(&note_stream));

    let events = notes_to_events(&chords);
    let event_stream = TimedStream::from_tuples(
        MediaType::midi(),
        TimeSystem::MIDI_PPQ_480,
        events
            .iter()
            .map(|&(_, at)| TimedTuple::new(SizedElement::new(3), at, 0))
            .collect(),
    )
    .unwrap();
    println!("chord score as events: {}", classify(&event_stream));

    // ------------------------------------------------------------------
    // Type-changing derivations: synthesize both scores to audio, at two
    // different tempi (the synthesis parameters of Table 1).
    // ------------------------------------------------------------------
    for (name, source, tempo) in [
        ("melody_audio", "melody", 0u32),
        ("chords_audio", "chords", 0),
        ("chords_audio_fast", "chords", 240),
    ] {
        db.create_derived(
            name,
            Node::derive(
                Op::MidiSynthesize {
                    sample_rate: 44_100,
                    tempo_bpm: tempo,
                    gain_num: 180,
                },
                vec![Node::source(source)],
            ),
        )
        .unwrap();
        if let MediaValue::Audio(a) = db.materialize(name).unwrap() {
            println!(
                "{name}: {:.2} s of audio, peak {} (derivation object: {} bytes)",
                a.seconds(),
                a.buffer.peak(),
                db.derivation_storage_bytes(name).unwrap()
            );
        }
    }

    // ------------------------------------------------------------------
    // Post-production: normalize the melody, mix it over the chord bed —
    // a derivation pipeline stored entirely as specs.
    // ------------------------------------------------------------------
    let mix = Node::derive(
        Op::AudioMix,
        vec![
            Node::derive(
                Op::AudioNormalize {
                    target_peak: 14_000,
                    range: None,
                },
                vec![Node::source("melody_audio")],
            ),
            Node::derive(
                Op::AudioGain { num: 1, den: 2 },
                vec![Node::source("chords_audio")],
            ),
        ],
    );
    println!("\nmix pipeline spec: {} bytes", mix.spec_size());
    db.create_derived("master", mix).unwrap();
    if let MediaValue::Audio(master) = db.materialize("master").unwrap() {
        println!(
            "master: {:.2} s, peak {}, rms {:.0}",
            master.seconds(),
            master.buffer.peak(),
            master.buffer.rms()
        );
    }

    // Provenance: everything that depends on the chord score.
    println!(
        "\nobjects derived from `chords`: {:?}",
        db.derived_from("chords")
    );
}
