//! Ask the fleet a question: the telemetry plane + typed query surface.
//!
//! A catalog of movies is sharded across a simulated fleet; one node
//! browns out mid-broadcast. While viewers stream, a telemetry plane
//! samples every server on the simulated clock — session lateness split
//! by fidelity, storage throughput, cache hit rate, node load — and
//! compresses each series into constant/linear segment models under a 1%
//! error bound. Finished segments ship over the fleet's own (charged,
//! lossy) links into one store.
//!
//! Afterwards, the operator's questions are *typed queries* over three
//! worlds at once — the catalogs, the session ledger, the miss
//! attribution and the compressed telemetry:
//!
//! ```text
//! scan(source) → filter(typed predicates) → aggregate
//! ```
//!
//! ending with the brownout question: *what was p99 lateness for degraded
//! sessions on the browned-out node, during the brownout window?* —
//! answered straight off the segment models, never re-materialising the
//! raw samples.
//!
//! ```text
//! cargo run --example query
//! ```

use tbm::codec::dct::DctParams;
use tbm::interp::capture::capture_video_scalable;
use tbm::interp::Interpretation;
use tbm::media::gen::{render_frames, VideoPattern};
use tbm::prelude::*;
use tbm::serve::Request;

fn main() {
    const SEED: u64 = 23;
    const NODES: usize = 3;
    const SHARDS: usize = 6;
    let t = |ms: i64| TimePoint::ZERO + TimeDelta::from_millis(ms);

    // ------------------------------------------------------------------
    // A catalog of eight movies over six shards on three nodes.
    // ------------------------------------------------------------------
    let names: Vec<String> = (0..8).map(|i| format!("movie{i}")).collect();
    let mut db = ShardedDb::new(SHARDS, SEED);
    let frames = render_frames(VideoPattern::MovingBar, 0, 40, 96, 64);
    for name in &names {
        let store = db.store_for_mut(name);
        let (blob, interp) =
            capture_video_scalable(store, &frames, TimeSystem::PAL, DctParams::default()).unwrap();
        let stream = interp.stream("video1").unwrap().clone();
        let mut renamed = Interpretation::new(blob);
        renamed.add_stream(name, stream).unwrap();
        db.register_interpretation(renamed).unwrap();
    }

    // Size per-node capacity off one movie's full-fidelity demand so the
    // storm forces real admission decisions (some viewers get the base
    // layer only — those are the "degraded" sessions the queries target).
    let owner = db.shard_for("movie0");
    let (_, stream) = db.shard(owner).stream_of("movie0").unwrap();
    let full_bps = tbm::player::demanded_rate(
        &tbm::player::schedule_from_interp(stream, None),
        stream.system(),
    )
    .unwrap()
    .ceil() as u64;

    // Node 1 browns out to 35% health across the middle of the broadcast.
    let brownout = (t(500), t(2_500));
    let mut fleet = Fleet::new(db, NODES, Capacity::new(full_bps * 2).with_overhead_us(100))
        .with_cache_budget(32 << 20)
        .with_tracer(Tracer::new())
        .with_fault_plan(
            1,
            NodeFaultPlan::new().with_brownout(brownout.0, brownout.1, 35),
        );
    println!(
        "catalog of {} movies over {SHARDS} shards on {NODES} nodes; node 1 browns out \
         [500ms, 2500ms) at 35% health\n",
        names.len()
    );

    // ------------------------------------------------------------------
    // Broadcast + sample: viewers arrive every 120 ms; the telemetry
    // plane ticks every 50 ms of simulated time, compressing at 1% error.
    // ------------------------------------------------------------------
    let interval = TimeDelta::from_millis(50);
    let mut telemetry = FleetTelemetry::new(ErrorBound::percent(1.0), interval);
    let mut next_viewer = 0usize;
    for k in 0..=120i64 {
        let at = t(50 * k);
        telemetry.tick(&mut fleet, at);
        // Arrivals scheduled inside [at, at + 50ms) open now; the fleet
        // processes them as it runs to the next sample tick.
        while next_viewer < 16 && (next_viewer as i64) * 120 < 50 * (k + 1) {
            let name = names[next_viewer % names.len()].clone();
            let open_at = t(next_viewer as i64 * 120).max(at);
            if let Response::Opened {
                session: Some(id), ..
            } = fleet
                .request(open_at, Request::Open { object: name })
                .unwrap()
            {
                fleet
                    .request(open_at, Request::Play { session: id })
                    .unwrap();
            }
            next_viewer += 1;
        }
    }
    telemetry.finish(&mut fleet, t(6_050));
    let fleet_stats = fleet.finish();

    let store = telemetry.store().expect("the plane ticked");
    println!(
        "telemetry: {} series, {} segments over {} points; {} B compressed vs {} B raw \
         ({:.1}x), {} segment batches lost in flight and salvaged",
        store.series_count(),
        store.segment_count(),
        store.point_count(),
        store.compressed_bytes(),
        store.raw_bytes(),
        store.compression_ratio(),
        telemetry.lost_shipments(),
    );
    println!(
        "broadcast: {} admitted ({} degraded), {} elements served, {} deadline misses\n",
        fleet_stats.shards.global.sessions_admitted(),
        fleet_stats.shards.global.admitted_degraded,
        fleet_stats.shards.global.elements_served,
        fleet_stats.shards.global.deadline_misses,
    );

    // ------------------------------------------------------------------
    // Ask questions. One context spans catalogs + sessions + misses +
    // compressed telemetry; every query is scan → filter → aggregate.
    // ------------------------------------------------------------------
    let ctx = QueryCtx::from_fleet(&fleet).with_telemetry(store);

    let queries = [
        Query::scan(Source::Objects).filter(Predicate::KindIs(MediaKind::Video)),
        Query::scan(Source::Sessions).filter(Predicate::Degraded(true)),
        Query::scan(Source::Misses).aggregate(Aggregate::Count),
        Query::scan(Source::Metrics)
            .filter(Predicate::MetricIs(Metric::NodeLoadPct))
            .filter(Predicate::OnNode(1))
            .aggregate(Aggregate::Max),
    ];
    for q in &queries {
        println!("{}", q.run(&ctx).expect("typed and backed").render());
    }

    // The brownout question, in one typed query: p99 lateness for
    // degraded sessions on node 1, during the brownout window — answered
    // from the segment models with its error bound attached.
    let q = Query::scan(Source::Metrics)
        .filter(Predicate::MetricIs(Metric::LatenessUs))
        .filter(Predicate::Degraded(true))
        .filter(Predicate::OnNode(1))
        .filter(Predicate::During(brownout.0, brownout.1))
        .aggregate(Aggregate::Quantile(99));
    let answer = q.run(&ctx).expect("typed and backed");
    println!("{}", answer.render());

    assert!(store.series_count() > 0, "the plane must have sampled");
    assert!(
        store.compression_ratio() > 1.0,
        "model compression must beat raw per-tick storage"
    );
    assert!(
        !answer.is_empty(),
        "the brownout question must produce an answer row"
    );
    println!("the fleet answered from models — no raw series was ever re-materialised");
}
