//! One hot movie, many viewers: the serving layer under a broadcast-shaped
//! load.
//!
//! The paper models media storage and interpretation; delivery is where the
//! model meets "millions of users". This example captures one scalable
//! movie, then opens a storm of staggered sessions against a server whose
//! capacity fits only a few full-fidelity streams. Admission control admits,
//! degrades (base layer only) or rejects each arrival, and the shared
//! segment cache collapses the overlapping reads of everyone it admits.
//!
//! The whole run is traced: afterwards the example writes a Chrome
//! `trace_event` JSON to `target/broadcast_trace.json` (open it in
//! <https://ui.perfetto.dev>) and prints a deadline-miss attribution
//! summary.
//!
//! Set `BROADCAST_TIER_BLACKOUT=1` to instead broadcast off a tiered
//! store (fast primary over a slow replica) and black the primary out
//! mid-run: reads fail over, the circuit breaker trips and later heals,
//! and not one element is dropped.
//!
//! Set `BROADCAST_SHARDS=N` to instead broadcast a whole catalog of
//! movies through the shard-aware front end: the namespace is partitioned
//! across `N` shards by the stable name hash, every shard brings its own
//! admission budget and cache, and the report shows the per-shard
//! breakdown, the `shard.skew` gauge and the exact global rollup.
//!
//! Set `BROADCAST_FLEET=N` to instead host the sharded catalog on a
//! simulated `N`-node fleet and kill a node mid-broadcast: shards fail
//! over with a catalog handoff, in-flight sessions ride through the
//! migration, the handoff stall shows up under the `node-loss` miss
//! cause, and the node's restart brings its shards home.
//!
//! Set `BROADCAST_QUERY=1` to run the fleet broadcast with the telemetry
//! plane sampling every server on the simulated clock, then print a
//! post-run query report: typed `scan → filter → aggregate` questions
//! answered from the model-compressed telemetry store and the session
//! ledger (see `cargo run --example query` for the full tour).
//!
//! Set `BROADCAST_HEALTH=1` to arm the health plane — every built-in SLO
//! rule with multi-window burn-rate alerting — and brown node 1 out to
//! 25% health mid-broadcast: the sustained load imbalance trips the
//! slow-window `load-skew` alert (and only it), the alert closes by
//! hysteresis once the node recovers, and the closed alert prints its
//! deterministic incident report with per-node/per-shard breakdowns.
//!
//! Set `BROADCAST_REMEDIATE=1` to close the loop: the same brownout, but
//! with the remediation plane subscribed to the health plane's alert
//! transitions. The `load-skew` alert opens, the playbook's guarded
//! rebalance moves one shard off the browned node, verification confirms
//! the burn fell, and the alert closes — zero operator input. The run
//! prints the deterministic action log and the incident report with its
//! remediation timeline.
//!
//! ```text
//! cargo run --example broadcast
//! BROADCAST_TIER_BLACKOUT=1 cargo run --example broadcast
//! BROADCAST_SHARDS=4 cargo run --example broadcast
//! BROADCAST_FLEET=4 cargo run --example broadcast
//! BROADCAST_QUERY=1 cargo run --example broadcast
//! BROADCAST_HEALTH=1 cargo run --example broadcast
//! BROADCAST_REMEDIATE=1 cargo run --example broadcast
//! ```

use tbm::codec::dct::DctParams;
use tbm::interp::capture::capture_video_scalable;
use tbm::media::gen::render_frames;
use tbm::media::gen::VideoPattern;
use tbm::obs::validate_json;
use tbm::prelude::*;
use tbm::serve::{Request, Response, Server};

fn main() {
    if std::env::var_os("BROADCAST_TIER_BLACKOUT").is_some() {
        blackout_broadcast();
        return;
    }
    if std::env::var_os("BROADCAST_QUERY").is_some() {
        query_broadcast();
        return;
    }
    if std::env::var_os("BROADCAST_HEALTH").is_some() {
        health_broadcast();
        return;
    }
    if std::env::var_os("BROADCAST_REMEDIATE").is_some() {
        remediate_broadcast();
        return;
    }
    if let Some(n) = std::env::var("BROADCAST_SHARDS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
    {
        sharded_broadcast(n);
        return;
    }
    if let Some(n) = std::env::var("BROADCAST_FLEET")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
    {
        fleet_broadcast(n);
        return;
    }
    // ------------------------------------------------------------------
    // Capture the hot object: a two-layer scalable PAL movie.
    // ------------------------------------------------------------------
    let mut db = MediaDb::new();
    let frames = render_frames(VideoPattern::MovingBar, 0, 50, 96, 64);
    let (_blob, interp) = capture_video_scalable(
        db.store_mut(),
        &frames,
        TimeSystem::PAL,
        DctParams::default(),
    )
    .unwrap();
    db.register_interpretation(interp).unwrap();

    // Probe the movie's full-fidelity demand so capacity is meaningful.
    let (_, stream) = db.stream_of("video1").unwrap();
    let full_jobs = tbm::player::schedule_from_interp(stream, None);
    let full_bps = tbm::player::demanded_rate(&full_jobs, stream.system())
        .unwrap()
        .ceil() as u64;
    println!(
        "hot object: {} frames, full fidelity demands {} B/s",
        frames.len(),
        full_bps
    );

    // ------------------------------------------------------------------
    // A server that fits ~2.5 full streams, with a 64 MiB segment cache.
    // ------------------------------------------------------------------
    let capacity = Capacity::new(full_bps * 5 / 2).with_overhead_us(100);
    let mut server = Server::new(db, capacity)
        .with_cache_budget(64 << 20)
        .with_tracer(Tracer::new());
    println!(
        "capacity: {} B/s storage bandwidth\n",
        server.capacity().storage_bandwidth
    );

    // ------------------------------------------------------------------
    // Twelve viewers arrive 150 ms apart, all wanting the same movie.
    // ------------------------------------------------------------------
    let mut viewers = Vec::new();
    for n in 0..12 {
        let at = TimePoint::ZERO + TimeDelta::from_millis(n * 150);
        let response = server
            .request(
                at,
                Request::Open {
                    object: "video1".into(),
                },
            )
            .unwrap();
        let Response::Opened { session, decision } = response else {
            unreachable!("Open always answers Opened");
        };
        println!("viewer {n:2} at {:>4} ms: {decision}", n * 150);
        if let Some(id) = session {
            server.request(at, Request::Play { session: id }).unwrap();
            viewers.push(id);
        }
    }

    // ------------------------------------------------------------------
    // Drain the event loop and report.
    // ------------------------------------------------------------------
    let stats = server.finish();
    println!();
    println!(
        "admitted {} (of which {} degraded), rejected {}",
        stats.sessions_admitted(),
        stats.admitted_degraded,
        stats.rejected
    );
    println!(
        "served {} elements, {} deadline misses ({:.1} % miss rate)",
        stats.elements_served,
        stats.deadline_misses,
        stats.miss_rate() * 100.0
    );
    println!(
        "cache: {} hits / {} lookups ({:.1} % hit rate), {} bytes served from cache",
        stats.cache.hits,
        stats.cache.lookups(),
        stats.cache.hit_rate() * 100.0,
        stats.cache.bytes_served
    );
    println!(
        "storage reads: {} bytes total for {} viewers of one movie",
        stats.storage_bytes_read,
        viewers.len()
    );

    assert!(
        stats.cache.hit_rate() > 0.5,
        "overlapping sessions on one object should mostly hit the cache"
    );

    // ------------------------------------------------------------------
    // Inspect the run: export the trace and attribute the misses.
    // ------------------------------------------------------------------
    let out = std::path::Path::new("target/broadcast_trace.json");
    if let Some(dir) = out.parent() {
        std::fs::create_dir_all(dir).unwrap();
    }
    let mut file = std::fs::File::create(out).unwrap();
    server.trace_to_writer(&mut file).unwrap();
    let json = std::fs::read_to_string(out).unwrap();
    validate_json(&json).expect("the exported trace must be well-formed JSON");
    println!(
        "\ntrace: {} events written to {} (open in https://ui.perfetto.dev)",
        server.trace().records.len(),
        out.display()
    );

    let report = server.attribution();
    if report.total() == 0 {
        println!("no deadline misses to attribute");
    } else {
        println!("deadline misses by cause:");
        for (cause, n) in report.by_cause() {
            println!("  {:>22}: {n}", cause.as_str());
        }
    }
}

/// A whole catalog behind the shard-aware front end: eight movies spread
/// across `shards` shards by the stable name hash, sixteen viewers
/// round-robining over them, every shard running its own admission budget
/// and segment cache. Prints the per-shard breakdown and the exact global
/// rollup, and checks the cross-shard invariants as it goes.
fn sharded_broadcast(shards: usize) {
    use tbm::interp::Interpretation;
    use tbm::serve::SHARD_SESSION_STRIDE;

    const SEED: u64 = 17;
    let t = |ms: i64| TimePoint::ZERO + TimeDelta::from_millis(ms);
    let names: Vec<String> = (0..8).map(|i| format!("movie{i}")).collect();

    let mut db = ShardedDb::new(shards, SEED);
    let frames = render_frames(VideoPattern::MovingBar, 0, 40, 96, 64);
    for name in &names {
        let store = db.store_for_mut(name);
        let (blob, interp) =
            capture_video_scalable(store, &frames, TimeSystem::PAL, DctParams::default()).unwrap();
        // The capture helper names streams "video1"; re-hang the stream
        // under the movie's routing name.
        let stream = interp.stream("video1").unwrap().clone();
        let mut renamed = Interpretation::new(blob);
        renamed.add_stream(name, stream).unwrap();
        db.register_interpretation(renamed).unwrap();
    }
    println!(
        "catalog of {} movies over {shards} shard(s), seed {SEED}:",
        names.len()
    );
    for (shard, name) in db.object_names() {
        print!("  {name}→{shard}");
    }
    println!("\n");

    // Probe one movie's full-fidelity demand to size the per-shard budget.
    let owner = db.shard_for("movie0");
    let (_, stream) = db.shard(owner).stream_of("movie0").unwrap();
    let full_bps = tbm::player::demanded_rate(
        &tbm::player::schedule_from_interp(stream, None),
        stream.system(),
    )
    .unwrap()
    .ceil() as u64;

    // Every shard brings its own ~2.5-stream budget and 32 MiB cache.
    let per_shard = Capacity::new(full_bps * 5 / 2).with_overhead_us(100);
    let mut server = ShardedServer::new(db, per_shard)
        .with_cache_budget(32 << 20)
        .with_tracer(Tracer::new());

    let mut opened = Vec::new();
    for i in 0..16usize {
        let at = t(i as i64 * 120);
        let name = names[i % names.len()].clone();
        let Response::Opened { session, decision } = server
            .request(
                at,
                Request::Open {
                    object: name.clone(),
                },
            )
            .unwrap()
        else {
            unreachable!("Open always answers Opened");
        };
        println!(
            "viewer {i:2} at {:>4} ms wants {name} (shard {}): {decision}",
            i * 120,
            server.shard_for(&name)
        );
        if let Some(id) = session {
            server.request(at, Request::Play { session: id }).unwrap();
            // Routing check: the session id's stride names the hash shard.
            assert_eq!(
                (id.raw() / SHARD_SESSION_STRIDE) as usize,
                server.shard_for(&name),
                "session must be admitted by the shard its object hashes to"
            );
            opened.push(id);
        }
    }

    let stats = server.finish();
    println!(
        "\n{:<8}{:>14}{:>10}{:>8}{:>11}",
        "shard", "adm/deg/rej", "elements", "misses", "hit rate"
    );
    println!("{}", "-".repeat(51));
    for (i, s) in stats.per_shard.iter().enumerate() {
        println!(
            "{i:<8}{:>14}{:>10}{:>8}{:>10.1}%",
            format!("{}/{}/{}", s.admitted, s.admitted_degraded, s.rejected),
            s.elements_served,
            s.deadline_misses,
            s.cache.hit_rate() * 100.0
        );
    }
    let g = &stats.global;
    println!("{}", "-".repeat(51));
    println!(
        "{:<8}{:>14}{:>10}{:>8}{:>10.1}%",
        "global",
        format!("{}/{}/{}", g.admitted, g.admitted_degraded, g.rejected),
        g.elements_served,
        g.deadline_misses,
        g.cache.hit_rate() * 100.0
    );
    println!(
        "\nshard.skew gauge: {}% (hottest shard vs per-shard mean)",
        server.metrics().gauge("shard.skew")
    );

    // Cross-shard invariants: the global view is the exact shard sum, and
    // the fault invariant survives the rollup.
    let mut rebuilt = ServerStats::empty();
    for s in &stats.per_shard {
        rebuilt.absorb(s);
    }
    assert_eq!(rebuilt, stats.global, "global stats must be the shard sum");
    for s in stats.per_shard.iter().chain(std::iter::once(g)) {
        assert_eq!(
            s.faults_detected,
            s.degraded_elements + s.dropped_elements + s.repaired_elements
        );
    }
    assert_eq!(
        g.admitted + g.admitted_degraded + g.rejected,
        16,
        "every viewer got exactly one admission decision"
    );
    println!(
        "fleet admitted {} of 16 viewers across {shards} shard(s); rollup exact, \
         fault invariant holds per shard and globally",
        g.sessions_admitted()
    );
}

/// The sharded catalog hosted on a simulated `nodes`-node fleet, with a
/// scripted node kill (and salvage restart) in the middle of the
/// broadcast: live migration hands the dead node's shards to survivors,
/// every in-flight session rides through, and the placement table ends
/// the run back in its home state.
fn fleet_broadcast(nodes: usize) {
    use tbm::interp::Interpretation;
    use tbm::serve::NodeFaultPlan;

    const SEED: u64 = 29;
    let nodes = nodes.max(2); // a 1-node fleet has nowhere to fail over
    let t = |ms: i64| TimePoint::ZERO + TimeDelta::from_millis(ms);
    let names: Vec<String> = (0..8).map(|i| format!("movie{i}")).collect();
    let shards = nodes * 2; // two shards per node: kills move real load

    let mut db = ShardedDb::new(shards, SEED);
    let frames = render_frames(VideoPattern::MovingBar, 0, 30, 96, 64);
    for name in &names {
        let store = db.store_for_mut(name);
        let (blob, interp) =
            capture_video_scalable(store, &frames, TimeSystem::PAL, DctParams::default()).unwrap();
        // The capture helper names streams "video1"; re-hang the stream
        // under the movie's routing name.
        let stream = interp.stream("video1").unwrap().clone();
        let mut renamed = Interpretation::new(blob);
        renamed.add_stream(name, stream).unwrap();
        db.register_interpretation(renamed).unwrap();
    }

    // Node 1 is killed at 900 ms — mid-broadcast — and restarts with its
    // salvaged bytes at 4 s, after the storm has drained.
    let mut fleet = Fleet::new(db, nodes, Capacity::new(200_000_000).admit_all())
        .with_cache_budget(32 << 20)
        .with_tracer(Tracer::new())
        .with_fault_plan(1, NodeFaultPlan::new().with_crash_restart(t(900), t(4_000)));
    println!(
        "catalog of {} movies over {shards} shards on {nodes} nodes; node 1 dies at 900 ms:\n",
        names.len()
    );
    println!("initial placement:\n{}", fleet.placement().render());

    for i in 0..16usize {
        let at = t(i as i64 * 120);
        let name = names[i % names.len()].clone();
        let Response::Opened { session, decision } = fleet
            .request(
                at,
                Request::Open {
                    object: name.clone(),
                },
            )
            .expect("live migration keeps every object reachable")
        else {
            unreachable!("Open always answers Opened");
        };
        let node = fleet.placement().node_of_object(&name);
        println!(
            "viewer {i:2} at {:>4} ms wants {name} (node {node}): {decision}",
            i * 120
        );
        if let Some(id) = session {
            fleet.request(at, Request::Play { session: id }).unwrap();
        }
    }

    let stats = fleet.finish();
    println!(
        "\n{:<8}{:>6}{:>8}{:>10}{:>9}{:>10}{:>8}",
        "node", "up", "hosted", "elements", "crashes", "restarts", "trips"
    );
    println!("{}", "-".repeat(59));
    for n in &stats.per_node {
        println!(
            "{:<8}{:>6}{:>8}{:>10}{:>9}{:>10}{:>8}",
            n.name,
            if n.up { "yes" } else { "no" },
            n.hosted.len(),
            n.elements_served,
            n.crashes,
            n.restarts,
            n.breaker_trips
        );
    }
    println!(
        "\n{} migrations moved {} handoff bytes; {} sent / {} lost on the wire",
        stats.migrations, stats.handoff_bytes, stats.transport_sent, stats.transport_lost
    );
    println!(
        "served {} elements, {} dropped, {} shed; {} deadline misses",
        stats.shards.global.elements_served,
        stats.shards.global.dropped_elements,
        stats.elements_shed,
        stats.shards.global.deadline_misses
    );

    let report = fleet.attribution();
    if report.total() > 0 {
        println!("deadline misses by cause:");
        for (cause, n) in report.by_cause() {
            println!("  {:>22}: {n}", cause.as_str());
        }
    }

    assert_eq!(
        stats.shards.global.dropped_elements, 0,
        "the kill must not cost a single verified serve"
    );
    assert!(stats.migrations > 0, "the kill must actually move shards");
    assert!(stats.per_node[1].up, "node 1 must be back up at the end");
    let placement = fleet.placement();
    for s in 0..placement.shard_count() {
        assert_eq!(
            placement.node_of_shard(s),
            placement.home_of(s),
            "the restart must bring every shard home"
        );
    }
    println!(
        "\nnode 1 died, its shards failed over, and the salvage restart brought them \
         home — zero drops"
    );
}

/// The fleet broadcast with the telemetry plane riding along: every 50 ms
/// of simulated time each server is sampled, the series are compressed
/// into segment models at a 1% error bound, and the post-run report is a
/// set of typed queries answered from the compressed store — no raw
/// per-tick series is ever kept.
fn query_broadcast() {
    use tbm::interp::Interpretation;

    const SEED: u64 = 29;
    let t = |ms: i64| TimePoint::ZERO + TimeDelta::from_millis(ms);
    let names: Vec<String> = (0..8).map(|i| format!("movie{i}")).collect();

    let mut db = ShardedDb::new(6, SEED);
    let frames = render_frames(VideoPattern::MovingBar, 0, 30, 96, 64);
    for name in &names {
        let store = db.store_for_mut(name);
        let (blob, interp) =
            capture_video_scalable(store, &frames, TimeSystem::PAL, DctParams::default()).unwrap();
        let stream = interp.stream("video1").unwrap().clone();
        let mut renamed = Interpretation::new(blob);
        renamed.add_stream(name, stream).unwrap();
        db.register_interpretation(renamed).unwrap();
    }

    let owner = db.shard_for("movie0");
    let (_, stream) = db.shard(owner).stream_of("movie0").unwrap();
    let full_bps = tbm::player::demanded_rate(
        &tbm::player::schedule_from_interp(stream, None),
        stream.system(),
    )
    .unwrap()
    .ceil() as u64;

    let mut fleet = Fleet::new(db, 3, Capacity::new(full_bps * 2).with_overhead_us(100))
        .with_cache_budget(32 << 20)
        .with_tracer(Tracer::new());
    let mut telemetry = FleetTelemetry::new(ErrorBound::percent(1.0), TimeDelta::from_millis(50));
    println!("fleet broadcast with the telemetry plane sampling every 50 ms\n");

    let mut next_viewer = 0usize;
    for k in 0..=100i64 {
        let at = t(50 * k);
        telemetry.tick(&mut fleet, at);
        while next_viewer < 16 && (next_viewer as i64) * 120 < 50 * (k + 1) {
            let name = names[next_viewer % names.len()].clone();
            let open_at = t(next_viewer as i64 * 120).max(at);
            if let Response::Opened {
                session: Some(id), ..
            } = fleet
                .request(open_at, Request::Open { object: name })
                .unwrap()
            {
                fleet
                    .request(open_at, Request::Play { session: id })
                    .unwrap();
            }
            next_viewer += 1;
        }
    }
    telemetry.finish(&mut fleet, t(5_050));
    fleet.finish();

    let store = telemetry.store().expect("the plane ticked");
    println!(
        "telemetry: {} series / {} segments over {} points, {:.1}x compression at 1% error\n",
        store.series_count(),
        store.segment_count(),
        store.point_count(),
        store.compression_ratio()
    );

    let ctx = QueryCtx::from_fleet(&fleet).with_telemetry(store);
    for q in [
        Query::scan(Source::Sessions).filter(Predicate::Degraded(true)),
        Query::scan(Source::Misses).aggregate(Aggregate::Count),
        Query::scan(Source::Metrics)
            .filter(Predicate::MetricIs(Metric::CacheHitPct))
            .aggregate(Aggregate::Mean),
        Query::scan(Source::Metrics)
            .filter(Predicate::MetricIs(Metric::LatenessUs))
            .aggregate(Aggregate::Quantile(99)),
    ] {
        println!("{}", q.run(&ctx).expect("typed and backed").render());
    }

    assert!(store.series_count() > 0, "the plane must have sampled");
    println!("post-run report answered from segment models only");
}

/// The fleet broadcast with the health plane armed: every built-in SLO
/// rule evaluated on each telemetry tick with multi-window burn-rate
/// alerting, against a scripted brownout of node 1 to 25% health over
/// [4 s, 8 s). The sustained imbalance trips the slow-window `load-skew`
/// alert — and only it — which closes by hysteresis after the recovery
/// and prints its deterministic incident report.
fn health_broadcast() {
    use tbm::interp::Interpretation;
    use tbm::query::{HealthMonitor, SloRule};

    const SEED: u64 = 23;
    const SHARDS: usize = 6;
    const NODES: usize = 3;
    const INTERVAL_MS: i64 = 50;
    let t = |ms: i64| TimePoint::ZERO + TimeDelta::from_millis(ms);

    // One movie per shard (probed through the routing hash), so the
    // round-robin viewers load every node identically and the skew rule
    // reads true imbalance, not hash-placement noise.
    let mut by_shard: Vec<Option<String>> = vec![None; SHARDS];
    let mut i = 0u32;
    while by_shard.iter().any(Option::is_none) {
        let name = format!("movie{i}");
        let shard = shard_of(&name, SEED, SHARDS);
        by_shard[shard].get_or_insert(name);
        i += 1;
    }
    let names: Vec<String> = by_shard.into_iter().map(Option::unwrap).collect();

    let mut db = ShardedDb::new(SHARDS, SEED);
    // 250 PAL frames = 10 s of playback: sessions opened in the first
    // 2 s are still streaming through the whole brownout window.
    let frames = render_frames(VideoPattern::MovingBar, 0, 250, 48, 32);
    for name in &names {
        let store = db.store_for_mut(name);
        let (blob, interp) =
            capture_video_scalable(store, &frames, TimeSystem::PAL, DctParams::default()).unwrap();
        let stream = interp.stream("video1").unwrap().clone();
        let mut renamed = Interpretation::new(blob);
        renamed.add_stream(name, stream).unwrap();
        db.register_interpretation(renamed).unwrap();
    }

    let owner = db.shard_for(&names[0]);
    let (_, stream) = db.shard(owner).stream_of(&names[0]).unwrap();
    let full_bps = tbm::player::demanded_rate(
        &tbm::player::schedule_from_interp(stream, None),
        stream.system(),
    )
    .unwrap()
    .ceil() as u64;

    // Ample capacity (~20% steady load per node), so the brownout is the
    // only signal. Skew self-healing is off: this run is about *detecting*
    // the imbalance — the rebalancer is the runbook's fix knob.
    let mut fleet = Fleet::new(db, NODES, Capacity::new(full_bps * 20).admit_all())
        .with_cache_budget(16 << 20)
        .with_rebalance_skew(None)
        .with_tracer(Tracer::with_capacity(1 << 16))
        .with_fault_plan(
            1,
            NodeFaultPlan::new().with_brownout(t(4_000), t(8_000), 25),
        );

    let monitor = HealthMonitor::new(TimeDelta::from_millis(INTERVAL_MS))
        .rule(SloRule::p99_full_lateness_below(2_000.0))
        .rule(SloRule::drop_rate_below(1.0))
        .rule(SloRule::no_unverified_serves())
        .rule(SloRule::load_skew_below(60.0));
    println!("health plane armed with {} rules:", monitor.rules().len());
    for rule in monitor.rules() {
        println!("  {}", rule.describe());
    }
    println!("\nnode 1 browns out to 25% health over [4s, 8s)\n");

    let mut telemetry = FleetTelemetry::new(
        ErrorBound::percent(1.0),
        TimeDelta::from_millis(INTERVAL_MS),
    )
    .with_health(monitor);

    let mut next = 0usize;
    for k in 0..=240i64 {
        let at = t(INTERVAL_MS * k);
        telemetry.tick(&mut fleet, at);
        while next < 12 && (next as i64) * 150 < INTERVAL_MS * (k + 1) {
            let name = names[next % names.len()].clone();
            let open_at = t(next as i64 * 150).max(at);
            if let Ok(Response::Opened {
                session: Some(id), ..
            }) = fleet.request(open_at, Request::Open { object: name })
            {
                let _ = fleet.request(open_at, Request::Play { session: id });
            }
            next += 1;
        }
    }
    telemetry.finish(&mut fleet, t(INTERVAL_MS * 241));
    fleet.finish();

    let monitor = telemetry.health().expect("health plane attached");
    println!("{:<22}{:>8}", "rule", "opens");
    println!("{}", "-".repeat(30));
    for rule in monitor.rules() {
        println!("{:<22}{:>8}", rule.name, monitor.opens(&rule.name));
    }
    println!(
        "\nhealth counters: {} opened / {} closed",
        fleet.metrics().counter("health.alerts.opened"),
        fleet.metrics().counter("health.alerts.closed")
    );

    for report in telemetry.incident_reports() {
        println!("\n{}", report.render());
    }

    // The brownout fires exactly its predicted alert, exactly once.
    for rule in monitor.rules() {
        let expected = u64::from(rule.name == "load-skew");
        assert_eq!(
            monitor.opens(&rule.name),
            expected,
            "{}: the brownout must fire load-skew and nothing else",
            rule.name
        );
    }
    assert!(
        monitor.open_alerts().is_empty(),
        "hysteresis must close the alert after the recovery"
    );
    assert_eq!(telemetry.incident_reports().len(), 1);
    println!("the brownout fired exactly the load-skew alert; report rendered above");
}

/// The brownout broadcast again, but with the loop closed: the
/// remediation plane subscribes to the health plane's alert transitions
/// and drives the playbook's guarded, reversible fleet actions. The
/// `load-skew` alert opens, a rebalance moves one shard off the browned
/// node, verification holds it, and the alert closes itself.
fn remediate_broadcast() {
    use tbm::interp::Interpretation;
    use tbm::query::{HealthMonitor, SloRule};

    const SEED: u64 = 23;
    const SHARDS: usize = 6;
    const NODES: usize = 3;
    const INTERVAL_MS: i64 = 50;
    let t = |ms: i64| TimePoint::ZERO + TimeDelta::from_millis(ms);

    // Same stage as BROADCAST_HEALTH=1: one movie per shard, balanced
    // round-robin viewers, node 1 browned out to 25% over [4s, 8s).
    let mut by_shard: Vec<Option<String>> = vec![None; SHARDS];
    let mut i = 0u32;
    while by_shard.iter().any(Option::is_none) {
        let name = format!("movie{i}");
        let shard = shard_of(&name, SEED, SHARDS);
        by_shard[shard].get_or_insert(name);
        i += 1;
    }
    let names: Vec<String> = by_shard.into_iter().map(Option::unwrap).collect();

    let mut db = ShardedDb::new(SHARDS, SEED);
    let frames = render_frames(VideoPattern::MovingBar, 0, 250, 48, 32);
    for name in &names {
        let store = db.store_for_mut(name);
        let (blob, interp) =
            capture_video_scalable(store, &frames, TimeSystem::PAL, DctParams::default()).unwrap();
        let stream = interp.stream("video1").unwrap().clone();
        let mut renamed = Interpretation::new(blob);
        renamed.add_stream(name, stream).unwrap();
        db.register_interpretation(renamed).unwrap();
    }

    let owner = db.shard_for(&names[0]);
    let (_, stream) = db.shard(owner).stream_of(&names[0]).unwrap();
    let full_bps = tbm::player::demanded_rate(
        &tbm::player::schedule_from_interp(stream, None),
        stream.system(),
    )
    .unwrap()
    .ceil() as u64;

    // The request-plane auto-rebalancer stays off: the remediation plane
    // is the only actor allowed to move shards in this run.
    let mut fleet = Fleet::new(db, NODES, Capacity::new(full_bps * 20).admit_all())
        .with_cache_budget(16 << 20)
        .with_rebalance_skew(None)
        .with_tracer(Tracer::with_capacity(1 << 16))
        .with_fault_plan(
            1,
            NodeFaultPlan::new().with_brownout(t(4_000), t(8_000), 25),
        );

    let monitor = HealthMonitor::new(TimeDelta::from_millis(INTERVAL_MS))
        .rule(SloRule::p99_full_lateness_below(2_000.0))
        .rule(SloRule::drop_rate_below(1.0))
        .rule(SloRule::no_unverified_serves())
        .rule(SloRule::load_skew_below(60.0));
    let remediator = Remediator::new(Playbook::default_rules());
    println!("health plane armed; remediation playbook:");
    for e in remediator.playbook().entries() {
        println!(
            "  on {:<20} {} (budget {}, refill {}t, cooldown {}t, verify {}t)",
            e.rule, e.action, e.budget, e.refill_ticks, e.cooldown_ticks, e.verify_ticks
        );
    }
    println!("\nnode 1 browns out to 25% health over [4s, 8s) — no operator on call\n");

    let mut telemetry = FleetTelemetry::new(
        ErrorBound::percent(1.0),
        TimeDelta::from_millis(INTERVAL_MS),
    )
    .with_health(monitor)
    .with_remediator(remediator);

    let mut next = 0usize;
    for k in 0..=240i64 {
        let at = t(INTERVAL_MS * k);
        telemetry.tick(&mut fleet, at);
        while next < 12 && (next as i64) * 150 < INTERVAL_MS * (k + 1) {
            let name = names[next % names.len()].clone();
            let open_at = t(next as i64 * 150).max(at);
            if let Ok(Response::Opened {
                session: Some(id), ..
            }) = fleet.request(open_at, Request::Open { object: name })
            {
                let _ = fleet.request(open_at, Request::Play { session: id });
            }
            next += 1;
        }
    }
    telemetry.finish(&mut fleet, t(INTERVAL_MS * 241));
    fleet.finish();

    let monitor = telemetry.health().expect("health plane attached");
    let rem = telemetry.remediator().expect("remediator attached");
    println!("{:<22}{:>8}", "rule", "opens");
    println!("{}", "-".repeat(30));
    for rule in monitor.rules() {
        println!("{:<22}{:>8}", rule.name, monitor.opens(&rule.name));
    }
    println!("\nremediation action log:");
    print!("{}", rem.render_log());
    let metrics = fleet.metrics();
    println!(
        "\nremediation counters: {} applied / {} rolled back / {} suppressed",
        metrics.counter("remediation.actions.applied"),
        metrics.counter("remediation.actions.rolled_back"),
        metrics.counter("remediation.actions.suppressed")
    );

    for report in telemetry.incident_reports() {
        println!("\n{}", report.render());
    }

    // The closed loop's contract: the skew alert opened exactly once, a
    // guarded rebalance was applied (and never rolled back), and every
    // alert is closed by the end — with nobody at the keyboard.
    assert_eq!(monitor.opens("load-skew"), 1, "the brownout must alert");
    assert!(
        rem.records()
            .iter()
            .any(|r| r.rule == "load-skew" && r.outcome == tbm::query::Outcome::Applied),
        "the playbook must apply a rebalance"
    );
    assert_eq!(metrics.counter("remediation.actions.rolled_back"), 0);
    assert!(!rem.frozen(), "a clean remediation must not freeze");
    assert!(
        monitor.open_alerts().is_empty(),
        "every alert must close on its own: {:?}",
        monitor.open_alerts()
    );
    println!("load-skew opened, the playbook rebalanced, the alert closed: zero operator input");
}

/// The same broadcast on a tiered store whose fast primary blacks out
/// mid-run: the replica tier carries the outage, the breaker trips and
/// self-heals, and the drop rate stays zero.
fn blackout_broadcast() {
    let t = |ms: i64| TimePoint::ZERO + TimeDelta::from_millis(ms);
    let mut store = TieredBlobStore::new()
        .with_tier(
            TierConfig::new("primary", 150).with_breaker(3, 50_000),
            MemBlobStore::new(),
        )
        .with_tier(
            TierConfig::new("replica", 2_000).with_breaker(3, 20_000),
            MemBlobStore::new(),
        );
    let frames = render_frames(VideoPattern::MovingBar, 0, 50, 96, 64);
    let (_blob, interp) =
        capture_video_scalable(&mut store, &frames, TimeSystem::PAL, DctParams::default()).unwrap();
    // The primary goes dark over [150ms, 700ms) of simulated time —
    // right across the middle of the broadcast.
    let store = store.with_outage(0, t(150), t(700));
    let mut db = MediaDb::with_store(store);
    db.register_interpretation(interp).unwrap();

    let (_, stream) = db.stream_of("video1").unwrap();
    let full_jobs = tbm::player::schedule_from_interp(stream, None);
    let full_bps = tbm::player::demanded_rate(&full_jobs, stream.system())
        .unwrap()
        .ceil() as u64;
    // Roomy capacity and no cache: every read of every viewer exercises
    // the tier stack, so the blackout is actually felt.
    let mut server = Server::new(db, Capacity::new(full_bps * 8));
    println!("broadcast over a tiered store; primary tier blacks out [150ms, 700ms)\n");
    for n in 0..6 {
        let at = t(n * 150);
        if let Response::Opened {
            session: Some(id), ..
        } = server
            .request(
                at,
                Request::Open {
                    object: "video1".into(),
                },
            )
            .unwrap()
        {
            server.request(at, Request::Play { session: id }).unwrap();
        }
    }
    let stats = server.finish();

    let store = server.db().store();
    println!(
        "{:<10}{:>8}{:>9}{:>8}{:>14}{:>10}",
        "tier", "serves", "faults", "opens", "hedged probes", "breaker"
    );
    println!("{}", "-".repeat(59));
    for ts in store.tier_stats() {
        println!(
            "{:<10}{:>8}{:>9}{:>8}{:>14}{:>10}",
            ts.name, ts.serves, ts.faults, ts.breaker_opens, ts.hedged_probes, ts.state
        );
    }
    println!(
        "\nserved {} elements across {} sessions: {} dropped, {} failover reads",
        stats.elements_served,
        stats.finished_sessions,
        stats.dropped_elements,
        store.failover_reads()
    );

    assert_eq!(
        stats.dropped_elements, 0,
        "the replica tier must carry the blackout without a single drop"
    );
    assert!(
        store.failover_reads() > 0,
        "the blackout must force reads over the failover path"
    );
    assert_eq!(
        store.breaker_state(0),
        Some(BreakerState::Closed),
        "the primary's breaker must heal once the outage ends"
    );
    println!("breaker tripped and healed; zero drops — the broadcast survived the outage");
}
