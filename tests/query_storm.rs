//! Query storm: the telemetry plane riding a fleet broadcast end to end.
//! Pins the tentpole guarantees: per-tick samples compress into segment
//! models that tile the tick schedule, ship over the fleet's charged
//! links (losses retried in order, stragglers salvaged at finish),
//! model-native aggregates answer within the configured bound, typed
//! queries enforce their predicate/source validity matrix, and same-seed
//! runs render byte-identical answers.

use tbm::codec::dct::DctParams;
use tbm::interp::capture::capture_video_scalable;
use tbm::interp::Interpretation;
use tbm::media::gen::{render_frames, VideoPattern};
use tbm::prelude::*;
use tbm::query::Source;
use tbm::serve::Request;
use tbm::time::{TimeDelta, TimePoint, TimeSystem};

const SEED: u64 = 23;
const NODES: usize = 3;
const SHARDS: usize = 6;
const INTERVAL_MS: i64 = 50;
const TICKS: i64 = 120;

fn t(ms: i64) -> TimePoint {
    TimePoint::ZERO + TimeDelta::from_millis(ms)
}

fn catalog(names: &[String]) -> ShardedDb {
    let mut db = ShardedDb::new(SHARDS, SEED);
    let frames = render_frames(VideoPattern::MovingBar, 0, 30, 96, 64);
    for name in names {
        let store = db.store_for_mut(name);
        let (blob, interp) =
            capture_video_scalable(store, &frames, TimeSystem::PAL, DctParams::default()).unwrap();
        let stream = interp.stream("video1").unwrap().clone();
        let mut renamed = Interpretation::new(blob);
        renamed.add_stream(name, stream).unwrap();
        db.register_interpretation(renamed).unwrap();
    }
    db
}

/// One broadcast with the plane sampling every tick; returns the fleet
/// (finished), the telemetry (finished) and the session count.
fn storm(bound: ErrorBound, lossy_links: bool) -> (Fleet, FleetTelemetry) {
    let names: Vec<String> = (0..8).map(|i| format!("movie{i}")).collect();
    let db = catalog(&names);
    let owner = db.shard_for("movie0");
    let (_, stream) = db.shard(owner).stream_of("movie0").unwrap();
    let full_bps = tbm::player::demanded_rate(
        &tbm::player::schedule_from_interp(stream, None),
        stream.system(),
    )
    .unwrap()
    .ceil() as u64;

    let mut fleet = Fleet::new(db, NODES, Capacity::new(full_bps * 2).with_overhead_us(100))
        .with_cache_budget(16 << 20);
    if lossy_links {
        for node in 0..NODES {
            fleet = fleet.with_link(node, Link::new(10_000_000).with_loss(0.5).with_seed(7));
        }
    }
    let mut telemetry = FleetTelemetry::new(bound, TimeDelta::from_millis(INTERVAL_MS));
    let mut next = 0usize;
    for k in 0..=TICKS {
        let at = t(INTERVAL_MS * k);
        telemetry.tick(&mut fleet, at);
        while next < 12 && (next as i64) * 120 < INTERVAL_MS * (k + 1) {
            let name = names[next % names.len()].clone();
            let open_at = t(next as i64 * 120).max(at);
            if let Ok(Response::Opened {
                session: Some(id), ..
            }) = fleet.request(open_at, Request::Open { object: name })
            {
                let _ = fleet.request(open_at, Request::Play { session: id });
            }
            next += 1;
        }
    }
    telemetry.finish(&mut fleet, t(INTERVAL_MS * (TICKS + 1)));
    fleet.finish();
    (fleet, telemetry)
}

#[test]
fn segments_tile_the_tick_schedule_and_compress() {
    let (_, telemetry) = storm(ErrorBound::percent(1.0), false);
    let store = telemetry.store().expect("the plane ticked");

    assert!(store.series_count() > 0, "the plane must have sampled");
    for key in store.keys() {
        let mut tick = 0u32;
        for seg in store.segments(key) {
            assert_eq!(seg.start_tick, tick, "{key}: segments must tile");
            assert!(seg.count > 0);
            tick = seg.end_tick();
        }
    }
    assert!(
        store.compression_ratio() > 2.0,
        "model compression must beat raw per-tick storage (got {:.1}x)",
        store.compression_ratio()
    );
    // Every sampled series covers the same tick schedule.
    let ticks = telemetry.ticks() as u64;
    assert_eq!(store.point_count(), ticks * store.series_count() as u64);
}

#[test]
fn lossy_links_lose_nothing_by_the_end() {
    let (_, clean) = storm(ErrorBound::percent(1.0), false);
    let (_, lossy) = storm(ErrorBound::percent(1.0), true);

    assert!(
        lossy.lost_shipments() > 0,
        "a 50% loss link must actually lose shipment batches"
    );
    // Retry + salvage deliver every segment: the stores hold the same
    // points per key (values can differ only if the fleet diverged, which
    // loss draws do cause — coverage, not equality, is the invariant).
    let store = lossy.store().expect("ticked");
    for key in store.keys() {
        let covered: u64 = store.segments(key).iter().map(|s| u64::from(s.count)).sum();
        assert_eq!(
            covered,
            u64::from(lossy.ticks()),
            "{key}: every tick must arrive despite the lossy link"
        );
    }
    assert_eq!(
        clean.store().expect("ticked").point_count(),
        store.point_count(),
        "loss must cost retries, never points"
    );
}

#[test]
fn model_aggregates_within_bound_of_lossless() {
    let (_, lossy) = storm(ErrorBound::percent(1.0), false);
    let (_, exact) = storm(ErrorBound::LOSSLESS, false);
    let lossy = lossy.store().expect("ticked");
    let exact = exact.store().expect("ticked");

    let mut checked = 0usize;
    for metric in Metric::ALL {
        for agg in [
            Aggregate::Min,
            Aggregate::Max,
            Aggregate::Mean,
            Aggregate::Quantile(50),
            Aggregate::Quantile(99),
        ] {
            let sel = Selector::metric(metric);
            let (Some(m), Some(e)) = (lossy.aggregate(&sel, agg), exact.aggregate(&sel, agg))
            else {
                continue;
            };
            assert!(
                (m.value - e.value).abs() <= 0.01 * e.value.abs() + 1e-9,
                "{metric}/{agg}: model {} vs exact {}",
                m.value,
                e.value
            );
            checked += 1;
        }
    }
    assert!(checked >= 10, "the sweep must actually check aggregates");

    // Counts are exact at any bound (segment counts may differ — the
    // bound changes how runs split, never how many ticks they cover).
    let sel = Selector::all();
    let (m, e) = (
        lossy.aggregate(&sel, Aggregate::Count).expect("non-empty"),
        exact.aggregate(&sel, Aggregate::Count).expect("non-empty"),
    );
    assert_eq!(m.value, e.value);
    assert_eq!(m.points, e.points);
}

#[test]
fn typed_queries_span_catalogs_sessions_and_telemetry() {
    let (fleet, telemetry) = storm(ErrorBound::percent(1.0), false);
    let store = telemetry.store().expect("ticked");
    let ctx = QueryCtx::from_fleet(&fleet).with_telemetry(store);

    // Catalog scan: all eight movies, all video.
    let objects = Query::scan(Source::Objects)
        .filter(Predicate::KindIs(MediaKind::Video))
        .run(&ctx)
        .unwrap();
    assert_eq!(objects.len(), 8);

    // Session ledger: every session row joins its shard to its node.
    let sessions = Query::scan(Source::Sessions).run(&ctx).unwrap();
    assert!(!sessions.is_empty());

    // Telemetry aggregate: a full-window p99 over the lateness series.
    let p99 = Query::scan(Source::Metrics)
        .filter(Predicate::MetricIs(Metric::LatenessUs))
        .aggregate(Aggregate::Quantile(99))
        .run(&ctx)
        .unwrap();
    assert_eq!(p99.len(), 1);

    // The validity matrix is enforced, not silently empty: a codec
    // predicate makes no sense over sessions…
    let err = Query::scan(Source::Sessions)
        .filter(Predicate::CodecIs("DCT".into()))
        .run(&ctx)
        .unwrap_err();
    assert!(matches!(err, QueryError::PredicateNotTyped { .. }));
    // …and a metrics query without a telemetry store names the problem.
    let bare = QueryCtx::from_fleet(&fleet);
    let err = Query::scan(Source::Metrics).run(&bare).unwrap_err();
    assert!(matches!(err, QueryError::NoTelemetry));
}

#[test]
fn same_seed_runs_render_identical_answers() {
    let render = || {
        let (fleet, telemetry) = storm(ErrorBound::percent(1.0), false);
        let store = telemetry.store().expect("ticked").clone();
        let ctx = QueryCtx::from_fleet(&fleet).with_telemetry(&store);
        let mut out = String::new();
        for q in [
            Query::scan(Source::Sessions).filter(Predicate::Degraded(true)),
            Query::scan(Source::Misses).aggregate(Aggregate::Count),
            Query::scan(Source::Metrics)
                .filter(Predicate::MetricIs(Metric::LatenessUs))
                .aggregate(Aggregate::Quantile(99)),
        ] {
            out.push_str(&q.run(&ctx).unwrap().render());
            out.push('\n');
        }
        out
    };
    assert_eq!(render(), render(), "same seed, same bytes");
}
