//! Scaling storm: the parallel shard pool's determinism contract and
//! cache-aware admission, end to end.
//!
//! * Same seed, same requests ⇒ byte-identical stats, rendered metrics and
//!   exported traces at ANY worker count (1, 2, 4, 8, with and without a
//!   barrier tick) — the contract DESIGN §16 spells out.
//! * Cache-aware admission: an object resident in the segment cache admits
//!   sessions its cold twin would bounce, the decode stage still gates at
//!   full demand, and evictions re-charge admitted sessions.

use tbm::codec::dct::DctParams;
use tbm::interp::capture::capture_video_scalable;
use tbm::interp::Interpretation;
use tbm::media::gen::{render_frames, VideoPattern};
use tbm::obs::DEFAULT_TRACE_CAPACITY;
use tbm::prelude::*;
use tbm::serve::{AdmitDecision, Request, Response, Server, ShardedStats};
use tbm::time::{TimeDelta, TimePoint, TimeSystem};

fn t(ms: i64) -> TimePoint {
    TimePoint::ZERO + TimeDelta::from_millis(ms)
}

// ---------------------------------------------------------------------------
// Determinism at any worker count
// ---------------------------------------------------------------------------

/// A sharded catalog of scalable movies over one seeded faulty store per
/// shard (fault injection per shard, like per-machine storage).
fn sharded_faulty_db(
    names: &[String],
    shards: usize,
    seed: u64,
) -> ShardedDb<FaultyBlobStore<MemBlobStore>> {
    let mut stores: Vec<MemBlobStore> = (0..shards).map(|_| MemBlobStore::new()).collect();
    let frames = render_frames(VideoPattern::MovingBar, 0, 20, 48, 32);
    let mut interps = Vec::new();
    for name in names {
        let owner = shard_of(name, seed, shards);
        let (blob, interp) = capture_video_scalable(
            &mut stores[owner],
            &frames,
            TimeSystem::PAL,
            DctParams::default(),
        )
        .unwrap();
        let stream = interp.stream("video1").unwrap().clone();
        let mut renamed = Interpretation::new(blob);
        renamed.add_stream(name, stream).unwrap();
        interps.push(renamed);
    }
    let faulty = stores
        .into_iter()
        .enumerate()
        .map(|(i, store)| {
            let plan = FaultPlan::new(seed ^ (i as u64 + 1))
                .with_transient(0.2)
                .with_corruption(0.05)
                .with_latency(0.1, 300);
            FaultyBlobStore::new(store, plan)
        })
        .collect();
    let mut db = ShardedDb::with_stores(faulty, seed);
    for interp in interps {
        db.register_interpretation(interp).unwrap();
    }
    db
}

/// Everything the determinism contract covers, captured from one storm.
#[derive(PartialEq)]
struct Surface {
    stats: ShardedStats,
    metrics: String,
    chrome_trace: Vec<u8>,
    records: usize,
}

/// A 12-session staggered storm over 4 faulty shards, per-shard tracers
/// on, driven at `workers` workers (with an optional barrier tick).
fn traced_storm(workers: usize, tick_ms: Option<i64>) -> Surface {
    let seed = 0xBEEF;
    let shards = 4;
    let names: Vec<String> = (0..6).map(|i| format!("movie{i}")).collect();
    let db = sharded_faulty_db(&names, shards, seed);
    let mut server = ShardedServer::new(db, Capacity::new(100_000_000))
        .with_cache_budget(16 << 20)
        .with_shard_tracers(DEFAULT_TRACE_CAPACITY)
        .with_workers(workers);
    if let Some(ms) = tick_ms {
        server = server.with_tick(TimeDelta::from_millis(ms));
    }
    for i in 0..12usize {
        let at = t(i as i64 * 150);
        let object = names[i % names.len()].clone();
        let Response::Opened { session, .. } =
            server.request(at, Request::Open { object }).unwrap()
        else {
            panic!("Open answers Opened");
        };
        if let Some(id) = session {
            server.request(at, Request::Play { session: id }).unwrap();
        }
    }
    let stats = server.finish();
    let mut chrome_trace = Vec::new();
    server.trace_to_writer(&mut chrome_trace).unwrap();
    Surface {
        stats,
        metrics: server.metrics().render(),
        records: server.trace().records.len(),
        chrome_trace,
    }
}

#[test]
fn storm_is_byte_identical_at_any_worker_count() {
    let base = traced_storm(1, None);
    assert!(base.stats.global.elements_served > 0);
    assert!(base.records > 0, "per-shard tracers must have recorded");
    for workers in [2usize, 4, 8] {
        let run = traced_storm(workers, None);
        assert!(
            base == run,
            "stats/metrics/trace diverged at {workers} workers"
        );
    }
    // The barrier tick is purely a scheduling knob: same bytes out.
    for (workers, tick) in [(1usize, 100i64), (4, 100), (4, 37)] {
        let run = traced_storm(workers, Some(tick));
        assert!(
            base == run,
            "stats/metrics/trace diverged at {workers} workers, {tick} ms tick"
        );
    }
}

#[test]
fn staged_drain_matches_sequential() {
    // The throughput suite's shape: stage every session at one worker,
    // raise the count mid-run, drain. Served elements must not notice.
    let storm = |workers: usize| {
        let seed = 0x7EE0;
        let shards = 4;
        let names: Vec<String> = (0..8).map(|i| format!("movie{i}")).collect();
        let db = sharded_faulty_db(&names, shards, seed);
        let mut server = ShardedServer::new(db, Capacity::new(1 << 40));
        for i in 0..24usize {
            let object = names[i % names.len()].clone();
            if let Response::Opened {
                session: Some(id), ..
            } = server
                .request(TimePoint::ZERO, Request::Open { object })
                .unwrap()
            {
                server
                    .request(TimePoint::ZERO, Request::Play { session: id })
                    .unwrap();
            }
        }
        assert_eq!(server.set_workers(workers), 1, "staged at one worker");
        (server.finish(), server.metrics().render())
    };
    let (stats_1, metrics_1) = storm(1);
    for workers in [2usize, 4] {
        let (stats_n, metrics_n) = storm(workers);
        assert_eq!(stats_1, stats_n, "stats diverged at {workers} workers");
        assert_eq!(
            metrics_1, metrics_n,
            "metrics diverged at {workers} workers"
        );
    }
    assert_eq!(stats_1.global.elements_served, 24 * 20);
}

// ---------------------------------------------------------------------------
// Cache-aware admission
// ---------------------------------------------------------------------------

/// One scalable movie in a clean in-memory catalog.
fn movie_db() -> MediaDb<MemBlobStore> {
    let mut store = MemBlobStore::new();
    let frames = render_frames(VideoPattern::MovingBar, 0, 30, 64, 48);
    let (_blob, interp) =
        capture_video_scalable(&mut store, &frames, TimeSystem::PAL, DctParams::default()).unwrap();
    let mut db = MediaDb::with_store(store);
    db.register_interpretation(interp).unwrap();
    db
}

/// Full-fidelity demand of the movie in bytes/s.
fn full_demand(db: &MediaDb<MemBlobStore>) -> u64 {
    let (_, stream) = db.stream_of("video1").unwrap();
    let jobs = tbm::player::schedule_from_interp(stream, None);
    tbm::player::demanded_rate(&jobs, stream.system())
        .unwrap()
        .ceil() as u64
}

/// Plays one session through the whole movie, leaving every verified span
/// of the object resident in the server's cache.
fn warm_cache(server: &mut Server<MemBlobStore>) {
    let Response::Opened {
        session: Some(id),
        decision,
    } = server
        .request(
            t(0),
            Request::Open {
                object: "video1".into(),
            },
        )
        .unwrap()
    else {
        panic!("warmup session must be admitted");
    };
    assert_eq!(decision, AdmitDecision::Admitted);
    server.request(t(0), Request::Play { session: id }).unwrap();
    server.finish();
}

fn open(server: &mut Server<MemBlobStore>, at: TimePoint) -> (Option<SessionId>, AdmitDecision) {
    let Response::Opened { session, decision } = server
        .request(
            at,
            Request::Open {
                object: "video1".into(),
            },
        )
        .unwrap()
    else {
        panic!("Open answers Opened");
    };
    (session, decision)
}

#[test]
fn hot_object_admits_where_cold_object_bounces() {
    let d = full_demand(&movie_db()) as i64;
    let two_sessions = Capacity::new(2 * d as u64 + 1);

    // Cold control: no cache residency to discount against. The warmed-up
    // session has finished (capacity released), so two more fit and the
    // fourth open bounces off the full-fidelity path.
    let mut cold = Server::new(movie_db(), two_sessions.with_cache_aware_admission());
    warm_cache(&mut cold);
    cold.set_cache_budget(0); // drop residency, keep everything else equal
    let decisions: Vec<AdmitDecision> = (0..3).map(|_| open(&mut cold, t(100_000)).1).collect();
    assert_eq!(decisions[0], AdmitDecision::Admitted);
    assert_eq!(decisions[1], AdmitDecision::Admitted);
    assert!(
        !matches!(decisions[2], AdmitDecision::Admitted),
        "third cold session must not fit at full fidelity: {decisions:?}"
    );

    // Hot: the same storm against a warmed cache. Every planned span is
    // resident, the storage stage is charged zero, and all three admit at
    // full fidelity.
    let mut hot = Server::new(movie_db(), two_sessions.with_cache_aware_admission())
        .with_cache_budget(64 << 20);
    warm_cache(&mut hot);
    for i in 0..3 {
        let (_, decision) = open(&mut hot, t(100_000));
        assert_eq!(
            decision,
            AdmitDecision::Admitted,
            "hot session {i} must admit at full fidelity"
        );
    }
    assert_eq!(
        hot.stats().committed_bps,
        0,
        "fully resident sessions charge the storage stage nothing"
    );
}

#[test]
fn decode_stage_still_gates_fully_resident_sessions() {
    // Cache hits skip the fetch but not the decode: with the decode stage
    // sized for two sessions, the third bounces even though its storage
    // charge is zero.
    let d = full_demand(&movie_db());
    let capacity = Capacity::new(2 * d + 1)
        .with_decode_rate(2 * d + 1)
        .with_cache_aware_admission();
    let mut server = Server::new(movie_db(), capacity).with_cache_budget(64 << 20);
    warm_cache(&mut server);
    let decisions: Vec<AdmitDecision> = (0..3).map(|_| open(&mut server, t(100_000)).1).collect();
    assert_eq!(decisions[0], AdmitDecision::Admitted);
    assert_eq!(decisions[1], AdmitDecision::Admitted);
    assert!(
        !matches!(decisions[2], AdmitDecision::Admitted),
        "decode stage must reject the third session: {decisions:?}"
    );
}

#[test]
fn eviction_reprices_admitted_sessions() {
    let d = full_demand(&movie_db());
    let capacity = Capacity::new(3 * d / 2 + 1).with_cache_aware_admission();

    // Hot twin: a second session admitted against residency stays cheap,
    // so a third still fits.
    let mut stays_hot = Server::new(movie_db(), capacity).with_cache_budget(64 << 20);
    warm_cache(&mut stays_hot);
    let (_, b) = open(&mut stays_hot, t(100_000));
    assert_eq!(b, AdmitDecision::Admitted);
    assert_eq!(stays_hot.stats().committed_bps, 0, "hot session charges 0");
    let (_, c) = open(&mut stays_hot, t(100_000));
    assert_eq!(c, AdmitDecision::Admitted);

    // Evicted twin: identical up to the second admission, then the cache
    // is dropped. The admitted session is re-charged its full demand on
    // the spot, and the third open now bounces.
    let mut evicted = Server::new(movie_db(), capacity).with_cache_budget(64 << 20);
    warm_cache(&mut evicted);
    let (_, b) = open(&mut evicted, t(100_000));
    assert_eq!(b, AdmitDecision::Admitted);
    assert_eq!(evicted.stats().committed_bps, 0);
    evicted.set_cache_budget(0);
    assert!(
        evicted.stats().committed_bps >= d.saturating_sub(1),
        "eviction must re-charge the resident session its full demand, got {}",
        evicted.stats().committed_bps
    );
    let (_, c) = open(&mut evicted, t(100_000));
    assert!(
        !matches!(c, AdmitDecision::Admitted),
        "repriced headroom must bounce the full-fidelity open: {c:?}"
    );
}

#[test]
fn cache_aware_flag_off_is_inert() {
    // The flag defaults off, and the warmed-up storm then prices exactly
    // like the cold one: residency is never consulted.
    let d = full_demand(&movie_db());
    let mut server = Server::new(movie_db(), Capacity::new(2 * d + 1)).with_cache_budget(64 << 20);
    warm_cache(&mut server);
    let decisions: Vec<AdmitDecision> = (0..3).map(|_| open(&mut server, t(100_000)).1).collect();
    assert_eq!(decisions[0], AdmitDecision::Admitted);
    assert_eq!(decisions[1], AdmitDecision::Admitted);
    assert!(
        !matches!(decisions[2], AdmitDecision::Admitted),
        "off-flag admission must ignore the warm cache: {decisions:?}"
    );
}

#[test]
fn batched_loop_counts_batches_and_spans_them_on_request() {
    // Sessions anchored at the same instant share element deadlines, so
    // the loop serves them in same-deadline batches; the counter is part
    // of the deterministic surface, the spans are opt-in.
    let mut server = Server::new(movie_db(), Capacity::new(1 << 40))
        .with_batch_spans()
        .with_tracer(tbm::obs::Tracer::new());
    for _ in 0..4 {
        let (id, decision) = open(&mut server, t(0));
        assert_eq!(decision, AdmitDecision::Admitted);
        server
            .request(
                t(0),
                Request::Play {
                    session: id.unwrap(),
                },
            )
            .unwrap();
    }
    server.finish();
    assert!(
        server.metrics().counter("serve.batches") > 0,
        "same-deadline serves must be counted as batches"
    );
    let batches = server
        .trace()
        .records
        .iter()
        .filter(|r| r.name == "batch")
        .count();
    assert!(batches > 0, "with_batch_spans must record sched spans");
}
