//! Tier storm: the tiered BLOB store under scripted blackouts and random
//! per-tier fault plans, checked end-to-end through the serving stack —
//! no read is ever served unverified, failover keeps the drop rate at
//! zero, breakers heal, and every deadline miss gets exactly one cause.

use tbm::codec::dct::DctParams;
use tbm::interp::capture::capture_video_scalable;
use tbm::media::gen::{render_frames, VideoPattern};
use tbm::prelude::*;
use tbm::serve::{Request, Response, Server};
use tbm::time::{TimeDelta, TimePoint, TimeSystem};

const ELEMENTS: usize = 20;

fn t(ms: i64) -> TimePoint {
    TimePoint::ZERO + TimeDelta::from_millis(ms)
}

/// Three tiers fastest-first — mem over file over remote — each backed by
/// its own seeded fault injector.
fn tiered_store(plans: [FaultPlan; 3]) -> TieredBlobStore {
    let [mem, file, remote] = plans;
    TieredBlobStore::new()
        .with_tier(
            TierConfig::new("mem", 20).with_breaker(4, 5_000),
            FaultyBlobStore::new(MemBlobStore::new(), mem),
        )
        .with_tier(
            TierConfig::new("file", 150).with_breaker(4, 10_000),
            FaultyBlobStore::new(MemBlobStore::new(), file),
        )
        .with_tier(
            TierConfig::new("remote", 2_000).with_breaker(3, 20_000),
            FaultyBlobStore::new(MemBlobStore::new(), remote),
        )
}

/// Captures one scalable movie through the tiered facade (write-through
/// populates every tier identically; checksums come from the source bytes).
fn capture_into(store: &mut TieredBlobStore) -> tbm::interp::Interpretation {
    let frames = render_frames(VideoPattern::MovingBar, 0, ELEMENTS, 48, 32);
    let (_blob, interp) =
        capture_video_scalable(store, &frames, TimeSystem::PAL, DctParams::default()).unwrap();
    interp
}

fn open(server: &mut Server<TieredBlobStore>, at: TimePoint) -> Option<tbm::core::SessionId> {
    match server
        .request(
            at,
            Request::Open {
                object: "video1".into(),
            },
        )
        .unwrap()
    {
        Response::Opened { session, .. } => session,
        other => panic!("unexpected response: {other:?}"),
    }
}

#[test]
fn fast_tier_blackout_fails_over_without_drops_and_heals() {
    let run = || {
        let tracer = Tracer::new();
        let mut store = tiered_store([FaultPlan::new(1), FaultPlan::new(2), FaultPlan::new(3)])
            .with_tracer(tracer.clone());
        let interp = capture_into(&mut store);
        // Both fast tiers go dark for the first 50ms of simulated time —
        // session A's whole service window — so every one of its reads
        // must fail over to the remote tier.
        let store = store
            .with_outage(0, t(0), t(50))
            .with_outage(1, t(0), t(50));
        let mut db = MediaDb::with_store(store);
        db.register_interpretation(interp).unwrap();
        let mut server = Server::new(db, Capacity::new(50_000_000))
            .with_cache_budget(0)
            .with_tracer(tracer.clone());

        let a = open(&mut server, t(0)).unwrap();
        server.request(t(0), Request::Play { session: a }).unwrap();
        server.run_until(t(100));
        assert_eq!(
            server.db().store().breaker_state(0),
            Some(BreakerState::Open),
            "the blackout must trip the mem breaker"
        );
        // Session B dispatches after the blackout and the cooldowns: its
        // first read is the half-open probe that heals the fast tier.
        let b = open(&mut server, t(200)).unwrap();
        server
            .request(t(200), Request::Play { session: b })
            .unwrap();
        let stats = server.finish();

        let store = server.db().store();
        let tiers = store.tier_stats();
        (
            stats,
            tiers,
            store.failover_reads(),
            store.breaker_state(0),
            server.attribution().total(),
            tracer.snapshot(),
        )
    };

    let (stats, tiers, failovers, mem_state, attributed, snap) = run();

    // A total fast-tier blackout loses nothing: the remote tier serves.
    assert_eq!(stats.dropped_elements, 0, "failover must prevent drops");
    assert_eq!(stats.elements_served, 2 * ELEMENTS);
    assert_eq!(stats.finished_sessions, 2);
    assert!(failovers > 0, "session A must have failed over");
    assert!(tiers[2].serves > 0, "the remote tier carried the blackout");
    assert!(tiers[0].breaker_opens >= 1);
    // During the 50ms outage the 5ms-cooldown breaker admits at most one
    // half-open probe per cooldown window after the initial 4-fault trip —
    // far fewer faults than the ~120 raw read attempts a 40-element
    // blackout would otherwise hammer the dead tier with.
    assert!(
        tiers[0].faults <= 4 + 50 / 5,
        "the breaker must cap faults at threshold + one probe per cooldown, got {}",
        tiers[0].faults
    );

    // Self-healing: session B's reads land on the healed fast tier.
    assert_eq!(mem_state, Some(BreakerState::Closed));
    assert!(tiers[0].serves > 0, "healed tier serves again");

    // The outage is first-class in the trace, and attribution still
    // assigns exactly one cause per miss.
    assert!(snap.records.iter().any(|r| r.name == "tier.failover"));
    assert!(snap.records.iter().any(|r| r.name == "tier.outage"));
    assert!(snap.records.iter().any(|r| r.name == "tier.breaker_close"));
    assert_eq!(attributed, stats.deadline_misses);

    // Byte-identical reruns, through outages, breakers and failovers.
    let again = run();
    assert_eq!(stats, again.0);
    assert_eq!(tiers, again.1);
    assert_eq!(failovers, again.2);
}

mod prop {
    use super::*;
    use proptest::prelude::*;

    fn plans(
        seeds: (u64, u64, u64),
        trans: (f64, f64, f64),
        corr: (f64, f64, f64),
    ) -> [FaultPlan; 3] {
        [
            FaultPlan::new(seeds.0)
                .with_transient(trans.0)
                .with_corruption(corr.0),
            FaultPlan::new(seeds.1)
                .with_transient(trans.1)
                .with_corruption(corr.1),
            FaultPlan::new(seeds.2)
                .with_transient(trans.2)
                .with_corruption(corr.2),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        /// However the per-tier fault plans are drawn: (1) a read that
        /// succeeds when a checksum is known always returns verifying
        /// bytes, whatever mix of tiers corrupted their copies; (2) every
        /// deadline miss in a served storm is attributed to exactly one
        /// cause; (3) the fault partition holds.
        #[test]
        fn no_unverified_serves_and_every_miss_has_one_cause(
            seeds in (any::<u64>(), any::<u64>(), any::<u64>()),
            trans in (0.0f64..0.4, 0.0f64..0.4, 0.0f64..0.4),
            corr in (0.0f64..0.4, 0.0f64..0.4, 0.0f64..0.4),
            outage_ms in 1i64..200,
        ) {
            // Part 1: direct reads through the stack, marching the clock so
            // the scripted fast-tier outage and the breakers engage.
            let mut store = tiered_store(plans(seeds, trans, corr));
            let interp = capture_into(&mut store);
            let store = store.with_outage(0, t(0), t(outage_ms));
            let mut db = MediaDb::with_store(store);
            db.register_interpretation(interp).unwrap();
            let (interp, stream) = db.stream_of("video1").unwrap();
            let blob = interp.blob();
            let store = db.store();
            let mut served = 0u32;
            for (i, entry) in stream.entries().iter().enumerate() {
                for (li, &span) in entry.placement.layers().iter().enumerate() {
                    let Some(&sum) = entry.checksums.get(li) else { continue };
                    store.set_sim_now(t(i as i64 * 20));
                    let ctx = ReadCtx {
                        attempt: 0,
                        deadline_slack_us: None,
                        expected_crc: Some(sum),
                    };
                    let mut buf = vec![0u8; span.len as usize];
                    if store.read_into_ctx(blob, span, &mut buf, &ctx).is_ok() {
                        served += 1;
                        prop_assert_eq!(
                            crc32(&buf), sum,
                            "a successful read must never hand back unverified bytes"
                        );
                    }
                }
            }
            prop_assert!(served > 0, "three tiers of fallback must serve something");

            // Part 2: an oversubscribed storm over a fresh, identically
            // seeded stack — misses are expected; each gets one cause.
            let mut store = tiered_store(plans(seeds, trans, corr));
            let interp = capture_into(&mut store);
            let store = store.with_outage(0, t(0), t(outage_ms));
            let mut db = MediaDb::with_store(store);
            db.register_interpretation(interp).unwrap();
            let (_, stream) = db.stream_of("video1").unwrap();
            let jobs = tbm::player::schedule_from_interp(stream, None);
            let full = tbm::player::demanded_rate(&jobs, stream.system())
                .unwrap()
                .ceil() as u64;
            let mut server = Server::new(db, Capacity::new(full + full / 8).admit_all())
                .with_tracer(Tracer::new());
            for n in 0..3 {
                if let Some(id) = open(&mut server, t(n * 40)) {
                    server.request(t(n * 40), Request::Play { session: id }).unwrap();
                }
            }
            let stats = server.finish();
            let report = server.attribution();
            prop_assert_eq!(report.total(), stats.deadline_misses);
            let by_cause: usize = report.by_cause().iter().map(|&(_, n)| n).sum();
            prop_assert_eq!(by_cause, report.total(), "causes partition the misses");
            prop_assert_eq!(
                stats.faults_detected,
                stats.degraded_elements + stats.dropped_elements + stats.repaired_elements,
                "fault partition: every fault degraded, dropped or repaired"
            );
        }
    }
}
