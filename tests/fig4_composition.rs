//! Integration test: the paper's Fig. 4 instance — raw BLOBs through four
//! derivation objects into a temporally composed multimedia object, with
//! the Fig. 4(b) timeline.

use tbm::derive::{AudioClip, VideoClip};
use tbm::media::gen::{AudioSignal, VideoPattern};
use tbm::prelude::*;

const W: u32 = 64;
const H: u32 = 48;
const FPS: u32 = 25;

/// Builds the two source scenes and two audio tracks as registered values
/// (the BLOB plumbing is covered by `fig2_pipeline`; here we exercise the
/// derivation/composition half at Fig. 4 proportions: 70 s scenes with a
/// 10 s fade → a 130 s result, scaled 1:10 for speed).
fn setup(db: &mut MediaDb) {
    let scene_frames = 7 * FPS as usize; // 7 s ≙ paper's 70 s
    let v1 = tbm::media::gen::render_frames(VideoPattern::MovingBar, 0, scene_frames, W, H);
    let v2 = tbm::media::gen::render_frames(VideoPattern::ShiftingGradient, 0, scene_frames, W, H);
    db.register_value(
        "video1",
        MediaValue::Video(VideoClip::new(v1, TimeSystem::PAL)),
    )
    .unwrap();
    db.register_value(
        "video2",
        MediaValue::Video(VideoClip::new(v2, TimeSystem::PAL)),
    )
    .unwrap();
    let music = AudioSignal::Sine {
        hz: 330.0,
        amplitude: 7000,
    }
    .generate(0, 13 * 44_100, 44_100, 2);
    let narration = AudioSignal::Sine {
        hz: 200.0,
        amplitude: 9000,
    }
    .generate(0, 6 * 44_100, 44_100, 2);
    db.register_value("audio1", MediaValue::Audio(AudioClip::new(music, 44_100)))
        .unwrap();
    db.register_value(
        "audio2",
        MediaValue::Audio(AudioClip::new(narration, 44_100)),
    )
    .unwrap();
}

fn build_video3(db: &mut MediaDb) {
    let fade = FPS; // 1 s ≙ paper's 10 s
    let scene = 7 * FPS;
    db.create_derived(
        "videoF",
        Node::derive(
            Op::Fade { frames: fade },
            vec![Node::source("video1"), Node::source("video2")],
        ),
    )
    .unwrap();
    db.create_derived(
        "video3",
        Node::derive(
            Op::VideoEdit {
                cuts: vec![
                    EditCut {
                        input: 0,
                        from: 0,
                        to: scene - fade,
                    },
                    EditCut {
                        input: 1,
                        from: 0,
                        to: fade,
                    },
                    EditCut {
                        input: 2,
                        from: fade,
                        to: scene,
                    },
                ],
            },
            vec![
                Node::source("video1"),
                Node::source("videoF"),
                Node::source("video2"),
            ],
        ),
    )
    .unwrap();
}

#[test]
fn video3_concatenates_cut_fade_cut() {
    let mut db = MediaDb::new();
    setup(&mut db);
    build_video3(&mut db);
    let MediaValue::Video(v3) = db.materialize("video3").unwrap() else {
        panic!()
    };
    // 6 s + 1 s + 6 s = 13 s at 25 fps.
    assert_eq!(v3.len(), 13 * FPS as usize);
    // The seam frames equal the fade endpoints: frame 150 is the first fade
    // frame (≈ video1's tail), frame 175 the first of video2's cut.
    let MediaValue::Video(fade) = db.materialize("videoF").unwrap() else {
        panic!()
    };
    assert_eq!(v3.frames[150], fade.frames[0]);
    let MediaValue::Video(v2) = db.materialize("video2").unwrap() else {
        panic!()
    };
    assert_eq!(v3.frames[175], v2.frames[25]);
}

#[test]
fn fade_region_blends_both_scenes() {
    let mut db = MediaDb::new();
    setup(&mut db);
    build_video3(&mut db);
    let MediaValue::Video(fade) = db.materialize("videoF").unwrap() else {
        panic!()
    };
    let MediaValue::Video(v1) = db.materialize("video1").unwrap() else {
        panic!()
    };
    let MediaValue::Video(v2) = db.materialize("video2").unwrap() else {
        panic!()
    };
    // Mid-fade frame differs from both sources but is between them.
    let mid = &fade.frames[12];
    let a = &v1.frames[v1.len() - 25 + 12];
    let b = &v2.frames[12];
    let d_a = a.mean_abs_diff(mid).unwrap();
    let d_b = b.mean_abs_diff(mid).unwrap();
    let d_ab = a.mean_abs_diff(b).unwrap();
    assert!(d_a > 0.0 && d_b > 0.0);
    assert!(d_a < d_ab && d_b < d_ab, "mid-fade lies between the scenes");
}

#[test]
fn multimedia_object_m_matches_fig4b() {
    let mut db = MediaDb::new();
    setup(&mut db);
    build_video3(&mut db);

    // Fig. 4(b) (scaled 1:10): audio1 and video3 span 0:00–0:13; audio2
    // spans 0:00–0:06.
    let mut m = MultimediaObject::new("m");
    let full = TimeDelta::from_secs(13);
    m.add_component(
        Component::new(
            "audio1",
            ComponentKind::Audio,
            Node::source("audio1"),
            TimePoint::ZERO,
            full,
        )
        .unwrap(),
    )
    .unwrap();
    m.add_component(
        Component::new(
            "audio2",
            ComponentKind::Audio,
            Node::source("audio2"),
            TimePoint::ZERO,
            TimeDelta::from_secs(6),
        )
        .unwrap(),
    )
    .unwrap();
    m.add_component(
        Component::new(
            "video3",
            ComponentKind::Video,
            Node::source("video3"),
            TimePoint::ZERO,
            full,
        )
        .unwrap(),
    )
    .unwrap();
    m.add_constraint("audio1", AllenRelation::Equals, "video3")
        .unwrap();
    m.add_constraint("audio2", AllenRelation::Starts, "video3")
        .unwrap();
    m.validate().unwrap();
    assert_eq!(m.duration(), full);

    // Realize a frame and an audio window at t = 6.5 s: narration is over,
    // music still playing, fade underway (6 s..7 s).
    let expander = db.expander_for(&Node::source("video3")).unwrap();
    let mut full_expander = Expander::new();
    for src in ["audio1", "audio2", "video3"] {
        full_expander.add_source(src, db.materialize(src).unwrap());
    }
    drop(expander);
    let composer = Composer::new(&full_expander, W, H);
    let t = TimePoint::from_seconds(Rational::new(13, 2));
    let frame = composer.render_video_frame(&m, t).unwrap();
    assert_eq!((frame.width(), frame.height()), (W, H));
    let audio = composer
        .mix_audio_window(&m, t, TimeDelta::from_millis(100))
        .unwrap();
    assert!(audio.peak() > 3000, "music audible");
    // At t = 3 s both tracks sound: the mix peaks higher.
    let audio_both = composer
        .mix_audio_window(&m, TimePoint::from_secs(3), TimeDelta::from_millis(100))
        .unwrap();
    assert!(audio_both.peak() > audio.peak());

    // The timeline diagram carries the Fig. 4(b) labels (scaled).
    let d = m.timeline_diagram(52);
    assert!(d.contains("0:00"));
    assert!(d.contains("0:06"));
    assert!(d.contains("0:13"));
    db.add_multimedia(m).unwrap();
}

#[test]
fn derivation_objects_are_tiny_next_to_material() {
    let mut db = MediaDb::new();
    setup(&mut db);
    build_video3(&mut db);
    let deriv_total: u64 = ["videoF", "video3"]
        .iter()
        .map(|n| db.derivation_storage_bytes(n).unwrap())
        .sum();
    let material: u64 = db.materialize("video3").unwrap().approx_bytes();
    assert!(
        material > deriv_total * 10_000,
        "material {material} vs derivation objects {deriv_total}"
    );
}
