//! Sharded serving storm: a catalog partitioned across faulty shards,
//! sessions routed by the name hash — the cross-shard invariants
//! (routing, no stat leakage, fault accounting, determinism) checked
//! end to end and under proptest-drawn placements and fault plans.

use tbm::codec::dct::DctParams;
use tbm::interp::capture::capture_video_scalable;
use tbm::interp::Interpretation;
use tbm::media::gen::{render_frames, VideoPattern};
use tbm::prelude::*;
use tbm::serve::{Request, Response, ShardedStats, SHARD_SESSION_STRIDE};
use tbm::time::{TimeDelta, TimePoint, TimeSystem};

fn t(ms: i64) -> TimePoint {
    TimePoint::ZERO + TimeDelta::from_millis(ms)
}

/// A sharded catalog of `names` scalable movies over one faulty store per
/// shard. Each movie's bytes are captured into the store of the shard that
/// [`shard_of`] assigns it, then wrapped in that shard's fault plan — so
/// fault injection is per shard, exactly like per-machine storage.
fn sharded_faulty_db(
    names: &[String],
    shards: usize,
    seed: u64,
    plans: &[FaultPlan],
) -> ShardedDb<FaultyBlobStore<MemBlobStore>> {
    assert_eq!(plans.len(), shards);
    let mut stores: Vec<MemBlobStore> = (0..shards).map(|_| MemBlobStore::new()).collect();
    let frames = render_frames(VideoPattern::MovingBar, 0, 20, 48, 32);
    let mut interps = Vec::new();
    for name in names {
        let owner = shard_of(name, seed, shards);
        let (blob, interp) = capture_video_scalable(
            &mut stores[owner],
            &frames,
            TimeSystem::PAL,
            DctParams::default(),
        )
        .unwrap();
        // The capture helper names streams "video1"; re-hang the stream
        // under the movie's routing name.
        let stream = interp.stream("video1").unwrap().clone();
        let mut renamed = Interpretation::new(blob);
        renamed.add_stream(name, stream).unwrap();
        interps.push(renamed);
    }
    let faulty = stores
        .into_iter()
        .zip(plans.iter().cloned())
        .map(|(store, plan)| FaultyBlobStore::new(store, plan))
        .collect();
    let mut db = ShardedDb::with_stores(faulty, seed);
    for interp in interps {
        db.register_interpretation(interp).unwrap();
    }
    db
}

/// Opens one staggered session per entry of `wave` (indices into `names`)
/// and drains the fleet. Returns the final stats plus every opened
/// `(object, session id)` pair for routing checks.
fn storm(
    names: &[String],
    wave: &[usize],
    shards: usize,
    seed: u64,
    plans: &[FaultPlan],
    capacity: Capacity,
) -> (ShardedStats, Vec<(String, Option<SessionId>)>, String) {
    let db = sharded_faulty_db(names, shards, seed, plans);
    let mut server = ShardedServer::new(db, capacity).with_cache_budget(16 << 20);
    let mut opened = Vec::new();
    for (i, &pick) in wave.iter().enumerate() {
        let at = t(i as i64 * 150);
        let name = names[pick % names.len()].clone();
        let Response::Opened { session, .. } = server
            .request(
                at,
                Request::Open {
                    object: name.clone(),
                },
            )
            .unwrap()
        else {
            panic!("Open answers Opened");
        };
        if let Some(id) = session {
            server.request(at, Request::Play { session: id }).unwrap();
        }
        opened.push((name, session));
    }
    let stats = server.finish();

    // No cross-shard stat leakage: each shard's snapshot is exactly the
    // sum of the sessions *it* admitted (identified by the id stride),
    // and the global view is exactly the sum of the shards.
    for (i, shard_stats) in stats.per_shard.iter().enumerate() {
        let base = i as u64 * SHARD_SESSION_STRIDE;
        let mine: Vec<_> = server
            .sessions()
            .filter(|s| s.id().raw() / SHARD_SESSION_STRIDE == i as u64)
            .collect();
        for s in &mine {
            assert!(s.id().raw() >= base);
        }
        let sum = |f: &dyn Fn(&SessionStats) -> usize| -> usize {
            mine.iter().map(|s| f(&s.stats())).sum()
        };
        assert_eq!(shard_stats.elements_served, sum(&|s| s.elements));
        assert_eq!(shard_stats.deadline_misses, sum(&|s| s.misses));
        assert_eq!(shard_stats.recovered, sum(&|s| s.recovered));
        assert_eq!(shard_stats.degraded_elements, sum(&|s| s.degraded));
        assert_eq!(shard_stats.dropped_elements, sum(&|s| s.dropped));
        assert_eq!(shard_stats.repaired_elements, sum(&|s| s.repaired));
    }
    let mut rebuilt = ServerStats::empty();
    for s in &stats.per_shard {
        rebuilt.absorb(s);
    }
    assert_eq!(rebuilt, stats.global, "global stats must be the shard sum");

    (stats, opened, server.metrics().render())
}

fn plans_for(shards: usize, seed: u64) -> Vec<FaultPlan> {
    (0..shards)
        .map(|i| {
            FaultPlan::new(seed ^ (i as u64 + 1))
                .with_transient(0.2)
                .with_corruption(0.05)
                .with_latency(0.1, 300)
        })
        .collect()
}

#[test]
fn sessions_land_on_their_hash_shard_and_invariants_hold() {
    let names: Vec<String> = (0..6).map(|i| format!("movie{i}")).collect();
    let wave: Vec<usize> = (0..12).collect();
    let shards = 3;
    let seed = 0xC0FFEE;
    let (stats, opened, _) = storm(
        &names,
        &wave,
        shards,
        seed,
        &plans_for(shards, seed),
        Capacity::new(200_000_000).admit_all(),
    );

    // Every admitted session's id names the shard its object hashes to.
    for (name, session) in &opened {
        if let Some(id) = session {
            assert_eq!(
                (id.raw() / SHARD_SESSION_STRIDE) as usize,
                shard_of(name, seed, shards),
                "session for {name:?} landed off its hash shard"
            );
        }
    }

    // The fault invariant holds per shard and globally.
    for s in stats.per_shard.iter().chain(std::iter::once(&stats.global)) {
        assert_eq!(
            s.faults_detected,
            s.degraded_elements + s.dropped_elements + s.repaired_elements
        );
    }
    assert!(stats.global.elements_served > 0);
}

#[test]
fn same_seed_sharded_storms_are_byte_identical() {
    let names: Vec<String> = (0..5).map(|i| format!("movie{i}")).collect();
    let wave: Vec<usize> = (0..10).collect();
    let run = || {
        storm(
            &names,
            &wave,
            4,
            0xBEEF,
            &plans_for(4, 0xBEEF),
            Capacity::new(100_000_000),
        )
    };
    let (stats_a, opened_a, metrics_a) = run();
    let (stats_b, opened_b, metrics_b) = run();
    assert_eq!(stats_a, stats_b, "same seed, same stats");
    assert_eq!(opened_a, opened_b, "same seed, same admissions");
    assert_eq!(metrics_a, metrics_b, "same seed, same rendered metrics");
}

mod prop {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(10))]

        /// However the namespace, placement seed, session wave and
        /// per-shard fault plans are drawn: sessions route to their hash
        /// shard, no stats leak across shards, the fault invariant holds
        /// per shard and globally, and the run replays byte-identically.
        #[test]
        fn sharded_storms_hold_their_invariants(
            seed in any::<u64>(),
            shards in 1usize..5,
            n_objects in 1usize..7,
            wave in proptest::collection::vec(0usize..16, 4..14),
            transient in 0.0f64..0.5,
            corruption in 0.0f64..0.25,
        ) {
            let names: Vec<String> =
                (0..n_objects).map(|i| format!("clip{i}")).collect();
            let plans: Vec<FaultPlan> = (0..shards)
                .map(|i| {
                    FaultPlan::new(seed ^ (i as u64).wrapping_mul(0x9E37_79B9))
                        .with_transient(transient)
                        .with_corruption(corruption)
                })
                .collect();
            let run = || {
                storm(
                    &names,
                    &wave,
                    shards,
                    seed,
                    &plans,
                    Capacity::new(80_000_000),
                )
            };
            let (stats, opened, metrics) = run();

            for (name, session) in &opened {
                if let Some(id) = session {
                    prop_assert_eq!(
                        (id.raw() / SHARD_SESSION_STRIDE) as usize,
                        shard_of(name, seed, shards)
                    );
                }
            }
            for s in stats.per_shard.iter().chain(std::iter::once(&stats.global)) {
                prop_assert_eq!(
                    s.faults_detected,
                    s.degraded_elements + s.dropped_elements + s.repaired_elements
                );
                prop_assert_eq!(s.service.count() as usize, s.elements_served);
                prop_assert_eq!(s.lateness.count() as usize, s.deadline_misses);
            }

            let (stats_again, opened_again, metrics_again) = run();
            prop_assert_eq!(stats, stats_again);
            prop_assert_eq!(opened, opened_again);
            prop_assert_eq!(metrics, metrics_again);
        }
    }
}
