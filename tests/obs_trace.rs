//! Golden observability tests: the Chrome trace export of a seeded run is
//! byte-stable, span parent links are acyclic, and the deadline-miss
//! attribution report covers every miss exactly once.

use tbm::blob::{FaultPlan, FaultyBlobStore, MemBlobStore};
use tbm::codec::dct::DctParams;
use tbm::interp::capture::capture_video_scalable;
use tbm::media::gen::{render_frames, VideoPattern};
use tbm::obs::{chrome_trace, validate_json, SpanId, Tracer};
use tbm::prelude::*;
use tbm::serve::{Request, Response, Server};
use tbm::time::{TimeDelta, TimePoint, TimeSystem};

fn t(ms: i64) -> TimePoint {
    TimePoint::ZERO + TimeDelta::from_millis(ms)
}

/// One fully traced storm: a seeded faulty store shares the tracer with
/// the server, several sessions oversubscribe the channel, and the run is
/// drained. Returns the tracer and the final stats.
fn traced_storm(seed: u64) -> (Tracer, ServerStats) {
    let mut store = MemBlobStore::new();
    let frames = render_frames(VideoPattern::MovingBar, 0, 24, 48, 32);
    let (_blob, interp) =
        capture_video_scalable(&mut store, &frames, TimeSystem::PAL, DctParams::default()).unwrap();

    // Size the channel from the stream's demanded rate: roomy enough to
    // admit, tight enough that four concurrent sessions miss deadlines.
    let full = {
        let mut probe = MediaDb::with_store(MemBlobStore::new());
        probe.register_interpretation(interp.clone()).unwrap();
        let (_, stream) = probe.stream_of("video1").unwrap();
        let jobs = tbm::player::schedule_from_interp(stream, None);
        tbm::player::demanded_rate(&jobs, stream.system())
            .unwrap()
            .ceil() as u64
    };

    let tracer = Tracer::new();
    let plan = FaultPlan::new(seed)
        .with_transient(0.3)
        .with_corruption(0.1);
    let faulty = FaultyBlobStore::new(store, plan).with_tracer(tracer.clone());
    let mut db = MediaDb::with_store(faulty);
    db.register_interpretation(interp).unwrap();

    let mut server = Server::new(db, Capacity::new(full + full / 4).admit_all())
        .with_cache_budget(8 << 20)
        .with_tracer(tracer.clone());
    for n in 0..4i64 {
        let at = t(n * 80);
        if let Response::Opened {
            session: Some(id), ..
        } = server
            .request(
                at,
                Request::Open {
                    object: "video1".into(),
                },
            )
            .unwrap()
        {
            server.request(at, Request::Play { session: id }).unwrap();
        }
    }
    let stats = server.finish();
    (tracer, stats)
}

#[test]
fn chrome_trace_is_byte_identical_across_same_seed_runs() {
    let (a, stats_a) = traced_storm(0x5EED);
    let (b, stats_b) = traced_storm(0x5EED);
    assert_eq!(stats_a, stats_b, "the runs themselves must be identical");
    let ja = chrome_trace(&a.snapshot());
    let jb = chrome_trace(&b.snapshot());
    assert!(!ja.is_empty());
    assert_eq!(ja, jb, "same seed must export byte-identical traces");
    validate_json(&ja).expect("the export must be well-formed JSON");
}

#[test]
fn span_parent_links_are_acyclic_and_resolvable() {
    let (tracer, _) = traced_storm(0xACED);
    let snap = tracer.snapshot();
    assert!(!snap.records.is_empty());
    for rec in &snap.records {
        if rec.parent == SpanId::NONE {
            continue;
        }
        // Ids are issued sequentially, so a parent id strictly below the
        // child id makes any cycle impossible; the parent must also be a
        // record in the same snapshot (nothing dangles unless evicted).
        assert!(
            rec.parent.raw() < rec.id,
            "parent {} of span {} is not older",
            rec.parent.raw(),
            rec.id
        );
        if snap.dropped == 0 {
            assert!(
                snap.records.iter().any(|r| r.id == rec.parent.raw()),
                "parent {} of span {} missing from snapshot",
                rec.parent.raw(),
                rec.id
            );
        }
    }
}

#[test]
fn attribution_assigns_every_miss_exactly_one_cause() {
    let (tracer, stats) = traced_storm(0xACED);
    assert!(stats.deadline_misses > 0, "the storm must miss deadlines");
    let report = tbm::obs::attribute(&tracer.snapshot().records);
    assert_eq!(report.total(), stats.deadline_misses);
    let by_cause: usize = report.by_cause().iter().map(|&(_, n)| n).sum();
    assert_eq!(by_cause, report.total(), "causes partition the misses");
    let rendered = report.render();
    assert!(rendered.contains("total misses"));
}
