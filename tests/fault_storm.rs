//! Integration test: the robustness pipeline end to end — a seeded fault
//! storm (corruption + transient errors + truncation) over a captured Fig. 2
//! movie, played back through the resilient player with checksum detection
//! and graceful degradation, plus catalog damage/salvage at the db layer.

use tbm::codec::dct::DctParams;
use tbm::interp::capture;
use tbm::media::gen::{AudioSignal, VideoPattern};
use tbm::player::{demanded_rate, schedule_from_interp};
use tbm::prelude::*;

const N: usize = 120;
const W: u32 = 96;
const H: u32 = 64;
const SPF: usize = 1764;

fn captured_movie() -> (MemBlobStore, tbm::interp::capture::AvCapture) {
    let mut store = MemBlobStore::new();
    let frames = tbm::media::gen::render_frames(VideoPattern::MovingBar, 0, N, W, H);
    let audio = AudioSignal::Sine {
        hz: 440.0,
        amplitude: 8000,
    }
    .generate(0, N * SPF, 44_100, 2);
    let cap = capture::capture_av_interleaved(
        &mut store,
        &frames,
        &audio,
        SPF,
        TimeSystem::PAL,
        DctParams::default(),
        Some(QualityFactor::Video(VideoQuality::Vhs)),
    )
    .unwrap();
    (store, cap)
}

/// The ISSUE's acceptance storm: ≥ 1 % corruption plus transient errors.
fn storm(seed: u64) -> FaultPlan {
    FaultPlan::new(seed)
        .with_transient(0.05)
        .with_corruption(0.02)
        .with_truncation(0.01)
}

fn resilient_player(v: &StreamInterp) -> ResilientPlayer {
    let demand = demanded_rate(&schedule_from_interp(v, None), TimeSystem::PAL)
        .unwrap()
        .to_f64();
    let sim = PlaybackSim::new(CostModel::bandwidth_only((demand * 1.5) as u64)).with_startup(3);
    ResilientPlayer::new(sim)
}

#[test]
fn fault_storm_playback_completes_and_accounts_for_every_fault() {
    let (store, cap) = captured_movie();
    let v = cap.interpretation.stream("video1").unwrap();
    let player = resilient_player(v);

    let faulty = FaultyBlobStore::new(store, storm(7));
    let report = player.play(&faulty, cap.blob, v);

    // Playback completed: one fate per scheduled element, no panic.
    assert_eq!(report.fates.len(), N);
    assert_eq!(
        report.stats.elements,
        N - report.stats.dropped,
        "every element is either presented (possibly degraded) or dropped"
    );

    // The storm actually injected faults of both required classes...
    let fs = faulty.stats();
    assert!(fs.corrupted_reads > 0, "storm must corrupt some reads");
    assert!(
        fs.transient_errors > 0,
        "storm must inject transient errors"
    );

    // ...and the player detected them via checksums / retry exhaustion:
    // every unrecoverable fault is accounted as degraded or dropped, and
    // retry-hidden transients show up as recoveries.
    assert!(report.faults_detected > 0);
    assert_eq!(
        report.faults_detected,
        report.stats.degraded + report.stats.dropped
    );
    assert!(
        report.stats.recovered > 0,
        "retries must hide some transients"
    );

    // The checksum layer sees the same corruption the player saw.
    let verify = v.verify_all(&faulty, cap.blob);
    assert!(verify.verified > 0);
    assert!(!verify.is_clean(), "storm leaves detectable corruption");
}

#[test]
fn same_seed_reproduces_identical_outcome() {
    let (store, cap) = captured_movie();
    let v = cap.interpretation.stream("video1").unwrap();
    let player = resilient_player(v);

    let a = player.play(&FaultyBlobStore::new(store.clone(), storm(7)), cap.blob, v);
    let b = player.play(&FaultyBlobStore::new(store.clone(), storm(7)), cap.blob, v);
    assert_eq!(a.stats, b.stats, "the storm is a pure function of the seed");
    assert_eq!(a.fates, b.fates);

    let c = player.play(&FaultyBlobStore::new(store, storm(8)), cap.blob, v);
    assert!(
        a.stats != c.stats || a.fates != c.fates,
        "a different seed must produce a different storm"
    );
}

#[test]
fn degradation_ladder_orders_policies_by_fidelity() {
    // On a scalable capture, DropLayers converts whole-element losses into
    // reduced-fidelity presentation; RepeatLast freezes; Skip drops.
    let mut store = MemBlobStore::new();
    let frames = tbm::media::gen::render_frames(VideoPattern::MovingBar, 0, 60, W, H);
    let (blob, interp) =
        capture::capture_video_scalable(&mut store, &frames, TimeSystem::PAL, DctParams::default())
            .unwrap();
    let v = interp.stream("video1").unwrap();
    let player = |p| {
        let demand = demanded_rate(&schedule_from_interp(v, None), TimeSystem::PAL)
            .unwrap()
            .to_f64();
        let sim =
            PlaybackSim::new(CostModel::bandwidth_only((demand * 1.5) as u64)).with_startup(3);
        ResilientPlayer::new(sim).with_policy(p)
    };
    let run = |p| {
        player(p).play(
            &FaultyBlobStore::new(store.clone(), storm(11).with_corruption(0.05)),
            blob,
            v,
        )
    };

    let drop_layers = run(DegradationPolicy::DropLayers);
    let repeat = run(DegradationPolicy::RepeatLast);
    let skip = run(DegradationPolicy::Skip);

    let base = |r: &ResilientReport| {
        r.fates
            .iter()
            .filter(|f| matches!(f, ElementFate::BaseLayers { .. }))
            .count()
    };
    assert!(
        base(&drop_layers) > 0,
        "DropLayers must salvage base layers"
    );
    assert_eq!(base(&repeat), 0);
    assert_eq!(
        skip.stats.dropped,
        repeat.stats.degraded + repeat.stats.dropped
    );
    assert_eq!(repeat.stats.dropped, 0, "RepeatLast never drops");
    // Same storm, so total non-intact elements agree across policies.
    assert_eq!(
        drop_layers.faults_detected + drop_layers.stats.recovered,
        skip.faults_detected + skip.stats.recovered
    );
}

#[test]
fn damaged_catalog_is_detected_and_salvage_never_panics() {
    // Build a catalog with every reference kind, serialize, then damage it.
    let mut db = MediaDb::new();
    let frames = tbm::media::gen::render_frames(VideoPattern::MovingBar, 0, 6, W, H);
    let audio = AudioSignal::Sine {
        hz: 330.0,
        amplitude: 8000,
    }
    .generate(0, 6 * SPF, 44_100, 2);
    let cap = capture::capture_av_interleaved(
        db.store_mut(),
        &frames,
        &audio,
        SPF,
        TimeSystem::PAL,
        DctParams::default(),
        None,
    )
    .unwrap();
    db.register_interpretation(cap.interpretation).unwrap();
    db.create_derived(
        "clip",
        Node::derive(Op::VideoReverse, vec![Node::source("video1")]),
    )
    .unwrap();
    let bytes = db.catalog_to_bytes().unwrap();

    // Clean bytes load; every bit flip is detected by the footer checksum.
    assert!(MediaDb::catalog_from_bytes(MemBlobStore::new(), &bytes).is_ok());
    for pos in (0..bytes.len()).step_by(97) {
        let mut bad = bytes.clone();
        bad[pos] ^= 0x04;
        match MediaDb::catalog_from_bytes(MemBlobStore::new(), &bad) {
            Err(tbm::db::DbError::CorruptCatalog { .. }) => {}
            other => panic!("flip at {pos} not detected: {other:?}"),
        }
    }

    // Truncation: strict load refuses; salvage recovers a record prefix
    // with no dangling references and an honest loss report.
    let cut = bytes.len() / 2;
    assert!(MediaDb::catalog_from_bytes(MemBlobStore::new(), &bytes[..cut]).is_err());
    let (salvaged, report) =
        MediaDb::catalog_salvage_from_bytes(MemBlobStore::new(), &bytes[..cut]);
    assert!(!report.is_clean());
    assert_eq!(
        salvaged.interpretations().len(),
        report.interpretations.recovered
    );
    for o in salvaged.objects() {
        if let tbm::db::Origin::Derived { derivation } = &o.origin {
            assert!(salvaged.derivation(*derivation).is_some());
        }
    }

    // Undamaged salvage is lossless.
    let (full, report) = MediaDb::catalog_salvage_from_bytes(MemBlobStore::new(), &bytes);
    assert!(report.is_clean(), "{report:?}");
    assert_eq!(full.objects().len(), db.objects().len());
}

#[test]
fn atomic_save_and_salvage_on_disk() {
    let dir = std::env::temp_dir().join(format!("tbm-fault-storm-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    {
        let mut db = MediaDb::open(&dir).unwrap();
        db.register_value(
            "score",
            MediaValue::Music(tbm::derive::MusicClip::new(
                tbm::media::gen::major_scale(0, 60, 1, 480, 400),
                480,
                120,
            )),
        )
        .unwrap();
        db.save().unwrap();
    }

    // A stale temp file from a crashed save must not shadow the catalog.
    std::fs::write(dir.join(CATALOG_TMP), b"half-written garbage").unwrap();
    let db = MediaDb::open(&dir).unwrap();
    assert!(matches!(db.materialize("score"), Ok(MediaValue::Music(_))));
    assert!(
        !dir.join(CATALOG_TMP).exists(),
        "stale temp file is discarded"
    );

    // Corrupt the catalog on disk: open refuses, salvage still answers.
    let path = dir.join(tbm::db::CATALOG_FILE);
    let mut bytes = std::fs::read(&path).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xff;
    std::fs::write(&path, &bytes).unwrap();
    assert!(matches!(
        MediaDb::open(&dir),
        Err(tbm::db::DbError::CorruptCatalog { .. })
    ));
    let (_salvaged, report) = MediaDb::salvage(&dir).unwrap();
    assert!(!report.is_clean());

    std::fs::remove_dir_all(&dir).unwrap();
}
