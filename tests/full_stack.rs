//! Integration test: the Fig. 5 layering — one asset driven through
//! BLOB → interpretation → derivation → composition — plus playback of the
//! result, and cross-layer invariants.

use tbm::codec::dct::DctParams;
use tbm::core::SizedElement;
use tbm::interp::capture;
use tbm::media::gen::{AudioSignal, VideoPattern};
use tbm::player::{schedule_from_interp, sync_skew, CostModel, PlaybackSim};
use tbm::prelude::*;

const W: u32 = 96;
const H: u32 = 64;
const SPF: usize = 1764;

fn captured_db(n: usize) -> MediaDb {
    let mut db = MediaDb::new();
    let frames = tbm::media::gen::render_frames(VideoPattern::MovingBar, 0, n, W, H);
    let audio = AudioSignal::Sine {
        hz: 440.0,
        amplitude: 8000,
    }
    .generate(0, n * SPF, 44_100, 2);
    let cap = capture::capture_av_interleaved(
        db.store_mut(),
        &frames,
        &audio,
        SPF,
        TimeSystem::PAL,
        DctParams::default(),
        Some(QualityFactor::Video(VideoQuality::Vhs)),
    )
    .unwrap();
    db.register_interpretation(cap.interpretation).unwrap();
    db
}

#[test]
fn fig5_layering_bottom_up() {
    let mut db = captured_db(25);

    // Layer 1 → 2: BLOB is uninterpreted bytes; interpretation exposes
    // structured media objects.
    let blob_bytes = db.store().total_bytes();
    assert!(blob_bytes > 0);
    assert_eq!(db.objects().len(), 2);
    let (_, vstream) = db.stream_of("video1").unwrap();
    assert_eq!(vstream.len(), 25);

    // Layer 2 → 3: derivation produces new media objects without touching
    // the BLOB.
    db.create_derived(
        "trailer",
        Node::derive(
            Op::VideoEdit {
                cuts: vec![EditCut {
                    input: 0,
                    from: 5,
                    to: 20,
                }],
            },
            vec![Node::source("video1")],
        ),
    )
    .unwrap();
    assert_eq!(db.store().total_bytes(), blob_bytes);

    // Layer 3 → 4: composition gathers media objects into a multimedia
    // object.
    let mut m = MultimediaObject::new("presentation");
    m.add_component(
        Component::new(
            "trailer",
            ComponentKind::Video,
            Node::source("trailer"),
            TimePoint::ZERO,
            TimeDelta::from_seconds(Rational::new(15, 25)),
        )
        .unwrap(),
    )
    .unwrap();
    m.add_component(
        Component::new(
            "audio1",
            ComponentKind::Audio,
            Node::source("audio1"),
            TimePoint::ZERO,
            TimeDelta::from_seconds(Rational::new(15, 25)),
        )
        .unwrap(),
    )
    .unwrap();
    m.add_constraint("audio1", AllenRelation::Equals, "trailer")
        .unwrap();
    db.add_multimedia(m).unwrap();

    // Top of the stack: the multimedia object realizes to pixels + samples.
    let mut expander = Expander::new();
    for s in ["trailer", "audio1"] {
        expander.add_source(s, db.materialize(s).unwrap());
    }
    let composer = Composer::new(&expander, W, H);
    let record = db.multimedia("presentation").unwrap();
    let frame = composer
        .render_video_frame(&record.object, TimePoint::from_seconds(Rational::new(1, 5)))
        .unwrap();
    assert_eq!((frame.width(), frame.height()), (W, H));
    let audio = composer
        .mix_audio_window(&record.object, TimePoint::ZERO, TimeDelta::from_millis(200))
        .unwrap();
    assert!(audio.peak() > 3000);
}

#[test]
fn interpretation_agrees_with_model_classification() {
    let db = captured_db(25);
    let (_, vstream) = db.stream_of("video1").unwrap();
    // Rebuild the timed stream from the interpretation table and classify:
    // a compressed capture must be homogeneous + constant frequency but not
    // uniform.
    let tuples = vstream
        .entries()
        .iter()
        .map(|e| TimedTuple::new(SizedElement::new(e.size), e.start, e.duration))
        .collect();
    let stream =
        TimedStream::from_tuples(MediaType::video("cap"), TimeSystem::PAL, tuples).unwrap();
    let report = classify(&stream);
    assert!(report.satisfies(StreamCategory::Homogeneous));
    assert!(report.satisfies(StreamCategory::ConstantFrequency));
    assert!(!report.satisfies(StreamCategory::Uniform));
    // The descriptor's category line matches the computed classification.
    assert_eq!(
        vstream.descriptor().get_text(keys::CATEGORY).unwrap(),
        report.descriptor_line()
    );
    // The model's average data rate matches the descriptor's.
    let model_rate = stream.average_data_rate().unwrap();
    let desc_rate = vstream
        .descriptor()
        .get_rational(keys::AVG_DATA_RATE)
        .unwrap();
    assert_eq!(model_rate, desc_rate);
}

#[test]
fn playback_of_captured_interpretation() {
    let db = captured_db(50);
    let (_, vstream) = db.stream_of("video1").unwrap();
    let (_, astream) = db.stream_of("audio1").unwrap();
    let vjobs = schedule_from_interp(vstream, None);
    let ajobs = schedule_from_interp(astream, None);
    let demand = tbm::player::demanded_rate(&vjobs, TimeSystem::PAL)
        .unwrap()
        .to_f64()
        + 176_400.0;

    // 2× the demanded rate: clean playback and zero sync skew.
    let ample = CostModel::bandwidth_only((demand * 2.0) as u64);
    assert!(PlaybackSim::new(ample).run(&vjobs).clean());
    let sync = sync_skew(ample, &vjobs, &ajobs);
    assert!(sync.clean);
    assert_eq!(sync.max_skew, TimeDelta::ZERO);

    // 60 % of the demanded rate: misses appear and streams drift. The
    // single-stream sim is starved relative to the video stream's own
    // demand; the sync sim relative to the combined demand.
    let video_demand = tbm::player::demanded_rate(&vjobs, TimeSystem::PAL)
        .unwrap()
        .to_f64();
    let starved_video = CostModel::bandwidth_only((video_demand * 0.6) as u64);
    let stats = PlaybackSim::new(starved_video).run(&vjobs);
    assert!(!stats.clean(), "{stats:?}");
    let starved_both = CostModel::bandwidth_only((demand * 0.6) as u64);
    let sync = sync_skew(starved_both, &vjobs, &ajobs);
    assert!(!sync.clean, "{sync:?}");
}

#[test]
fn derived_objects_play_without_materialization() {
    // Lazy pull straight into presentation: the derived trailer's frames
    // are computed on demand (the paper's real-time expansion).
    let mut db = captured_db(25);
    db.create_derived(
        "trailer",
        Node::derive(
            Op::VideoEdit {
                cuts: vec![EditCut {
                    input: 0,
                    from: 10,
                    to: 20,
                }],
            },
            vec![Node::source("video1")],
        ),
    )
    .unwrap();
    let node = db.provenance("trailer").unwrap().unwrap().clone();
    let expander = db.expander_for(&node).unwrap();
    assert_eq!(expander.video_len(&node).unwrap(), 10);
    for i in [0usize, 5, 9] {
        let f = expander.pull_frame(&node, i).unwrap();
        assert_eq!((f.width(), f.height()), (W, H));
    }
    // Real-time feasibility of the lazy pipeline at PAL rate.
    let report = tbm::derive::realtime::assess_video(&expander, &node, TimeSystem::PAL, 5).unwrap();
    assert!(report.sampled > 0);
}

#[test]
fn file_backed_database_round_trips() {
    // The same pipeline over a durable store.
    let dir = std::env::temp_dir().join(format!("tbm-fullstack-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    {
        let store = FileBlobStore::open(&dir).unwrap();
        let mut db = MediaDb::with_store(store);
        let frames = tbm::media::gen::render_frames(VideoPattern::Checkerboard(5), 0, 10, W, H);
        let audio = AudioSignal::Silence.generate(0, 10 * SPF, 44_100, 2);
        let cap = capture::capture_av_interleaved(
            db.store_mut(),
            &frames,
            &audio,
            SPF,
            TimeSystem::PAL,
            DctParams::default(),
            None,
        )
        .unwrap();
        db.register_interpretation(cap.interpretation).unwrap();
        let bytes = db.element_bytes_at("video1", TimePoint::ZERO).unwrap();
        assert!(tbm::codec::dct::decode_frame(&bytes).is_ok());
    }
    // Blobs persisted on disk.
    let store = FileBlobStore::open(&dir).unwrap();
    assert_eq!(store.blob_ids().len(), 1);
    assert!(store.len(tbm::core::BlobId::new(0)).unwrap() > 0);
    std::fs::remove_dir_all(&dir).unwrap();
}
