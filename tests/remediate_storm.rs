//! Remediation storm: the guarded auto-remediation plane riding the PR 8
//! health storms end to end. Pins the tentpole guarantees: a brownout's
//! `load-skew` alert is remediated by a rebalance and closes measurably
//! sooner than the remediation-off baseline with zero operator input; a
//! node kill's lateness alert closes under the default playbook with the
//! actions stamped into the incident report; an action that makes burn
//! *worse* is rolled back within its verification window (placement
//! restored, the record says `rolled back`); repeated rollbacks trip the
//! freeze switch and every later attempt is suppressed; the `shard.skew`
//! gauge and the `SkewBelow` objective share one skew definition; and
//! same-seed runs produce byte-identical action logs and reports.

use tbm::codec::dct::DctParams;
use tbm::interp::capture::capture_video_scalable;
use tbm::interp::Interpretation;
use tbm::media::gen::{render_frames, VideoPattern};
use tbm::obs::Category;
use tbm::prelude::*;
use tbm::query::{Outcome, SuppressReason, Verdict};
use tbm::time::{TimeDelta, TimePoint, TimeSystem};

const SEED: u64 = 23;
const NODES: usize = 3;
const SHARDS: usize = 6;
const INTERVAL_MS: i64 = 50;
const TICKS: i64 = 240;
const FAULT_FROM_MS: i64 = 4_000;
const FAULT_TO_MS: i64 = 8_000;

fn t(ms: i64) -> TimePoint {
    TimePoint::ZERO + TimeDelta::from_millis(ms)
}

/// One movie name per shard, so the round-robin storm loads every node
/// identically and skew reads true imbalance (same shape as the health
/// storm — the remediation plane must fix the same faults that storm
/// detects).
fn balanced_names() -> Vec<String> {
    let mut by_shard: Vec<Option<String>> = vec![None; SHARDS];
    let mut found = 0;
    let mut i = 0u32;
    while found < SHARDS {
        let name = format!("movie{i}");
        let shard = shard_of(&name, SEED, SHARDS);
        if by_shard[shard].is_none() {
            by_shard[shard] = Some(name);
            found += 1;
        }
        i += 1;
    }
    by_shard.into_iter().map(Option::unwrap).collect()
}

fn catalog(names: &[String]) -> ShardedDb {
    let mut db = ShardedDb::new(SHARDS, SEED);
    let frames = render_frames(VideoPattern::MovingBar, 0, 250, 48, 32);
    for name in names {
        let store = db.store_for_mut(name);
        let (blob, interp) =
            capture_video_scalable(store, &frames, TimeSystem::PAL, DctParams::default()).unwrap();
        let stream = interp.stream("video1").unwrap().clone();
        let mut renamed = Interpretation::new(blob);
        renamed.add_stream(name, stream).unwrap();
        db.register_interpretation(renamed).unwrap();
    }
    db
}

fn rules() -> Vec<SloRule> {
    vec![
        SloRule::p99_full_lateness_below(2_000.0),
        SloRule::drop_rate_below(1.0),
        SloRule::no_unverified_serves(),
        SloRule::load_skew_below(60.0),
    ]
}

/// The PR 8 storm — 12 staggered sessions over an amply-provisioned
/// fleet with a scripted fault on node 1 — with the health plane riding
/// every tick and, when `playbook` is given, the remediation plane
/// closing the loop. The request-plane auto-rebalancer is off in both
/// arms so the Remediator is the only actor.
fn storm(fault: Option<NodeFaultPlan>, playbook: Option<Playbook>) -> (Fleet, FleetTelemetry) {
    let names = balanced_names();
    let db = catalog(&names);
    let owner = db.shard_for(&names[0]);
    let (_, stream) = db.shard(owner).stream_of(&names[0]).unwrap();
    let full_bps = tbm::player::demanded_rate(
        &tbm::player::schedule_from_interp(stream, None),
        stream.system(),
    )
    .unwrap()
    .ceil() as u64;

    let mut fleet = Fleet::new(db, NODES, Capacity::new(full_bps * 20).admit_all())
        .with_cache_budget(16 << 20)
        .with_rebalance_skew(None)
        .with_tracer(Tracer::with_capacity(1 << 16));
    if let Some(plan) = fault {
        fleet = fleet.with_fault_plan(1, plan);
    }
    let mut monitor = HealthMonitor::new(TimeDelta::from_millis(INTERVAL_MS));
    for rule in rules() {
        monitor = monitor.rule(rule);
    }
    let mut telemetry = FleetTelemetry::new(
        ErrorBound::percent(1.0),
        TimeDelta::from_millis(INTERVAL_MS),
    )
    .with_health(monitor);
    if let Some(pb) = playbook {
        telemetry = telemetry.with_remediator(Remediator::new(pb));
    }
    let mut next = 0usize;
    for k in 0..=TICKS {
        let at = t(INTERVAL_MS * k);
        telemetry.tick(&mut fleet, at);
        while next < 12 && (next as i64) * 150 < INTERVAL_MS * (k + 1) {
            let name = names[next % names.len()].clone();
            let open_at = t(next as i64 * 150).max(at);
            if let Ok(Response::Opened {
                session: Some(id), ..
            }) = fleet.request(open_at, Request::Open { object: name })
            {
                let _ = fleet.request(open_at, Request::Play { session: id });
            }
            next += 1;
        }
    }
    telemetry.finish(&mut fleet, t(INTERVAL_MS * (TICKS + 1)));
    fleet.finish();
    (fleet, telemetry)
}

fn brownout_plan() -> NodeFaultPlan {
    NodeFaultPlan::new().with_brownout(t(FAULT_FROM_MS), t(FAULT_TO_MS), 25)
}

fn kill_plan() -> NodeFaultPlan {
    NodeFaultPlan::new().with_crash_restart(t(FAULT_FROM_MS), t(FAULT_TO_MS))
}

/// The brownout storm's surgical playbook: rebalance on skew, nothing
/// else, so the comparison against the off arm isolates one action.
fn skew_playbook() -> Playbook {
    Playbook::new().on("load-skew", Action::RebalanceShards { min_skew_pct: 50 })
}

fn incident_duration(telemetry: &FleetTelemetry, rule: &str) -> u32 {
    let monitor = telemetry.health().expect("health attached");
    let inc = monitor
        .incidents()
        .iter()
        .find(|i| i.rule == rule)
        .unwrap_or_else(|| panic!("{rule} must close (open: {:?})", monitor.open_alerts()));
    inc.closed_tick - inc.opened_tick + 1
}

#[test]
fn brownout_load_skew_heals_itself_with_zero_operator_input() {
    let (fleet, on) = storm(Some(brownout_plan()), Some(skew_playbook()));
    let (_, off) = storm(Some(brownout_plan()), None);

    // The alert opens in both arms — the remediator reacts to alerts, it
    // does not prevent them.
    let monitor = on.health().unwrap();
    assert_eq!(monitor.opens("load-skew"), 1, "the brownout must alert");
    assert!(
        monitor.open_alerts().is_empty(),
        "remediated skew must close"
    );

    // The rebalance was applied (not suppressed, not a no-op), it moved a
    // shard off the browned node 1, and verification did not revert it.
    let rem = on.remediator().expect("remediator attached");
    let applied: Vec<_> = rem
        .records()
        .iter()
        .filter(|r| r.outcome == Outcome::Applied)
        .collect();
    assert!(!applied.is_empty(), "log:\n{}", rem.render_log());
    assert!(
        applied[0].detail.contains("node1→"),
        "{}",
        applied[0].detail
    );
    assert!(
        applied
            .iter()
            .all(|r| r.verdict != Some(Verdict::RolledBack)),
        "a correct rebalance must stand:\n{}",
        rem.render_log()
    );
    assert!(!rem.frozen());

    // Measurably better: the remediated incident is strictly shorter than
    // the baseline's, which waits out the brownout.
    let dur_on = incident_duration(&on, "load-skew");
    let dur_off = incident_duration(&off, "load-skew");
    assert!(
        dur_on < dur_off,
        "remediation must shorten the incident ({dur_on} vs {dur_off} ticks)"
    );

    // Observability: one Remediation span per attempt with rule/action
    // attrs, counters in the rollup, and the action stamped into the
    // incident report's timeline.
    let trace = fleet.trace();
    let spans: Vec<_> = trace
        .records
        .iter()
        .filter(|r| r.cat == Category::Remediation)
        .collect();
    assert!(!spans.is_empty(), "applied actions must trace");
    assert_eq!(
        spans[0].attr("rule").and_then(|v| v.as_str()),
        Some("load-skew")
    );
    assert!(spans[0].end.is_some(), "verification must close the span");
    let metrics = fleet.metrics();
    assert!(metrics.counter("remediation.actions.applied") >= 1);
    assert_eq!(metrics.counter("remediation.actions.rolled_back"), 0);

    let report = on
        .incident_reports()
        .iter()
        .find(|r| r.incident.rule == "load-skew")
        .expect("the closed incident expands into a report");
    let text = report.render();
    assert!(text.contains("remediation timeline:"), "{text}");
    assert!(text.contains("rebalance-shards"), "{text}");
    assert!(text.contains("applied"), "{text}");
}

#[test]
fn kill_storm_default_playbook_closes_the_lateness_alert() {
    let (fleet, telemetry) = storm(Some(kill_plan()), Some(Playbook::default_rules()));
    let monitor = telemetry.health().unwrap();
    assert_eq!(monitor.opens("lateness-p99-full"), 1, "the kill must alert");
    assert!(
        monitor.open_alerts().is_empty(),
        "the remediated alert must close: {:?}",
        monitor.open_alerts()
    );

    // The escalation ladder ran: the derate-and-degrade entry applied
    // (evacuation is a guarded no-op here — the crash already failed the
    // shards over), sessions were forced to their base layer, and nothing
    // needed rolling back.
    let rem = telemetry.remediator().unwrap();
    assert!(
        rem.records().iter().any(|r| r.rule == "lateness-p99-full"
            && r.outcome == Outcome::Applied
            && r.detail.contains("forced")),
        "log:\n{}",
        rem.render_log()
    );
    let metrics = fleet.metrics();
    assert!(metrics.counter("remediation.actions.applied") >= 1);
    assert!(metrics.counter("serve.sessions.force_degraded") >= 1);
    assert_eq!(metrics.counter("remediation.actions.rolled_back"), 0);
    assert_eq!(fleet.admission_derate(), 70, "the derate must stick");

    // The report tells the whole story: what broke, what the system did.
    let report = &telemetry.incident_reports()[0];
    let text = report.render();
    assert!(text.starts_with("incident: lateness-p99-full\n"), "{text}");
    assert!(text.contains("remediation timeline:"), "{text}");
    assert!(text.contains("derate-admission"), "{text}");
}

/// The first `n` probe names whose owning shard (out of `shards`)
/// satisfies `want`, exactly `per_shard` names per distinct shard.
fn names_owned_by(shards: usize, want: impl Fn(usize) -> bool, per_shard: usize) -> Vec<String> {
    let mut counts = vec![0usize; shards];
    let mut names = Vec::new();
    let mut i = 0u32;
    while names.len() < per_shard * (0..shards).filter(|&s| want(s)).count() {
        let name = format!("clip{i}");
        let owner = shard_of(&name, SEED, shards);
        if want(owner) && counts[owner] < per_shard {
            counts[owner] += 1;
            names.push(name);
        }
        i += 1;
    }
    names
}

/// A tiny catalog — 25 PAL frames per name — over `shards` shards.
fn mini_catalog(shards: usize, names: &[String]) -> ShardedDb {
    let mut db = ShardedDb::new(shards, SEED);
    let frames = render_frames(VideoPattern::MovingBar, 0, 25, 48, 32);
    for name in names {
        let store = db.store_for_mut(name);
        let (blob, interp) =
            capture_video_scalable(store, &frames, TimeSystem::PAL, DctParams::default()).unwrap();
        let stream = interp.stream("video1").unwrap().clone();
        let mut renamed = Interpretation::new(blob);
        renamed.add_stream(name, stream).unwrap();
        db.register_interpretation(renamed).unwrap();
    }
    db
}

/// One movie's full-fidelity demand rate, for sizing node capacity.
fn full_rate(db: &ShardedDb, name: &str) -> u64 {
    let owner = db.shard_for(name);
    let (_, stream) = db.shard(owner).stream_of(name).unwrap();
    tbm::player::demanded_rate(
        &tbm::player::schedule_from_interp(stream, None),
        stream.system(),
    )
    .unwrap()
    .ceil() as u64
}

/// A fleet of `nodes` over a `mini_catalog`, with `headroom` sessions'
/// worth of capacity per node, one open session per name, and the
/// request-plane auto-rebalancer off.
fn mini_fleet(nodes: usize, shards: usize, names: &[String], headroom: u64) -> Fleet {
    let db = mini_catalog(shards, names);
    let full_bps = full_rate(&db, &names[0]);
    let mut fleet = Fleet::new(db, nodes, Capacity::new(full_bps * headroom).admit_all())
        .with_rebalance_skew(None)
        .with_tracer(Tracer::new());
    for (k, name) in names.iter().enumerate() {
        let Ok(Response::Opened {
            session: Some(_), ..
        }) = fleet.request(
            t(k as i64),
            Request::Open {
                object: name.clone(),
            },
        )
        else {
            panic!("ample capacity admits");
        };
    }
    fleet
}

/// A real two-node fleet with every session pinned to node 0's shards —
/// genuinely skewed, so `RebalanceShards` has something to move. Two
/// sessions each on shards 0 and 2 put node 0 at ~66% and node 1 at 0%.
fn skewed_fleet() -> Fleet {
    let names = names_owned_by(4, |s| s % 2 == 0, 2);
    mini_fleet(2, 4, &names, 6)
}

#[test]
fn rebalance_guards_hold_when_there_is_nothing_safe_to_move() {
    let at = t(1_000);

    // A single-node fleet has nowhere to move a shard, however loaded.
    let mut single = mini_fleet(1, 2, &names_owned_by(2, |_| true, 1), 6);
    assert_eq!(single.rebalance_on_skew(at, 0), None);
    assert_eq!(single.metrics().counter("fleet.migrations"), 0);

    // A balanced fleet — one session per shard, two shards per node —
    // sits below any sane threshold: moving anything would *create* skew.
    let mut balanced = mini_fleet(2, 4, &names_owned_by(4, |_| true, 1), 6);
    assert_eq!(balanced.rebalance_on_skew(at, 10), None);
    assert_eq!(balanced.metrics().counter("fleet.migrations"), 0);

    // A hot node hosting a single shard cannot shed load without merely
    // relocating the hot spot — the guard refuses the churn.
    let mut lumpy = mini_fleet(2, 2, &names_owned_by(2, |s| s == 0, 2), 6);
    assert_eq!(lumpy.rebalance_on_skew(at, 10), None);
    assert_eq!(lumpy.metrics().counter("fleet.migrations"), 0);

    // The positive control: a genuinely skewed fleet yields exactly one
    // move, off the hot node — after which the fleet is balanced and a
    // second call is a no-op again.
    let mut skewed = skewed_fleet();
    let mv = skewed
        .rebalance_on_skew(at, 10)
        .expect("100% skew must rebalance");
    assert_eq!(mv.from, 0, "the move comes off the hot node");
    assert_eq!(mv.to, 1, "and lands on the cold one");
    assert_eq!(skewed.metrics().counter("fleet.migrations"), 1);
    assert_eq!(skewed.rebalance_on_skew(at, 10), None, "now balanced");
    assert_eq!(skewed.metrics().counter("fleet.migrations"), 1);
}

/// The NodeLoadPct series key the skew rule judges.
fn load_key(node: u16) -> SeriesKey {
    SeriesKey {
        node,
        shard: None,
        metric: Metric::NodeLoadPct,
        degraded: false,
    }
}

#[test]
fn worsening_burn_rolls_back_within_the_verification_window_then_freezes() {
    // A real skewed fleet, but the monitor is fed synthetic load samples
    // whose skew keeps *worsening* after every apply — the deterministic
    // stand-in for "the rebalance made it worse" (a partition would do
    // this organically). Every verification must roll the move back,
    // three rollbacks must trip the freeze switch, and the incident
    // report must say `rolled back`.
    let mut fleet = skewed_fleet();
    let home = fleet.placement().node_of_shard(0);
    let mut monitor = HealthMonitor::new(TimeDelta::from_millis(INTERVAL_MS)).rule(
        SloRule::load_skew_below(60.0)
            .windows(2, 4)
            .triggers(2.0, 1.0)
            .clear_after(2),
    );
    let mut rem = Remediator::new(
        Playbook::new()
            .on("load-skew", Action::RebalanceShards { min_skew_pct: 10 })
            .budget(8)
            .refill(0)
            .cooldown(3)
            .verify(2),
    )
    .freeze_after(3, 100);

    let mut moved: Option<usize> = None;
    for tick in 0u32..18 {
        let at = t(i64::from(tick) * INTERVAL_MS);
        // Ticks 0–10: ever-worsening skew. Ticks 11+: calm, to close it.
        let hot = if tick <= 10 {
            300.0 + 50.0 * f64::from(tick)
        } else {
            10.0
        };
        let samples = vec![(load_key(0), hot), (load_key(1), 10.0), (load_key(2), 10.0)];
        let transitions = monitor.observe_tick(at, &samples);
        rem.on_tick(&mut fleet, &monitor, &transitions, tick, at);
        if moved.is_none() {
            if let Some(r) = rem.records().iter().find(|r| r.outcome == Outcome::Applied) {
                moved = Some(r.tick as usize);
                // The move is real: some shard left its home node.
                assert!(
                    (0..fleet.shard_count())
                        .any(|s| fleet.placement().node_of_shard(s)
                            != fleet.placement().home_of(s)),
                    "an applied rebalance must change placement"
                );
            }
        }
    }

    // Every applied action was rolled back: placement is fully restored.
    assert!(moved.is_some(), "log:\n{}", rem.render_log());
    for s in 0..fleet.shard_count() {
        assert_eq!(
            fleet.placement().node_of_shard(s),
            fleet.placement().home_of(s),
            "rollback must restore placement (shard {s})"
        );
    }
    assert_eq!(fleet.placement().node_of_shard(0), home);

    let rolled: Vec<_> = rem
        .records()
        .iter()
        .filter(|r| r.verdict == Some(Verdict::RolledBack))
        .collect();
    assert_eq!(rolled.len(), 3, "log:\n{}", rem.render_log());
    assert!(rem.frozen(), "three rollbacks must freeze the plane");
    assert!(
        rem.records()
            .iter()
            .any(|r| r.outcome == Outcome::Suppressed(SuppressReason::Frozen)),
        "post-freeze attempts must be suppressed:\n{}",
        rem.render_log()
    );
    let metrics = fleet.metrics();
    assert_eq!(metrics.counter("remediation.actions.rolled_back"), 3);
    assert!(metrics.counter("remediation.actions.suppressed") >= 1);
    assert!(
        metrics.counter("fleet.migrations") >= 6,
        "each apply+rollback is two migrations"
    );

    // The alert closed on the calm tail; its report timeline carries the
    // rolled-back actions — exactly what the sampler stamps.
    assert_eq!(monitor.incidents().len(), 1);
    let inc = monitor.incidents()[0].clone();
    let report = IncidentReport::bare(inc.clone()).with_actions(rem.actions_for(
        &inc.rule,
        inc.opened_tick,
        inc.closed_tick,
    ));
    let text = report.render();
    assert!(text.contains("remediation timeline:"), "{text}");
    assert!(text.contains("→ rolled back"), "{text}");
    assert!(text.contains("suppressed (frozen)"), "{text}");
}

#[test]
fn skew_gauge_and_skew_alert_share_one_definition() {
    // The golden agreement pin: whatever per-node loads, the `SkewBelow`
    // objective's burn times its threshold equals the exact
    // (max − mean)/mean × 100 skew, and `skew_percent` (the `fleet.skew`
    // / `shard.skew` gauge and the rebalancer's trigger) is that same
    // value rounded. The alert and the gauge cannot tell the operator two
    // different stories.
    let threshold = 60.0;
    let cases: Vec<Vec<usize>> = vec![
        vec![80, 20, 20],
        vec![10, 10, 10],
        vec![40, 0, 0, 0],
        vec![75, 33, 12],
        vec![7, 93],
        vec![50, 25, 25, 0],
        vec![120, 80, 40, 40, 20],
    ];
    for loads in cases {
        let mut monitor = HealthMonitor::new(TimeDelta::from_millis(INTERVAL_MS)).rule(
            SloRule::load_skew_below(threshold)
                .windows(1, 1)
                .triggers(1e9, 1e9),
        );
        let samples: Vec<(SeriesKey, f64)> = loads
            .iter()
            .enumerate()
            .map(|(n, &l)| (load_key(n as u16), l as f64))
            .collect();
        monitor.observe_tick(TimePoint::ZERO, &samples);
        let (fast, slow) = monitor.burns("load-skew").expect("window filled");
        assert_eq!(fast, slow, "one tick, one window");

        let mean = loads.iter().sum::<usize>() as f64 / loads.len() as f64;
        let max = *loads.iter().max().unwrap() as f64;
        let exact_skew = (max - mean) / mean * 100.0;
        assert!(
            (fast * threshold - exact_skew).abs() < 1e-9,
            "burn × threshold must be the exact skew (loads {loads:?})"
        );
        assert_eq!(
            skew_percent(loads.iter().copied()),
            exact_skew.round() as i64,
            "the gauge is the same skew, rounded (loads {loads:?})"
        );
    }

    // The one sanctioned divergence: below the min-mean guard the alert
    // reads 0 (idle-fleet skew is placement noise), while the raw gauge
    // still reports the ratio.
    let quiet = [2usize, 1, 0];
    let mut monitor = HealthMonitor::new(TimeDelta::from_millis(INTERVAL_MS)).rule(
        SloRule::load_skew_below(threshold)
            .windows(1, 1)
            .triggers(1e9, 1e9),
    );
    let samples: Vec<(SeriesKey, f64)> = quiet
        .iter()
        .enumerate()
        .map(|(n, &l)| (load_key(n as u16), l as f64))
        .collect();
    monitor.observe_tick(TimePoint::ZERO, &samples);
    assert_eq!(monitor.burns("load-skew").unwrap().0, 0.0);
    assert_eq!(skew_percent(quiet.iter().copied()), 100);
}

#[test]
fn same_seed_remediation_storms_are_byte_identical() {
    let run = |playbook: fn() -> Playbook| {
        let (fleet, telemetry) = storm(Some(kill_plan()), Some(playbook()));
        let rem = telemetry.remediator().unwrap();
        let mut reports = String::new();
        for r in telemetry.incident_reports() {
            reports.push_str(&r.render());
            reports.push('\n');
        }
        (rem.render_log(), reports, fleet.metrics().render())
    };
    let (log_a, reports_a, metrics_a) = run(Playbook::default_rules);
    let (log_b, reports_b, metrics_b) = run(Playbook::default_rules);
    assert!(
        log_a.contains("applied"),
        "the log must have substance:\n{log_a}"
    );
    assert_eq!(log_a, log_b, "same seed, same action log bytes");
    assert_eq!(reports_a, reports_b, "same seed, same report bytes");
    assert_eq!(metrics_a, metrics_b, "same seed, same metrics bytes");
}
