//! End-to-end serving storm: a faulty store behind the shared segment
//! cache, many sessions, admission control on — every cross-layer
//! invariant of the serving stack checked in one run.

use tbm::codec::dct::DctParams;
use tbm::interp::capture::capture_video_scalable;
use tbm::media::gen::{render_frames, VideoPattern};
use tbm::prelude::*;
use tbm::serve::{AdmitDecision, Request, Response, Server, ServerStats};
use tbm::time::{TimeDelta, TimePoint, TimeSystem};

const VIEWERS: i64 = 10;

fn t(ms: i64) -> TimePoint {
    TimePoint::ZERO + TimeDelta::from_millis(ms)
}

/// A catalog holding one scalable movie on a seeded faulty store.
fn faulty_db(seed: u64) -> MediaDb<FaultyBlobStore<MemBlobStore>> {
    let mut store = MemBlobStore::new();
    let frames = render_frames(VideoPattern::MovingBar, 0, 30, 64, 48);
    let (_blob, interp) =
        capture_video_scalable(&mut store, &frames, TimeSystem::PAL, DctParams::default()).unwrap();
    let plan = FaultPlan::new(seed)
        .with_transient(0.25)
        .with_corruption(0.08)
        .with_latency(0.1, 400);
    let mut db = MediaDb::with_store(FaultyBlobStore::new(store, plan));
    db.register_interpretation(interp).unwrap();
    db
}

/// Demand of the movie in bytes/s at the given layer cap.
fn demand(db: &MediaDb<FaultyBlobStore<MemBlobStore>>, layers: Option<usize>) -> u64 {
    let (_, stream) = db.stream_of("video1").unwrap();
    let jobs = tbm::player::schedule_from_interp(stream, layers);
    tbm::player::demanded_rate(&jobs, stream.system())
        .unwrap()
        .ceil() as u64
}

/// Capacity fitting three full-fidelity sessions plus one base-layer one:
/// a ten-viewer storm must see all three admission outcomes.
fn storm_capacity(db: &MediaDb<FaultyBlobStore<MemBlobStore>>) -> Capacity {
    Capacity::new(demand(db, None) * 3 + demand(db, Some(1)) + 1)
}

/// Opens `VIEWERS` staggered sessions and drains the server.
fn storm(mut server: Server<FaultyBlobStore<MemBlobStore>>) -> (ServerStats, Vec<AdmitDecision>) {
    let mut decisions = Vec::new();
    let bandwidth = server.capacity().storage_bandwidth;
    for n in 0..VIEWERS {
        let at = t(n * 120);
        let Response::Opened { session, decision } = server
            .request(
                at,
                Request::Open {
                    object: "video1".into(),
                },
            )
            .unwrap()
        else {
            panic!("Open answers Opened");
        };
        decisions.push(decision);
        // Committed demand never exceeds the admitted capacity, at every
        // step of the storm.
        assert!(
            server.stats().committed_bps <= bandwidth,
            "admission overcommitted: {} > {}",
            server.stats().committed_bps,
            bandwidth
        );
        if let Some(id) = session {
            server.request(at, Request::Play { session: id }).unwrap();
        }
    }
    (server.finish(), decisions)
}

#[test]
fn storm_respects_capacity_and_stats_invariants() {
    let db = faulty_db(0xC0FFEE);
    let capacity = storm_capacity(&db);
    let server = Server::new(db, capacity).with_cache_budget(32 << 20);
    let (stats, decisions) = storm(server);

    // Every open got exactly one decision, and all three kinds occurred.
    assert_eq!(decisions.len(), VIEWERS as usize);
    assert_eq!(
        stats.admitted + stats.admitted_degraded + stats.rejected,
        VIEWERS as usize
    );
    assert!(stats.admitted >= 3, "{decisions:?}");
    assert!(
        stats.admitted_degraded > 0,
        "a scalable stream must be admitted degraded when full fidelity no longer fits: {decisions:?}"
    );
    assert!(stats.rejected > 0, "{decisions:?}");

    // Degraded sessions were admitted base-layer-only.
    for d in &decisions {
        if let AdmitDecision::Degraded { layers } = d {
            assert_eq!(*layers, 1);
        }
    }

    // Everyone admitted ran to completion and released capacity.
    assert_eq!(stats.finished_sessions, stats.sessions_admitted());
    assert_eq!(stats.active_sessions, 0);
    assert_eq!(stats.committed_bps, 0);

    // Fault accounting: every detected fault became exactly one degraded,
    // dropped, or tier-repaired element.
    assert_eq!(
        stats.faults_detected,
        stats.degraded_elements + stats.dropped_elements + stats.repaired_elements
    );

    // The cache worked: verified spans of the hot object were shared.
    assert!(stats.cache.hits > 0);
    assert_eq!(stats.cache.lookups(), stats.cache.hits + stats.cache.misses);
}

#[test]
fn global_stats_are_the_sum_of_session_stats() {
    let db = faulty_db(0xC0FFEE);
    let capacity = storm_capacity(&db);
    let mut server = Server::new(db, capacity).with_cache_budget(32 << 20);
    for n in 0..VIEWERS {
        let at = t(n * 120);
        if let Response::Opened {
            session: Some(id), ..
        } = server
            .request(
                at,
                Request::Open {
                    object: "video1".into(),
                },
            )
            .unwrap()
        {
            server.request(at, Request::Play { session: id }).unwrap();
        }
    }
    let stats = server.finish();

    let mut elements = 0;
    let mut misses = 0;
    let mut hits = 0;
    let mut cache_misses = 0;
    let mut recovered = 0;
    let mut degraded = 0;
    let mut dropped = 0;
    let mut repaired = 0;
    for s in server.sessions() {
        let st = s.stats();
        elements += st.elements;
        misses += st.misses;
        hits += st.cache_hits;
        cache_misses += st.cache_misses;
        recovered += st.recovered;
        degraded += st.degraded;
        dropped += st.dropped;
        repaired += st.repaired;
    }
    assert_eq!(stats.elements_served, elements);
    assert_eq!(stats.deadline_misses, misses);
    assert_eq!(stats.cache.hits, hits);
    assert_eq!(stats.cache.misses, cache_misses);
    assert_eq!(stats.recovered, recovered);
    assert_eq!(stats.degraded_elements, degraded);
    assert_eq!(stats.dropped_elements, dropped);
    assert_eq!(stats.repaired_elements, repaired);
}

#[test]
fn storms_are_deterministic() {
    let run = || {
        let db = faulty_db(0xBEEF);
        let capacity = storm_capacity(&db);
        storm(Server::new(db, capacity).with_cache_budget(32 << 20)).0
    };
    assert_eq!(run(), run());
}

mod prop {
    use super::*;
    use proptest::prelude::*;

    /// Like [`faulty_db`] but with every fault probability variable.
    fn db_with_plan(
        seed: u64,
        transient: f64,
        corruption: f64,
        latency_p: f64,
    ) -> MediaDb<FaultyBlobStore<MemBlobStore>> {
        let mut store = MemBlobStore::new();
        let frames = render_frames(VideoPattern::MovingBar, 0, 20, 48, 32);
        let (_blob, interp) =
            capture_video_scalable(&mut store, &frames, TimeSystem::PAL, DctParams::default())
                .unwrap();
        let plan = FaultPlan::new(seed)
            .with_transient(transient)
            .with_corruption(corruption)
            .with_latency(latency_p, 300);
        let mut db = MediaDb::with_store(FaultyBlobStore::new(store, plan));
        db.register_interpretation(interp).unwrap();
        db
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]

        /// Satellite invariant: however the fault plan is drawn, every
        /// unrecoverable fault the server detects surfaces as exactly one
        /// degraded or dropped element — never zero, never two.
        #[test]
        fn fault_accounting_invariant_holds_for_random_fault_plans(
            seed in any::<u64>(),
            transient in 0.0f64..0.6,
            corruption in 0.0f64..0.35,
            latency_p in 0.0f64..0.3,
        ) {
            let db = db_with_plan(seed, transient, corruption, latency_p);
            let capacity = Capacity::new(demand(&db, None) * 3 + demand(&db, Some(1)) + 1);
            let (stats, _) = storm(Server::new(db, capacity).with_cache_budget(16 << 20));
            prop_assert_eq!(
                stats.faults_detected,
                stats.degraded_elements + stats.dropped_elements + stats.repaired_elements
            );
            // The snapshot histograms agree with the counters they back.
            prop_assert_eq!(stats.service.count() as usize, stats.elements_served);
            prop_assert_eq!(stats.lateness.count() as usize, stats.deadline_misses);
        }
    }
}

#[test]
fn cache_off_reads_strictly_more_storage() {
    let run = |budget: u64| {
        let db = faulty_db(0xC0FFEE);
        let capacity = storm_capacity(&db);
        let server = if budget > 0 {
            Server::new(db, capacity).with_cache_budget(budget)
        } else {
            Server::new(db, capacity)
        };
        storm(server).0
    };
    let cached = run(32 << 20);
    let uncached = run(0);
    assert_eq!(uncached.cache.hits, 0);
    assert!(cached.cache.hits > 0);
    assert!(
        cached.storage_bytes_read < uncached.storage_bytes_read,
        "the shared cache must reduce aggregate storage reads ({} vs {})",
        cached.storage_bytes_read,
        uncached.storage_bytes_read
    );
}
