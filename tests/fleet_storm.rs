//! Fleet storm: a sharded catalog hosted on simulated nodes, one of which
//! is killed under a live session storm. Pins the tentpole guarantees:
//! live migration keeps every verified serve (zero drops, against a
//! no-migration baseline that sheds), the fault invariant extends to
//! node loss, stalls are attributed to the `node-loss` miss cause, and
//! same-seed runs replay byte-identically — traces included.

use tbm::codec::dct::DctParams;
use tbm::interp::capture::capture_video_scalable;
use tbm::interp::Interpretation;
use tbm::media::gen::{render_frames, VideoPattern};
use tbm::prelude::*;
use tbm::time::{TimeDelta, TimePoint, TimeSystem};

const FRAMES: usize = 20; // 20 PAL frames = 800 ms of playback per session

fn t(ms: i64) -> TimePoint {
    TimePoint::ZERO + TimeDelta::from_millis(ms)
}

/// A sharded catalog of `names` scalable movies, each captured into the
/// store of the shard that [`shard_of`] assigns it, wrapped in that
/// shard's fault plan (pass zero-rate plans for clean storage).
fn fleet_db(
    names: &[String],
    shards: usize,
    seed: u64,
    plans: &[FaultPlan],
) -> ShardedDb<FaultyBlobStore<MemBlobStore>> {
    assert_eq!(plans.len(), shards);
    let mut stores: Vec<MemBlobStore> = (0..shards).map(|_| MemBlobStore::new()).collect();
    let frames = render_frames(VideoPattern::MovingBar, 0, FRAMES, 48, 32);
    let mut interps = Vec::new();
    for name in names {
        let owner = shard_of(name, seed, shards);
        let (blob, interp) = capture_video_scalable(
            &mut stores[owner],
            &frames,
            TimeSystem::PAL,
            DctParams::default(),
        )
        .unwrap();
        let stream = interp.stream("video1").unwrap().clone();
        let mut renamed = Interpretation::new(blob);
        renamed.add_stream(name, stream).unwrap();
        interps.push(renamed);
    }
    let faulty = stores
        .into_iter()
        .zip(plans.iter().cloned())
        .map(|(store, plan)| FaultyBlobStore::new(store, plan))
        .collect();
    let mut db = ShardedDb::with_stores(faulty, seed);
    for interp in interps {
        db.register_interpretation(interp).unwrap();
    }
    db
}

fn clean_plans(shards: usize, seed: u64) -> Vec<FaultPlan> {
    (0..shards)
        .map(|i| FaultPlan::new(seed ^ i as u64))
        .collect()
}

/// Runs a `sessions`-session storm (staggered 150 ms apart, objects
/// picked round-robin) over a fleet with node 1 killed at 1.5 s and
/// restarted at 6 s. Returns the final stats, every `(object, session)`
/// pair (None = not admitted or unreachable), and the rendered metrics.
fn kill_storm(
    names: &[String],
    shards: usize,
    nodes: usize,
    seed: u64,
    sessions: usize,
    migration: bool,
    tracer: Option<Tracer>,
) -> (FleetStats, Vec<(String, Option<SessionId>)>, String) {
    let db = fleet_db(names, shards, seed, &clean_plans(shards, seed));
    let mut fleet = Fleet::new(db, nodes, Capacity::new(400_000_000).admit_all())
        .with_cache_budget(16 << 20)
        .with_migration(migration)
        .with_fault_plan(
            1,
            NodeFaultPlan::new().with_crash_restart(t(1_500), t(6_000)),
        );
    if let Some(tr) = tracer {
        fleet = fleet.with_tracer(tr);
    }
    let mut opened = Vec::new();
    for i in 0..sessions {
        let at = t(i as i64 * 150);
        let name = names[i % names.len()].clone();
        match fleet.request(
            at,
            Request::Open {
                object: name.clone(),
            },
        ) {
            Ok(Response::Opened { session, .. }) => {
                if let Some(id) = session {
                    // A Play can also be unreachable in the baseline arm;
                    // the session is then accounted as shed or left open.
                    let _ = fleet.request(at, Request::Play { session: id });
                }
                opened.push((name, session));
            }
            Ok(other) => panic!("Open answered {other:?}"),
            Err(FleetError::Unreachable { .. }) => opened.push((name, None)),
            Err(e) => panic!("unexpected fleet error: {e}"),
        }
    }
    let stats = fleet.finish();

    // The global snapshot is exactly the per-shard sum, wherever the
    // shards happened to be hosted.
    let mut rebuilt = ServerStats::empty();
    for s in &stats.shards.per_shard {
        rebuilt.absorb(s);
    }
    assert_eq!(rebuilt, stats.shards.global, "global must be the shard sum");

    // Fleet-ended session states: everything is finished, closed (shed
    // counts as closed), or still open because its Play never got through.
    for s in fleet.sessions() {
        assert!(
            matches!(
                s.state(),
                SessionState::Finished | SessionState::Closed | SessionState::Opened
            ),
            "session {:?} ended in {:?}",
            s.id(),
            s.state()
        );
    }

    (stats, opened, fleet.metrics().render())
}

fn names(n: usize) -> Vec<String> {
    (0..n).map(|i| format!("movie{i}")).collect()
}

#[test]
fn killing_one_of_four_nodes_drops_nothing_when_migration_is_live() {
    let names = names(8);
    let seed = 0xF1EE7;
    let (with_migration, opened, _) = kill_storm(&names, 8, 4, seed, 24, true, None);
    let (baseline, _, _) = kill_storm(&names, 8, 4, seed, 24, false, None);

    // The migrating fleet admits and finishes every session and serves
    // every element of every schedule: the node kill costs zero serves.
    assert!(
        opened.iter().all(|(_, s)| s.is_some()),
        "live migration must keep every object reachable"
    );
    assert_eq!(
        with_migration.shards.global.elements_served,
        24 * FRAMES,
        "every scheduled element is served"
    );
    assert_eq!(
        with_migration.shards.global.dropped_elements, 0,
        "a node kill under live migration drops nothing"
    );
    assert_eq!(with_migration.elements_shed, 0);
    assert_eq!(with_migration.shards.global.finished_sessions, 24);
    assert!(
        with_migration.migrations > 0,
        "the kill must actually move shards"
    );
    assert!(with_migration.handoff_bytes > 0);

    // The no-migration baseline loses real work: sessions on the dead
    // node shed their remaining elements (accounted as drops), and some
    // opens never get through at all.
    assert!(
        baseline.elements_shed > 0,
        "the baseline must shed in-flight elements on the kill"
    );
    assert_eq!(
        baseline.shards.global.dropped_elements as u64, baseline.elements_shed,
        "clean storage: every baseline drop is a shed element"
    );
    assert_eq!(baseline.migrations, 0);
    assert!(
        baseline.shards.global.elements_served < with_migration.shards.global.elements_served
            || opened.len() > baseline.per_node.len(),
        "the baseline serves strictly less"
    );

    // The fault invariant holds in both arms, node loss included: shed
    // elements are dropped elements, so the partition stays exact.
    for stats in [&with_migration, &baseline] {
        for s in stats
            .shards
            .per_shard
            .iter()
            .chain(std::iter::once(&stats.shards.global))
        {
            assert_eq!(
                s.faults_detected,
                s.degraded_elements + s.dropped_elements + s.repaired_elements
            );
            assert_eq!(s.service.count() as usize, s.elements_served);
            assert_eq!(s.lateness.count() as usize, s.deadline_misses);
        }
    }

    // Restart-with-salvage: node 1 is back up and its home shards came
    // home, so the fleet ends in its initial placement.
    assert!(with_migration.per_node[1].up);
    assert_eq!(with_migration.per_node[1].crashes, 1);
    assert_eq!(with_migration.per_node[1].restarts, 1);
}

#[test]
fn migration_stalls_are_attributed_to_node_loss() {
    let names = names(8);
    let tracer = Tracer::new();
    let (stats, _, _) = kill_storm(&names, 8, 4, 0xF1EE7, 24, true, Some(tracer.clone()));

    assert!(
        stats.shards.global.deadline_misses > 0,
        "the handoff stall must cost some deadlines"
    );
    let report = attribute(&tracer.snapshot().records);
    assert_eq!(
        report.total(),
        stats.shards.global.deadline_misses,
        "every miss gets exactly one cause"
    );
    let by_cause = report.by_cause();
    let node_loss = by_cause
        .iter()
        .find(|(c, _)| *c == MissCause::NodeLoss)
        .map(|&(_, n)| n)
        .unwrap_or(0);
    assert!(
        node_loss > 0,
        "stall-induced misses must be attributed to node-loss, got {by_cause:?}"
    );
    let partition: usize = by_cause.iter().map(|&(_, n)| n).sum();
    assert_eq!(partition, report.total(), "attribution is a partition");
}

#[test]
fn same_seed_fleet_storms_replay_byte_identically() {
    let names = names(6);
    let run = || {
        let tracer = Tracer::new();
        let (stats, opened, metrics) =
            kill_storm(&names, 4, 4, 0xBEEF, 18, true, Some(tracer.clone()));
        let mut trace = Vec::new();
        tbm::obs::chrome_trace_to_writer(&tracer.snapshot(), &mut trace).unwrap();
        (stats, opened, metrics, trace)
    };
    let (stats_a, opened_a, metrics_a, trace_a) = run();
    let (stats_b, opened_b, metrics_b, trace_b) = run();
    assert_eq!(stats_a, stats_b, "same seed, same stats");
    assert_eq!(opened_a, opened_b, "same seed, same admissions");
    assert_eq!(metrics_a, metrics_b, "same seed, same rendered metrics");
    assert_eq!(trace_a, trace_b, "same seed, byte-identical trace");
}

#[test]
fn partition_trips_the_breaker_and_fails_the_shards_over() {
    // Node 1's link is partitioned from 1 s to 2 s. The first request in
    // the window loses twice, trips the breaker, and the mid-retry-loop
    // re-route lands it on the survivor — the request itself succeeds.
    let names = names(4);
    let seed = 0xACE;
    let db = fleet_db(&names, 4, seed, &clean_plans(4, seed));
    let link = Link::new(125_000_000).with_partition(t(1_000), t(2_000));
    let mut fleet = Fleet::new(db, 2, Capacity::new(400_000_000).admit_all())
        .with_cache_budget(16 << 20)
        .with_link(1, link);
    let mut ids = Vec::new();
    for i in 0..8 {
        let at = t(i as i64 * 400);
        let name = names[i % names.len()].clone();
        let Response::Opened { session, .. } = fleet
            .request(at, Request::Open { object: name })
            .expect("failover must keep every open reachable")
        else {
            panic!("Open answers Opened");
        };
        let id = session.expect("ample capacity admits");
        fleet.request(at, Request::Play { session: id }).unwrap();
        ids.push(id);
    }
    let stats = fleet.finish();
    assert!(
        stats.per_node[1].breaker_trips > 0,
        "the partition must trip node 1's breaker"
    );
    assert!(stats.migrations > 0, "tripping must evacuate the shards");
    assert!(stats.transport_lost > 0);
    assert_eq!(stats.shards.global.dropped_elements, 0);
    assert_eq!(stats.shards.global.finished_sessions, ids.len());
}

#[test]
fn brownout_degrades_admission_and_recovery_upgrades_it() {
    // Size one node so a full-fidelity session fits at 100% health but
    // not at 30%: a session opened in the brownout window is admitted
    // degraded, and the health recovery upgrades it before it plays.
    let names = names(1);
    let seed = 7;
    let probe = fleet_db(&names, 1, seed, &clean_plans(1, seed));
    let (_, stream) = probe.shard(0).stream_of(&names[0]).unwrap();
    let full_jobs = tbm::player::schedule_from_interp(stream, None);
    let full = tbm::player::demanded_rate(&full_jobs, stream.system())
        .unwrap()
        .ceil() as u64;

    let db = fleet_db(&names, 1, seed, &clean_plans(1, seed));
    let mut fleet = Fleet::new(db, 1, Capacity::new(full * 2))
        .with_fault_plan(0, NodeFaultPlan::new().with_brownout(t(0), t(1_000), 30));
    let Response::Opened {
        session: Some(id),
        decision,
    } = fleet
        .request(
            t(100),
            Request::Open {
                object: names[0].clone(),
            },
        )
        .unwrap()
    else {
        panic!("brownout must degrade, not reject");
    };
    assert!(
        matches!(decision, AdmitDecision::Degraded { .. }),
        "30% health cannot fit the full-rate session, got {decision:?}"
    );
    fleet.run_until(t(1_100));
    assert_eq!(
        fleet.session(id).unwrap().decision(),
        AdmitDecision::Admitted,
        "the brownout ending must upgrade the degraded session"
    );
    fleet
        .request(t(1_200), Request::Play { session: id })
        .unwrap();
    let stats = fleet.finish();
    assert_eq!(stats.shards.global.upgraded_sessions, 1);
    assert_eq!(stats.shards.global.finished_sessions, 1);
}

#[test]
fn fleet_metrics_roll_up_nodes_shards_and_fleet_counters() {
    let names = names(6);
    let seed = 0xD00D;
    let db = fleet_db(&names, 4, seed, &clean_plans(4, seed));
    let mut fleet =
        Fleet::new(db, 2, Capacity::new(400_000_000).admit_all()).with_cache_budget(16 << 20);
    for (i, name) in names.iter().enumerate() {
        let at = t(i as i64 * 100);
        if let Ok(Response::Opened {
            session: Some(id), ..
        }) = fleet.request(
            at,
            Request::Open {
                object: name.clone(),
            },
        ) {
            fleet.request(at, Request::Play { session: id }).unwrap();
        }
    }
    let stats = fleet.finish();
    let m = fleet.metrics();
    // Shards partition the global count; nodes partition it too, along
    // the current placement.
    let shard_sum: u64 = (0..fleet.shard_count())
        .map(|i| m.counter(&format!("shard{i}.serve.elements.served")))
        .sum();
    let node_sum: u64 = (0..fleet.node_count())
        .map(|i| m.counter(&format!("node{i}.serve.elements.served")))
        .sum();
    assert_eq!(shard_sum, m.counter("serve.elements.served"));
    assert_eq!(node_sum, m.counter("serve.elements.served"));
    assert_eq!(
        m.counter("serve.elements.served") as usize,
        stats.shards.global.elements_served
    );
    assert_eq!(m.gauge("fleet.nodes"), 2);
    assert_eq!(m.gauge("fleet.nodes.up"), 2);
    assert!(m.gauge("fleet.skew") >= 0);
    assert_eq!(
        m.counter("fleet.transport.sent"),
        stats.transport_sent,
        "snapshot and registry agree on transport accounting"
    );
}

mod prop {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        /// However the placement seed, fleet shape, kill time and storage
        /// fault rates are drawn: the global view is the shard sum, the
        /// fault invariant (node loss included) holds everywhere, the
        /// histograms account every element, and the run replays
        /// byte-identically.
        #[test]
        fn fleet_storms_hold_their_invariants(
            seed in any::<u64>(),
            nodes in 2usize..5,
            shards in 2usize..6,
            kill_ms in 300i64..2_500,
            transient in 0.0f64..0.3,
            sessions in 6usize..16,
        ) {
            let migration = seed & 1 == 0;
            let names: Vec<String> =
                (0..4).map(|i| format!("clip{i}")).collect();
            let plans: Vec<FaultPlan> = (0..shards)
                .map(|i| {
                    FaultPlan::new(seed ^ (i as u64).wrapping_mul(0x9E37_79B9))
                        .with_transient(transient)
                })
                .collect();
            let run = || {
                let db = fleet_db(&names, shards, seed, &plans);
                let mut fleet =
                    Fleet::new(db, nodes, Capacity::new(300_000_000).admit_all())
                        .with_cache_budget(8 << 20)
                        .with_migration(migration)
                        .with_fault_plan(
                            1,
                            NodeFaultPlan::new().with_crash(t(kill_ms)),
                        );
                let mut opened = Vec::new();
                for i in 0..sessions {
                    let at = t(i as i64 * 150);
                    let name = names[i % names.len()].clone();
                    match fleet.request(at, Request::Open { object: name.clone() }) {
                        Ok(Response::Opened { session, .. }) => {
                            if let Some(id) = session {
                                let _ = fleet.request(at, Request::Play { session: id });
                            }
                            opened.push((name, session));
                        }
                        Ok(_) => unreachable!("Open answers Opened"),
                        Err(_) => opened.push((name, None)),
                    }
                }
                let stats = fleet.finish();
                let render = fleet.metrics().render();
                (stats, opened, render)
            };
            let (stats, opened, metrics) = run();

            let mut rebuilt = ServerStats::empty();
            for s in &stats.shards.per_shard {
                rebuilt.absorb(s);
            }
            prop_assert_eq!(&rebuilt, &stats.shards.global);
            for s in stats
                .shards
                .per_shard
                .iter()
                .chain(std::iter::once(&stats.shards.global))
            {
                prop_assert_eq!(
                    s.faults_detected,
                    s.degraded_elements + s.dropped_elements + s.repaired_elements
                );
                prop_assert_eq!(s.service.count() as usize, s.elements_served);
                prop_assert_eq!(s.lateness.count() as usize, s.deadline_misses);
            }
            if migration {
                prop_assert_eq!(stats.elements_shed, 0);
            }

            let (stats_again, opened_again, metrics_again) = run();
            prop_assert_eq!(stats, stats_again);
            prop_assert_eq!(opened, opened_again);
            prop_assert_eq!(metrics, metrics_again);
        }
    }
}
