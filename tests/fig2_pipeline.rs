//! Integration test: the paper's §4.1 "Example of Interpretation" (Fig. 2),
//! at reduced scale but with the exact structural arithmetic.
//!
//! Paper numbers (full scale): 10-minute PAL video, 640×480, RGB24 source
//! (≈22 MB/s), "YUV 8:2:2" + JPEG at ≈0.5 bit/pixel (≈0.5 MB/s, VHS
//! quality); stereo CD audio at 172 kB/s; interleaved with "audio samples
//! following the associated video frame (1764 sample pairs)".

use tbm::codec::dct::DctParams;
use tbm::codec::quality::video_params;
use tbm::interp::capture;
use tbm::media::gen::{AudioSignal, VideoPattern};
use tbm::prelude::*;

const SPF: usize = 1764;

#[test]
fn exact_structural_arithmetic_of_fig2() {
    // 640×480 RGB24 at 25 fps: the paper's "about 22 Mbyte/sec".
    let raw_frame = tbm::media::PixelFormat::Rgb24.byte_len(640, 480) as u64;
    assert_eq!(raw_frame, 921_600);
    let raw_rate = raw_frame * 25;
    assert_eq!(raw_rate, 23_040_000); // 21.97 MiB/s ≈ "about 22"
    assert!((raw_rate as f64 / (1024.0 * 1024.0) - 21.97).abs() < 0.01);

    // Audio: 44100 Hz × 16 bit × 2 ch = 176400 B/s = 172.27 kiB/s.
    let audio_rate = 44_100u64 * 2 * 2;
    assert_eq!(audio_rate, 176_400);
    assert!((audio_rate as f64 / 1024.0 - 172.27).abs() < 0.01);

    // One PAL frame of CD audio = exactly 1764 sample pairs.
    assert_eq!(
        TimeSystem::PAL.convert_ticks_floor(1, TimeSystem::CD_AUDIO),
        1764
    );
}

#[test]
fn interleaved_capture_reproduces_fig2_structure() {
    // Reduced geometry for test speed; structure (interleave, tables,
    // descriptors) is scale-independent.
    let n = 25; // one second
    let frames = tbm::media::gen::render_frames(VideoPattern::MovingBar, 0, n, 160, 120);
    let audio = AudioSignal::Sine {
        hz: 440.0,
        amplitude: 9000,
    }
    .generate(0, n * SPF, 44_100, 2);
    let mut store = MemBlobStore::new();
    let cap = capture::capture_av_interleaved(
        &mut store,
        &frames,
        &audio,
        SPF,
        TimeSystem::PAL,
        video_params(VideoQuality::Vhs),
        Some(QualityFactor::Video(VideoQuality::Vhs)),
    )
    .unwrap();

    let v = cap.interpretation.stream("video1").unwrap();
    let a = cap.interpretation.stream("audio1").unwrap();

    // The paper's tables: video needs (elementNumber, elementSize,
    // blobPlacement) because frames are variable-sized.
    let sizes: Vec<u64> = v.entries().iter().map(|e| e.size).collect();
    assert!(
        sizes.iter().any(|&s| s != sizes[0]),
        "encoded frames must vary in size"
    );
    // Audio is uniform: every chunk is 1764 × 4 bytes.
    assert!(a.entries().iter().all(|e| e.size == (SPF * 4) as u64));

    // Interleaving: video element i immediately precedes audio element i.
    for i in 0..n {
        let vs = v.entry(i).unwrap().placement.as_single().unwrap();
        let as_ = a.entry(i).unwrap().placement.as_single().unwrap();
        assert_eq!(as_.offset, vs.end());
    }

    // Every element decodes through the interpretation (the timed-stream
    // abstraction hides the interleaving).
    for i in [0usize, n / 2, n - 1] {
        let bytes = v.read_element(&store, cap.blob, i).unwrap();
        let f = tbm::codec::dct::decode_frame(&bytes).unwrap();
        assert_eq!((f.width(), f.height()), (160, 120));
        let abytes = a.read_element(&store, cap.blob, i).unwrap();
        let chunk = tbm::media::AudioBuffer::from_bytes(2, &abytes).unwrap();
        assert_eq!(chunk.frames(), SPF);
    }

    // Descriptors carry the paper's attributes.
    let vd = v.descriptor();
    assert_eq!(
        vd.get_text(keys::CATEGORY),
        Some("homogeneous, constant frequency")
    );
    assert_eq!(vd.get_text(keys::QUALITY_FACTOR), Some("VHS quality"));
    assert_eq!(vd.get_text(keys::ENCODING), Some("YUV 8:2:2, JPEG"));
    assert_eq!(vd.get_rational(keys::FRAME_RATE), Some(Rational::from(25)));
    let ad = a.descriptor();
    assert_eq!(ad.get_text(keys::CATEGORY), Some("homogeneous, uniform"));
    assert_eq!(ad.get_int(keys::SAMPLE_RATE), Some(44_100));
    assert_eq!(ad.get_int(keys::CHANNELS), Some(2));
    // Resource-allocation attributes present.
    assert_eq!(
        ad.get_rational(keys::AVG_DATA_RATE),
        Some(Rational::from(176_400))
    );
    assert!(vd.get_rational(keys::AVG_DATA_RATE).is_some());
    assert!(vd.get_rational(keys::RATE_VARIATION).is_some());
}

#[test]
fn vhs_quality_compresses_toward_half_bit_per_pixel() {
    // At full 640×480, "about 0.5 bits per pixel". Synthetic content is not
    // the authors' tape, so allow a broad band around the target.
    let frame = VideoPattern::MovingBar.render(7, 640, 480);
    let enc = tbm::codec::dct::encode_frame(&frame, video_params(VideoQuality::Vhs));
    let bpp = tbm::codec::dct::bits_per_pixel(enc.len(), 640, 480);
    assert!(
        (0.05..=1.5).contains(&bpp),
        "VHS-quality bpp {bpp:.3} far from the paper's ≈0.5"
    );
    // And the video rate lands well under 1 MB/s (vs 22 MB/s raw).
    let rate = enc.len() as f64 * 25.0;
    assert!(rate < 1_500_000.0, "video rate {rate:.0} B/s too high");
}

#[test]
fn heterogeneous_table_shape_for_adpcm() {
    // "If video1 were a heterogeneous and non-continuous video object, it
    // would require a table of the form (elementNumber, startTime, duration,
    // elementDescriptor, elementSize, blobPlacement)" — ADPCM exercises the
    // elementDescriptor column.
    let mut store = MemBlobStore::new();
    let audio = AudioSignal::Chirp {
        from_hz: 100.0,
        to_hz: 2_000.0,
        sweep_frames: 8192,
        amplitude: 12_000,
    }
    .generate(0, 8192, 44_100, 1);
    let (_, interp) = capture::capture_audio_adpcm(&mut store, &audio, 44_100, 1024).unwrap();
    let s = interp.stream("audio1").unwrap();
    for e in s.entries() {
        assert!(e.descriptor.is_some(), "every element carries a descriptor");
    }
    let d0 = s.entry(0).unwrap().descriptor.as_ref().unwrap();
    let d7 = s.entry(7).unwrap().descriptor.as_ref().unwrap();
    assert_ne!(d0, d7, "parameters vary over the sequence");
}

#[test]
fn padded_capture_is_cdi_style() {
    let n = 10;
    let frames = tbm::media::gen::render_frames(VideoPattern::MovingBar, 0, n, 96, 64);
    let audio = AudioSignal::Silence.generate(0, n * SPF, 44_100, 2);
    let mut store = MemBlobStore::new();
    let cap = capture::capture_av_padded(
        &mut store,
        &frames,
        &audio,
        SPF,
        TimeSystem::PAL,
        DctParams::default(),
        None,
        2048,
    )
    .unwrap();
    assert!(cap.padding_bytes > 0);
    assert_eq!(cap.blob_len % 2048, 0);
    assert_eq!(
        cap.interpretation.mapped_bytes() + cap.padding_bytes,
        cap.blob_len
    );
}
