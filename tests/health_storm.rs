//! Health storm: the SLO/burn-rate plane riding fleet storms end to end.
//! Pins the tentpole guarantees: a node kill fires exactly the alert the
//! runbook predicts (fast-window lateness) and nothing else, a brownout
//! fires exactly its predicted alert (slow-window load skew), a clean
//! same-capacity run fires none, alerts open once per fault (hysteresis —
//! no flapping), alert spans land in the trace under `Category::Health`
//! with `health.*` counters in the fleet rollup, closed alerts expand
//! into incident reports whose breakdowns are one grouped query each,
//! streaming and batch evaluation agree over a lossless store, and
//! same-seed reruns render byte-identical reports.

use tbm::codec::dct::DctParams;
use tbm::interp::capture::capture_video_scalable;
use tbm::interp::Interpretation;
use tbm::media::gen::{render_frames, VideoPattern};
use tbm::obs::{Category, RecordKind};
use tbm::prelude::*;
use tbm::query::{AlertKind, HealthMonitor, SloRule};
use tbm::serve::Request;
use tbm::time::{TimeDelta, TimePoint, TimeSystem};

const SEED: u64 = 23;
const NODES: usize = 3;
const SHARDS: usize = 6;
const INTERVAL_MS: i64 = 50;
const TICKS: i64 = 240;

/// The fault window: node 1 is killed (or browned out) at 4 s — tick 80 —
/// and restored at 8 s, while sessions opened in the first 2 s are still
/// streaming their 10 s movies.
const FAULT_FROM_MS: i64 = 4_000;
const FAULT_TO_MS: i64 = 8_000;
const FAULT_TICK: u32 = (FAULT_FROM_MS / INTERVAL_MS) as u32;

fn t(ms: i64) -> TimePoint {
    TimePoint::ZERO + TimeDelta::from_millis(ms)
}

/// One movie name per shard (probed through [`shard_of`]), so the
/// round-robin session storm loads every shard — and therefore every
/// node — identically. The health plane's skew rule then reads true
/// imbalance (a fault), not hash-placement noise.
fn balanced_names() -> Vec<String> {
    let mut by_shard: Vec<Option<String>> = vec![None; SHARDS];
    let mut found = 0;
    let mut i = 0u32;
    while found < SHARDS {
        let name = format!("movie{i}");
        let shard = shard_of(&name, SEED, SHARDS);
        if by_shard[shard].is_none() {
            by_shard[shard] = Some(name);
            found += 1;
        }
        i += 1;
    }
    by_shard.into_iter().map(Option::unwrap).collect()
}

fn catalog(names: &[String]) -> ShardedDb {
    let mut db = ShardedDb::new(SHARDS, SEED);
    // 250 PAL frames = 10 s of playback, so sessions opened in the first
    // 2 s are still live through the 4–8 s fault window.
    let frames = render_frames(VideoPattern::MovingBar, 0, 250, 48, 32);
    for name in names {
        let store = db.store_for_mut(name);
        let (blob, interp) =
            capture_video_scalable(store, &frames, TimeSystem::PAL, DctParams::default()).unwrap();
        let stream = interp.stream("video1").unwrap().clone();
        let mut renamed = Interpretation::new(blob);
        renamed.add_stream(name, stream).unwrap();
        db.register_interpretation(renamed).unwrap();
    }
    db
}

/// The storm's rule set: every built-in armed at the thresholds the
/// runbook documents. A healthy run clears all four.
fn rules() -> Vec<SloRule> {
    vec![
        SloRule::p99_full_lateness_below(2_000.0),
        SloRule::drop_rate_below(1.0),
        SloRule::no_unverified_serves(),
        SloRule::load_skew_below(60.0),
    ]
}

/// One 12 s broadcast — 12 sessions staggered 150 ms apart over an
/// amply-provisioned fleet, so steady state is quiet and the scripted
/// `fault` on node 1 is the only signal — with the health plane riding
/// every telemetry tick.
fn storm(fault: Option<NodeFaultPlan>, bound: ErrorBound) -> (Fleet, FleetTelemetry) {
    let names = balanced_names();
    let db = catalog(&names);
    let owner = db.shard_for(&names[0]);
    let (_, stream) = db.shard(owner).stream_of(&names[0]).unwrap();
    let full_bps = tbm::player::demanded_rate(
        &tbm::player::schedule_from_interp(stream, None),
        stream.system(),
    )
    .unwrap()
    .ceil() as u64;

    // 20 streams of per-node capacity against 4 steady sessions per node:
    // ~20% steady load, so a 25%-health brownout pushes the browned node
    // to ~80% — a clear skew signal with enough service headroom left
    // that lateness stays quiet (the brownout alert is skew, not p99).
    // Skew self-healing is off: this storm is about *detecting* imbalance,
    // so the health plane must see the fault, not the fleet's own
    // rebalancer racing it (the runbook's fix knob is that rebalancer).
    let mut fleet = Fleet::new(db, NODES, Capacity::new(full_bps * 20).admit_all())
        .with_cache_budget(16 << 20)
        .with_rebalance_skew(None)
        .with_tracer(Tracer::with_capacity(1 << 16));
    if let Some(plan) = fault {
        fleet = fleet.with_fault_plan(1, plan);
    }
    let mut monitor = HealthMonitor::new(TimeDelta::from_millis(INTERVAL_MS));
    for rule in rules() {
        monitor = monitor.rule(rule);
    }
    let mut telemetry =
        FleetTelemetry::new(bound, TimeDelta::from_millis(INTERVAL_MS)).with_health(monitor);
    let mut next = 0usize;
    for k in 0..=TICKS {
        let at = t(INTERVAL_MS * k);
        telemetry.tick(&mut fleet, at);
        while next < 12 && (next as i64) * 150 < INTERVAL_MS * (k + 1) {
            let name = names[next % names.len()].clone();
            let open_at = t(next as i64 * 150).max(at);
            if let Ok(Response::Opened {
                session: Some(id), ..
            }) = fleet.request(open_at, Request::Open { object: name })
            {
                let _ = fleet.request(open_at, Request::Play { session: id });
            }
            next += 1;
        }
    }
    telemetry.finish(&mut fleet, t(INTERVAL_MS * (TICKS + 1)));
    fleet.finish();
    (fleet, telemetry)
}

fn kill_plan() -> NodeFaultPlan {
    NodeFaultPlan::new().with_crash_restart(t(FAULT_FROM_MS), t(FAULT_TO_MS))
}

fn brownout_plan() -> NodeFaultPlan {
    NodeFaultPlan::new().with_brownout(t(FAULT_FROM_MS), t(FAULT_TO_MS), 25)
}

/// `(rule name, opens)` for every armed rule, in rule order.
fn opens_by_rule(telemetry: &FleetTelemetry) -> Vec<(String, u64)> {
    let monitor = telemetry.health().expect("health plane attached");
    monitor
        .rules()
        .iter()
        .map(|r| (r.name.clone(), monitor.opens(&r.name)))
        .collect()
}

#[test]
fn clean_run_fires_no_alerts() {
    let (fleet, telemetry) = storm(None, ErrorBound::percent(1.0));
    for (rule, opens) in opens_by_rule(&telemetry) {
        assert_eq!(opens, 0, "clean run must not open {rule}");
    }
    let monitor = telemetry.health().unwrap();
    assert!(monitor.incidents().is_empty());
    assert!(monitor.open_alerts().is_empty());
    assert!(telemetry.incident_reports().is_empty());
    assert_eq!(fleet.metrics().counter("health.alerts.opened"), 0);
    assert!(
        !fleet
            .trace()
            .records
            .iter()
            .any(|r| r.cat == Category::Health),
        "a quiet fleet writes no health records"
    );
}

#[test]
fn node_kill_fires_exactly_the_fast_lateness_alert() {
    let (fleet, telemetry) = storm(Some(kill_plan()), ErrorBound::percent(1.0));

    // Exactly the predicted alert, exactly once — no flapping, no
    // bycatch on the other three rules.
    for (rule, opens) in opens_by_rule(&telemetry) {
        let expected = u64::from(rule == "lateness-p99-full");
        assert_eq!(opens, expected, "{rule}: opens");
    }
    let monitor = telemetry.health().unwrap();
    assert!(monitor.open_alerts().is_empty(), "hysteresis must close it");
    assert_eq!(monitor.incidents().len(), 1);

    let inc = &monitor.incidents()[0];
    assert_eq!(inc.rule, "lateness-p99-full");
    assert!(
        (FAULT_TICK..FAULT_TICK + 10).contains(&inc.opened_tick),
        "the alert must open within 10 ticks of the kill (opened t{})",
        inc.opened_tick
    );
    // The *fast* window caught it: the opening burn already clears the
    // 2x fast trigger (a slow-window-only open would sit below it).
    let opening = inc.trajectory.first().unwrap();
    assert!(
        opening.fast >= 2.0,
        "node kill is a fast-window catch (fast {:.2}x at open)",
        opening.fast
    );
    assert!(inc.closed_tick > inc.opened_tick);
    assert_eq!(
        inc.trajectory.len() as u32,
        inc.closed_tick - inc.opened_tick + 1
    );

    // The transitions are first-class observability: one Health span in
    // the trace, opened at the alert's open tick and closed at its close,
    // and counted in the fleet's metrics rollup.
    let trace = fleet.trace();
    let health: Vec<_> = trace
        .records
        .iter()
        .filter(|r| r.cat == Category::Health)
        .collect();
    assert_eq!(health.len(), 1, "one alert span: {health:?}");
    let span = health[0];
    assert_eq!(span.name, "alert");
    assert_eq!(span.kind, RecordKind::Span);
    assert_eq!(
        span.attr("rule").and_then(|v| v.as_str()),
        Some("lateness-p99-full")
    );
    assert_eq!(span.attr_i64("open_tick"), i64::from(inc.opened_tick));
    assert!(span.end.is_some(), "the span must close with the alert");
    let metrics = fleet.metrics();
    assert_eq!(metrics.counter("health.alerts.opened"), 1);
    assert_eq!(metrics.counter("health.alerts.closed"), 1);
    assert_eq!(metrics.counter("health.alerts.opened.lateness-p99-full"), 1);

    // The closed alert expanded into a report with the grouped
    // breakdowns; the dominant miss cause during the window is the kill.
    let reports = telemetry.incident_reports();
    assert_eq!(reports.len(), 1);
    let text = reports[0].render();
    assert!(text.starts_with("incident: lateness-p99-full\n"), "{text}");
    assert!(text.contains("burn trajectory"), "{text}");
    assert!(text.contains("breakdown by node:"), "{text}");
    assert!(text.contains("breakdown by shard:"), "{text}");
    assert!(
        text.contains("node-loss"),
        "the report must attribute the kill:\n{text}"
    );
}

#[test]
fn brownout_fires_exactly_the_slow_skew_alert() {
    let (fleet, telemetry) = storm(Some(brownout_plan()), ErrorBound::percent(1.0));

    for (rule, opens) in opens_by_rule(&telemetry) {
        let expected = u64::from(rule == "load-skew");
        assert_eq!(opens, expected, "{rule}: opens");
    }
    let monitor = telemetry.health().unwrap();
    assert!(monitor.open_alerts().is_empty(), "hysteresis must close it");
    assert_eq!(monitor.incidents().len(), 1);

    let inc = &monitor.incidents()[0];
    assert_eq!(inc.rule, "load-skew");
    assert!(
        inc.opened_tick >= FAULT_TICK,
        "skew opens only after the brownout derates node 1 (opened t{})",
        inc.opened_tick
    );
    // The *slow* window caught it: the sustained ~80%-vs-20% imbalance
    // burns ~1.7x — below the 2x fast trigger, above the 1x slow one.
    let opening = inc.trajectory.first().unwrap();
    assert!(
        opening.fast < 2.0 && opening.slow >= 1.0,
        "brownout is a slow-window catch (fast {:.2}x, slow {:.2}x at open)",
        opening.fast,
        opening.slow
    );

    assert_eq!(fleet.metrics().counter("health.alerts.opened.load-skew"), 1);
    let reports = telemetry.incident_reports();
    assert_eq!(reports.len(), 1);
    let text = reports[0].render();
    assert!(text.starts_with("incident: load-skew\n"), "{text}");
    assert!(text.contains("breakdown by node:"), "{text}");
}

#[test]
fn streaming_and_batch_replay_agree_over_a_lossless_store() {
    // Over a lossless store, reconstructing the shipped segments gives
    // back the exact per-tick samples, so replaying them through a fresh
    // monitor must open and close the same alerts at the same ticks.
    let (_, telemetry) = storm(Some(kill_plan()), ErrorBound::LOSSLESS);
    let streaming = telemetry.health().unwrap();
    assert_eq!(streaming.incidents().len(), 1, "the kill must alert");

    let store = telemetry.store().expect("ticked");
    let (batch, transitions) = HealthMonitor::replay(store, rules());
    assert_eq!(streaming.incidents(), batch.incidents());
    for rule in batch.rules() {
        assert_eq!(streaming.opens(&rule.name), batch.opens(&rule.name));
    }
    assert_eq!(transitions.len(), 2, "one open, one close: {transitions:?}");
    assert_eq!(transitions[0].kind, AlertKind::Opened);
    assert_eq!(transitions[1].kind, AlertKind::Closed);
}

#[test]
fn same_seed_reruns_render_byte_identical_reports() {
    let render = |fault: fn() -> NodeFaultPlan| {
        let (_, telemetry) = storm(Some(fault()), ErrorBound::percent(1.0));
        let mut out = String::new();
        for report in telemetry.incident_reports() {
            out.push_str(&report.render());
            out.push('\n');
        }
        out
    };
    let a = render(kill_plan);
    let b = render(kill_plan);
    assert!(a.len() > 200, "the report must have substance:\n{a}");
    assert_eq!(a, b, "same seed, same bytes");
}
