#!/usr/bin/env bash
# Tier-1 gate for the tbm workspace: build, tests, lints, formatting.
# Run from the repository root; any failure fails the script.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test -q"
cargo test -q --workspace

echo "==> examples smoke"
for ex in examples/*.rs; do
    name="$(basename "$ex" .rs)"
    echo "--> example: $name"
    cargo run --release -q -p tbm --example "$name"
done

echo "==> cargo clippy -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> CI green"
