#!/usr/bin/env bash
# Tier-1 gate for the tbm workspace: build, tests, lints, formatting.
# Run from the repository root; any failure fails the script.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test -q"
cargo test -q --workspace

echo "==> examples smoke"
for ex in examples/*.rs; do
    name="$(basename "$ex" .rs)"
    echo "--> example: $name"
    cargo run --release -q -p tbm --example "$name"
done

echo "==> trace-export smoke"
# The broadcast example writes a Perfetto-loadable Chrome trace; the run
# above must have produced a non-empty, JSON-shaped file.
trace=target/broadcast_trace.json
[ -s "$trace" ] || { echo "missing or empty $trace" >&2; exit 1; }
head -c1 "$trace" | grep -q '\[' || { echo "$trace is not a JSON array" >&2; exit 1; }
echo "--> $trace: $(wc -c < "$trace") bytes"

echo "==> tier-failover smoke"
# The broadcast example again, this time over a tiered store whose
# primary tier blacks out mid-run: the example asserts zero drops,
# failover reads, and a healed breaker.
BROADCAST_TIER_BLACKOUT=1 cargo run --release -q -p tbm --example broadcast

echo "==> sharded-catalog smoke"
# And once more through the shard-aware front end: four shards, each with
# its own budget and cache; the example asserts hash routing, an exact
# per-shard -> global rollup, and the fault invariant at both levels.
BROADCAST_SHARDS=4 cargo run --release -q -p tbm --example broadcast

echo "==> fleet node-kill smoke"
# And finally on a simulated four-node fleet with a scripted node kill
# mid-broadcast: the example asserts zero dropped serves across the
# failover, real migrations, and the salvage restart restoring the home
# placement.
BROADCAST_FLEET=4 cargo run --release -q -p tbm --example broadcast

echo "==> telemetry query smoke"
# The query example runs the fleet broadcast with the telemetry plane and
# asks typed questions of the compressed store; its own asserts cover
# compression and the brownout answer. On top, the rendered report must
# contain a non-empty query table (a header rule followed by data rows).
out="$(cargo run --release -q -p tbm --example query)"
echo "$out" | grep -q '^scan(metrics)' || { echo "query example printed no metrics table" >&2; exit 1; }
echo "$out" | grep -q -- '-----' || { echo "query example printed no table rule" >&2; exit 1; }
echo "$out" | grep -A2 -- '-----' | grep -vq '(no rows)' || { echo "query tables are empty" >&2; exit 1; }

echo "==> broadcast query-report smoke"
# The broadcast example once more, with the telemetry plane riding along
# and a post-run typed query report.
BROADCAST_QUERY=1 cargo run --release -q -p tbm --example broadcast

echo "==> health-plane smoke"
# The health plane rides the fleet broadcast through a scripted brownout.
# The example's own asserts pin "exactly load-skew, exactly once, closed
# by hysteresis"; on top, the printed report must name the expected alert
# and must not have opened any other rule.
out="$(BROADCAST_HEALTH=1 cargo run --release -q -p tbm --example broadcast)"
echo "$out" | grep -q '^incident: load-skew' || { echo "health smoke: no load-skew incident report" >&2; exit 1; }
echo "$out" | grep -Eq '^load-skew +1$' || { echo "health smoke: load-skew did not open exactly once" >&2; exit 1; }
for quiet in lateness-p99-full drop-rate unverified-serves; do
    echo "$out" | grep -Eq "^$quiet +0\$" || { echo "health smoke: $quiet fired (or its count is missing)" >&2; exit 1; }
done
echo "$out" | grep -q 'breakdown by node:' || { echo "health smoke: report missing the node breakdown" >&2; exit 1; }

echo "==> remediation smoke"
# The loop closed: the same brownout with the remediation plane attached.
# The example's own asserts pin "alert opened, rebalance applied, alert
# closed, nothing rolled back, no freeze"; on top, the printed action log
# must show the skew alert opening, an applied rebalance, and the alert
# closing — with zero operator input.
out="$(BROADCAST_REMEDIATE=1 cargo run --release -q -p tbm --example broadcast)"
echo "$out" | grep -Eq '^load-skew +1$' || { echo "remediation smoke: load-skew did not open exactly once" >&2; exit 1; }
echo "$out" | grep -Eq '\[load-skew\] rebalance-shards.* applied' || { echo "remediation smoke: no applied rebalance in the action log" >&2; exit 1; }
echo "$out" | grep -q 'remediation timeline:' || { echo "remediation smoke: report missing the remediation timeline" >&2; exit 1; }
echo "$out" | grep -q 'zero operator input' || { echo "remediation smoke: the alert did not close on its own" >&2; exit 1; }

echo "==> serving-bench smoke"
# The Criterion serve suite in fast mode (the vendored harness runs a
# short fixed iteration count and ignores tuning flags): cache hit/miss
# paths, the broadcast, and the staged-storm throughput group at 1/2/4
# workers all have to complete.
cargo bench -q -p tbm-bench --bench serve -- --profile-time 1 > /dev/null

echo "==> throughput-suite smoke"
# exp_throughput at a storm size small enough for CI. The binary itself
# asserts cross-worker byte-identical stats/metrics and full service;
# the trajectory point goes to a scratch file, never the checked-in
# BENCH_serve.json.
TBM_THROUGHPUT_SESSIONS=256 TBM_THROUGHPUT_SHARDS=4 \
TBM_BENCH_OUT=target/bench_serve_ci.json \
    cargo run --release -q -p tbm-bench --bin exp_throughput > /dev/null
[ -s target/bench_serve_ci.json ] || { echo "throughput smoke wrote no trajectory point" >&2; exit 1; }

echo "==> cargo doc --no-deps (deny warnings)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps -q

echo "==> cargo clippy -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> CI green"
