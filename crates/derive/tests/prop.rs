//! Property tests: derivation-object serialization is total and lossless;
//! lazy expansion agrees with full expansion on random edit programs.

use proptest::prelude::*;
use tbm_derive::{AudioClip, EditCut, Expander, MediaValue, Node, Op, VideoClip, WipeDirection};
use tbm_media::gen::{AudioSignal, VideoPattern};
use tbm_time::{Rational, TimeSystem};

// ---------------------------------------------------------------------------
// Serialization
// ---------------------------------------------------------------------------

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        prop::collection::vec((0u8..3, 0u32..100, 0u32..100), 1..8).prop_map(|cuts| {
            Op::VideoEdit {
                cuts: cuts
                    .into_iter()
                    .map(|(input, a, b)| EditCut {
                        input,
                        from: a.min(b),
                        to: a.max(b),
                    })
                    .collect(),
            }
        }),
        Just(Op::VideoReverse),
        any::<i32>().prop_map(|t| Op::TimeTranslate { ticks: t as i64 }),
        (1i64..1000, 1i64..1000).prop_map(|(n, d)| Op::TimeScale {
            factor: Rational::new(n, d),
        }),
        (0u32..100, 0u32..100).prop_map(|(a, b)| Op::AudioCut {
            from: a.min(b),
            to: a.max(b),
        }),
        Just(Op::AudioConcat),
        (1u32..500).prop_map(|frames| Op::Fade { frames }),
        (1u32..500, any::<bool>()).prop_map(|(frames, d)| Op::Wipe {
            frames,
            direction: if d {
                WipeDirection::LeftToRight
            } else {
                WipeDirection::TopToBottom
            },
        }),
        (any::<u32>(), any::<u8>()).prop_map(|(key_rgb, tolerance)| Op::ChromaKey {
            key_rgb: key_rgb & 0xFF_FFFF,
            tolerance,
        }),
        (1i16..32767, prop::option::of((0u32..100, 0u32..100))).prop_map(|(p, r)| {
            Op::AudioNormalize {
                target_peak: p,
                range: r.map(|(a, b)| (a.min(b), a.max(b))),
            }
        }),
        (any::<i32>(), 1i32..10_000).prop_map(|(num, den)| Op::AudioGain { num, den }),
        Just(Op::AudioMix),
        (1u32..200_000).prop_map(|to_rate| Op::AudioResample { to_rate }),
        (1u32..50_000, 0u32..500, 0u16..1024).prop_map(|(sr, bpm, g)| Op::MidiSynthesize {
            sample_rate: sr,
            tempo_bpm: bpm,
            gain_num: g,
        }),
        (1u32..120).prop_map(|fps| Op::RenderAnimation { fps }),
        (1u16..3000).prop_map(|q| Op::Transcode { quant_percent: q }),
    ]
}

fn arb_node() -> impl Strategy<Value = Node> {
    let leaf = "[a-z]{1,12}".prop_map(|s| Node::source(&s));
    leaf.prop_recursive(4, 24, 3, |inner| {
        (arb_op(), prop::collection::vec(inner, 0..3))
            .prop_map(|(op, inputs)| Node::derive(op, inputs))
    })
}

proptest! {
    /// Serialization round-trips every representable tree.
    #[test]
    fn node_roundtrip(node in arb_node()) {
        let bytes = node.to_bytes();
        prop_assert_eq!(Node::from_bytes(&bytes).unwrap(), node);
    }

    /// Parsing never panics on arbitrary bytes or mutated valid trees.
    #[test]
    fn parse_is_total(bytes in prop::collection::vec(any::<u8>(), 0..300),
                      node in arb_node(), flip in any::<(u16, u8)>()) {
        let _ = Node::from_bytes(&bytes);
        let mut enc = node.to_bytes();
        if !enc.is_empty() {
            let i = flip.0 as usize % enc.len();
            enc[i] ^= flip.1 | 1;
            let _ = Node::from_bytes(&enc);
        }
    }

    /// spec_size is exact.
    #[test]
    fn spec_size_matches(node in arb_node()) {
        prop_assert_eq!(node.spec_size(), node.to_bytes().len());
    }
}

// ---------------------------------------------------------------------------
// Lazy / full agreement on random edit programs
// ---------------------------------------------------------------------------

fn fixture() -> Expander {
    let mut e = Expander::new();
    e.add_source(
        "v",
        MediaValue::Video(VideoClip::new(
            tbm_media::gen::render_frames(VideoPattern::MovingBar, 0, 24, 16, 12),
            TimeSystem::PAL,
        )),
    );
    e.add_source(
        "a",
        MediaValue::Audio(AudioClip::new(
            AudioSignal::Sine {
                hz: 440.0,
                amplitude: 7000,
            }
            .generate(0, 2000, 44_100, 1),
            44_100,
        )),
    );
    e
}

/// Random single-input edit programs over the 24-frame fixture.
fn arb_video_program() -> impl Strategy<Value = Node> {
    prop::collection::vec((0u32..24, 0u32..24), 1..6).prop_map(|ranges| {
        let cuts = ranges
            .into_iter()
            .map(|(a, b)| EditCut {
                input: 0,
                from: a.min(b),
                to: a.max(b),
            })
            .collect();
        Node::derive(Op::VideoEdit { cuts }, vec![Node::source("v")])
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every frame pulled lazily equals the frame from full expansion.
    #[test]
    fn lazy_equals_full_for_edits(program in arb_video_program()) {
        let e = fixture();
        let len = e.video_len(&program).unwrap();
        let MediaValue::Video(full) = e.expand(&program).unwrap() else {
            unreachable!()
        };
        prop_assert_eq!(len, full.len());
        for i in 0..len {
            prop_assert_eq!(&e.pull_frame(&program, i).unwrap(), &full.frames[i]);
        }
        prop_assert!(e.pull_frame(&program, len).is_err());
    }

    /// Random audio windows from chained cut/gain/concat match expansion.
    #[test]
    fn lazy_audio_windows(from in 0u32..1500, len in 1u32..400, num in 1i32..4, den in 1i32..4) {
        let e = fixture();
        let cut = Node::derive(Op::AudioCut { from: 100, to: 1900 }, vec![Node::source("a")]);
        let gain = Node::derive(Op::AudioGain { num, den }, vec![cut.clone()]);
        let node = Node::derive(Op::AudioConcat, vec![cut, gain]);
        let total = e.audio_len(&node).unwrap();
        let from = from as usize % total;
        let take = (len as usize).min(total - from);
        let MediaValue::Audio(full) = e.expand(&node).unwrap() else {
            unreachable!()
        };
        let window = e.pull_audio(&node, from, take).unwrap();
        let reference = full.buffer.slice_frames(from, from + take);
        prop_assert_eq!(window.samples(), reference.samples());
    }
}
