//! Behavioural tests of derivation expansion: every Table 1 derivation plus
//! the surrounding prose examples, and lazy/full agreement.

use tbm_derive::{
    AnimClip, AudioClip, EditCut, Expander, MediaValue, MusicClip, Node, Op, VideoClip,
    WipeDirection,
};
use tbm_media::animation::{MoveSpec, Point};
use tbm_media::color::{Rgb, SeparationTable};
use tbm_media::gen::{major_scale, AudioSignal, VideoPattern};
use tbm_media::{Frame, PixelFormat};
use tbm_time::{Rational, TimeSystem};

fn video(name_seed: u64, n: usize) -> MediaValue {
    let frames = (0..n as u64)
        .map(|i| VideoPattern::MovingBar.render(name_seed * 100 + i, 32, 24))
        .collect();
    MediaValue::Video(VideoClip::new(frames, TimeSystem::PAL))
}

fn solid_video(color: (u8, u8, u8), n: usize) -> MediaValue {
    let frames = (0..n)
        .map(|_| {
            Frame::filled(
                32,
                24,
                PixelFormat::Rgb24,
                Rgb::new(color.0, color.1, color.2),
            )
        })
        .collect();
    MediaValue::Video(VideoClip::new(frames, TimeSystem::PAL))
}

fn quiet_audio(frames: usize) -> MediaValue {
    let buf = AudioSignal::Sine {
        hz: 440.0,
        amplitude: 4000,
    }
    .generate(0, frames, 44100, 1);
    MediaValue::Audio(AudioClip::new(buf, 44100))
}

fn expander() -> Expander {
    let mut e = Expander::new();
    e.add_source("video1", video(1, 30));
    e.add_source("video2", video(2, 30));
    e.add_source("red", solid_video((200, 0, 0), 10));
    e.add_source("blue", solid_video((0, 0, 200), 10));
    e.add_source("audio1", quiet_audio(4410));
    e.add_source(
        "music1",
        MediaValue::Music(MusicClip::new(major_scale(0, 60, 1, 480, 400), 480, 120)),
    );
    e.add_source(
        "anim1",
        MediaValue::Animation(AnimClip::new(
            vec![(
                MoveSpec::new(1, Point::new(2, 12), Point::new(28, 12), 3, 0x00FF00),
                0,
                20,
            )],
            TimeSystem::from_hz(10),
            32,
            24,
            0x000000,
        )),
    );
    e.add_source(
        "image1",
        MediaValue::Image(Frame::filled(
            16,
            16,
            PixelFormat::Rgb24,
            Rgb::new(40, 90, 160),
        )),
    );
    e
}

fn expand_video(e: &Expander, node: &Node) -> VideoClip {
    match e.expand(node).unwrap() {
        MediaValue::Video(v) => v,
        other => panic!("expected video, got {}", other.type_name()),
    }
}

fn expand_audio(e: &Expander, node: &Node) -> AudioClip {
    match e.expand(node).unwrap() {
        MediaValue::Audio(a) => a,
        other => panic!("expected audio, got {}", other.type_name()),
    }
}

// ---------------------------------------------------------------------------
// Table 1 row: video edit
// ---------------------------------------------------------------------------

#[test]
fn video_edit_selects_and_orders() {
    let e = expander();
    // Selections can reorder and repeat — "selection and ordering of
    // sequences".
    let node = Node::derive(
        Op::VideoEdit {
            cuts: vec![
                EditCut {
                    input: 0,
                    from: 20,
                    to: 25,
                },
                EditCut {
                    input: 0,
                    from: 0,
                    to: 5,
                },
                EditCut {
                    input: 0,
                    from: 20,
                    to: 25,
                },
            ],
        },
        vec![Node::source("video1")],
    );
    let out = expand_video(&e, &node);
    assert_eq!(out.len(), 15);
    // The first output frame equals source frame 20.
    let src = expand_video(&e, &Node::source("video1"));
    assert_eq!(out.frames[0], src.frames[20]);
    assert_eq!(out.frames[5], src.frames[0]);
    assert_eq!(out.frames[10], src.frames[20]);
}

#[test]
fn video_edit_multi_input() {
    let e = expander();
    let node = Node::derive(
        Op::VideoEdit {
            cuts: vec![
                EditCut {
                    input: 0,
                    from: 0,
                    to: 3,
                },
                EditCut {
                    input: 1,
                    from: 5,
                    to: 9,
                },
            ],
        },
        vec![Node::source("video1"), Node::source("video2")],
    );
    let out = expand_video(&e, &node);
    assert_eq!(out.len(), 7);
    let v2 = expand_video(&e, &Node::source("video2"));
    assert_eq!(out.frames[3], v2.frames[5]);
}

#[test]
fn video_edit_validates_ranges() {
    let e = expander();
    let node = Node::derive(
        Op::VideoEdit {
            cuts: vec![EditCut {
                input: 0,
                from: 0,
                to: 99,
            }],
        },
        vec![Node::source("video1")],
    );
    assert!(e.expand(&node).is_err());
    let backwards = Node::derive(
        Op::VideoEdit {
            cuts: vec![EditCut {
                input: 0,
                from: 9,
                to: 3,
            }],
        },
        vec![Node::source("video1")],
    );
    assert!(e.expand(&backwards).is_err());
}

// ---------------------------------------------------------------------------
// Table 1 row: video transition (fade, plus wipe)
// ---------------------------------------------------------------------------

#[test]
fn fade_dissolves_between_scenes() {
    let e = expander();
    let node = Node::derive(
        Op::Fade { frames: 10 },
        vec![Node::source("red"), Node::source("blue")],
    );
    let out = expand_video(&e, &node);
    assert_eq!(out.len(), 10);
    // First frame ≈ red, last ≈ blue, middle mixed.
    let first = out.frames[0].get_rgb(5, 5);
    let last = out.frames[9].get_rgb(5, 5);
    let mid = out.frames[5].get_rgb(5, 5);
    assert!(first.r > 180 && first.b < 30, "{first:?}");
    assert!(last.b > 180 && last.r < 30, "{last:?}");
    assert!(mid.r > 60 && mid.b > 60, "{mid:?}");
}

#[test]
fn wipe_reveals_directionally() {
    let e = expander();
    let node = Node::derive(
        Op::Wipe {
            frames: 10,
            direction: WipeDirection::LeftToRight,
        },
        vec![Node::source("red"), Node::source("blue")],
    );
    let out = expand_video(&e, &node);
    // Mid-wipe: left half blue, right half red.
    let f = &out.frames[4]; // reveal = 32*5/10 = 16
    let left = f.get_rgb(3, 5);
    let right = f.get_rgb(28, 5);
    assert!(left.b > 180, "{left:?}");
    assert!(right.r > 180, "{right:?}");
}

#[test]
fn transition_needs_long_enough_inputs() {
    let e = expander();
    let node = Node::derive(
        Op::Fade { frames: 50 },
        vec![Node::source("red"), Node::source("blue")],
    );
    assert!(e.expand(&node).is_err());
}

// ---------------------------------------------------------------------------
// Table 1 row: audio normalization
// ---------------------------------------------------------------------------

#[test]
fn normalization_reaches_target_peak() {
    let e = expander();
    let node = Node::derive(
        Op::AudioNormalize {
            target_peak: 16000,
            range: None,
        },
        vec![Node::source("audio1")],
    );
    let out = expand_audio(&e, &node);
    let peak = out.buffer.peak();
    assert!((15800..=16000).contains(&peak), "peak {peak}");
}

#[test]
fn normalization_range_leaves_rest_untouched() {
    let e = expander();
    let node = Node::derive(
        Op::AudioNormalize {
            target_peak: 16000,
            range: Some((0, 1000)),
        },
        vec![Node::source("audio1")],
    );
    let out = expand_audio(&e, &node);
    let original = expand_audio(&e, &Node::source("audio1"));
    // Outside the range: identical samples.
    assert_eq!(
        &out.buffer.samples()[2000..],
        &original.buffer.samples()[2000..]
    );
    // Inside the range: amplified.
    assert!(out.buffer.slice_frames(0, 1000).peak() > original.buffer.slice_frames(0, 1000).peak());
}

// ---------------------------------------------------------------------------
// Table 1 row: color separation
// ---------------------------------------------------------------------------

#[test]
fn color_separation_produces_plates() {
    let e = expander();
    let node = Node::derive(
        Op::ColorSeparate {
            table: SeparationTable::coated_stock(),
        },
        vec![Node::source("image1")],
    );
    let plates = match e.expand(&node).unwrap() {
        MediaValue::Plates(p) => p,
        other => panic!("expected plates, got {}", other.type_name()),
    };
    assert_eq!(plates.c.format(), PixelFormat::Gray8);
    assert_eq!((plates.k.width(), plates.k.height()), (16, 16));
    // (40, 90, 160): cyan-heavy color → C plate > Y plate.
    assert!(plates.c.data()[0] > plates.y.data()[0]);
    // Different tables give different plates (the paper's non-uniqueness).
    let other = Node::derive(
        Op::ColorSeparate {
            table: SeparationTable::newsprint(),
        },
        vec![Node::source("image1")],
    );
    let p2 = match e.expand(&other).unwrap() {
        MediaValue::Plates(p) => p,
        _ => unreachable!(),
    };
    assert_ne!(plates.k.data(), p2.k.data());
}

// ---------------------------------------------------------------------------
// Table 1 row: MIDI synthesis (type change)
// ---------------------------------------------------------------------------

#[test]
fn midi_synthesis_changes_type() {
    let e = expander();
    let node = Node::derive(
        Op::MidiSynthesize {
            sample_rate: 22050,
            tempo_bpm: 0,
            gain_num: 256,
        },
        vec![Node::source("music1")],
    );
    let out = e.expand(&node).unwrap();
    assert_eq!(out.type_name(), "audio");
    if let MediaValue::Audio(a) = out {
        assert_eq!(a.sample_rate, 22050);
        assert!(a.buffer.peak() > 1000);
    }
}

// ---------------------------------------------------------------------------
// Prose examples: chroma key, temporal ops, reverse, transcode, rendering
// ---------------------------------------------------------------------------

#[test]
fn chroma_key_replaces_key_color() {
    let mut e = expander();
    // Foreground: green screen with a red square.
    let mut fg_frame = Frame::filled(32, 24, PixelFormat::Rgb24, Rgb::new(0, 255, 0));
    for y in 8..16 {
        for x in 8..16 {
            fg_frame.set_rgb(x, y, Rgb::new(220, 10, 10));
        }
    }
    e.add_source(
        "fg",
        MediaValue::Video(VideoClip::new(vec![fg_frame; 3], TimeSystem::PAL)),
    );
    let node = Node::derive(
        Op::ChromaKey {
            key_rgb: 0x00FF00,
            tolerance: 40,
        },
        vec![Node::source("fg"), Node::source("blue")],
    );
    let out = expand_video(&e, &node);
    assert_eq!(out.len(), 3);
    let f = &out.frames[0];
    // Green screen replaced by background…
    let bg_px = f.get_rgb(2, 2);
    assert!(bg_px.b > 150 && bg_px.g < 60, "{bg_px:?}");
    // …red square kept.
    let fg_px = f.get_rgb(10, 10);
    assert!(fg_px.r > 180, "{fg_px:?}");
}

#[test]
fn temporal_translate_shifts_music() {
    let e = expander();
    let node = Node::derive(
        Op::TimeTranslate { ticks: 960 },
        vec![Node::source("music1")],
    );
    let out = e.expand(&node).unwrap();
    let MediaValue::Music(m) = out else { panic!() };
    assert_eq!(m.notes[0].1, 960);
    let original = match e.expand(&Node::source("music1")).unwrap() {
        MediaValue::Music(m) => m,
        _ => unreachable!(),
    };
    assert_eq!(m.notes.len(), original.notes.len());
    // Durations unchanged.
    assert_eq!(m.notes[0].2, original.notes[0].2);
}

#[test]
fn temporal_scale_halves_durations() {
    let e = expander();
    let node = Node::derive(
        Op::TimeScale {
            factor: Rational::new(1, 2),
        },
        vec![Node::source("music1")],
    );
    let MediaValue::Music(m) = e.expand(&node).unwrap() else {
        panic!()
    };
    assert_eq!(m.notes[0].2, 200); // 400 / 2
    assert_eq!(m.notes[1].1, 240); // 480 / 2
                                   // Invalid factors rejected.
    let bad = Node::derive(
        Op::TimeScale {
            factor: Rational::ZERO,
        },
        vec![Node::source("music1")],
    );
    assert!(e.expand(&bad).is_err());
}

#[test]
fn reverse_reverses() {
    let e = expander();
    let node = Node::derive(Op::VideoReverse, vec![Node::source("video1")]);
    let out = expand_video(&e, &node);
    let src = expand_video(&e, &Node::source("video1"));
    assert_eq!(out.frames[0], src.frames[29]);
    assert_eq!(out.frames[29], src.frames[0]);
}

#[test]
fn transcode_is_lossy_but_close() {
    let e = expander();
    let node = Node::derive(
        Op::Transcode { quant_percent: 200 },
        vec![Node::source("video1")],
    );
    let out = expand_video(&e, &node);
    let src = expand_video(&e, &Node::source("video1"));
    assert_eq!(out.len(), src.len());
    let reference = src.frames[0].to_format(PixelFormat::Yuv420);
    let mad = reference.mean_abs_diff(&out.frames[0]).unwrap();
    assert!(mad > 0.0 && mad < 12.0, "mad {mad}");
}

#[test]
fn animation_renders_to_video() {
    let e = expander();
    let node = Node::derive(Op::RenderAnimation { fps: 10 }, vec![Node::source("anim1")]);
    let out = expand_video(&e, &node);
    // 20 ticks at 10 Hz = 2 s at 10 fps = 20 frames.
    assert_eq!(out.len(), 20);
    // The sprite moves: early frame green near x=2, late frame green near x=28.
    let early = out.frames[0].get_rgb(2, 12);
    let late = out.frames[19].get_rgb(27, 12);
    assert!(early.g > 150, "{early:?}");
    assert!(late.g > 150, "{late:?}");
}

// ---------------------------------------------------------------------------
// Audio ops
// ---------------------------------------------------------------------------

#[test]
fn audio_cut_concat_mix_gain() {
    let e = expander();
    let cut = Node::derive(
        Op::AudioCut { from: 0, to: 1000 },
        vec![Node::source("audio1")],
    );
    let concat = Node::derive(Op::AudioConcat, vec![cut.clone(), cut.clone()]);
    let out = expand_audio(&e, &concat);
    assert_eq!(out.buffer.frames(), 2000);

    let gained = Node::derive(Op::AudioGain { num: 1, den: 4 }, vec![cut.clone()]);
    let g = expand_audio(&e, &gained);
    let orig = expand_audio(&e, &cut);
    assert!(g.buffer.peak() < orig.buffer.peak() / 3);

    let mixed = Node::derive(Op::AudioMix, vec![cut.clone(), gained]);
    let m = expand_audio(&e, &mixed);
    assert_eq!(m.buffer.frames(), 1000);
    assert!(m.buffer.peak() >= orig.buffer.peak());
}

#[test]
fn resample_halves_and_doubles() {
    let e = expander();
    let down = Node::derive(
        Op::AudioResample { to_rate: 22_050 },
        vec![Node::source("audio1")],
    );
    let out = expand_audio(&e, &down);
    assert_eq!(out.sample_rate, 22_050);
    assert_eq!(out.buffer.frames(), 2205); // 4410 / 2
                                           // The tone frequency is preserved: zero-crossing rate doubles per
                                           // sample, i.e. stays constant per second.
    let original = expand_audio(&e, &Node::source("audio1"));
    let zc = |b: &tbm_media::AudioBuffer| {
        b.samples()
            .windows(2)
            .filter(|w| (w[0] < 0) != (w[1] < 0))
            .count() as f64
    };
    let hz_orig = zc(&original.buffer) / 2.0 / (original.buffer.frames() as f64 / 44_100.0);
    let hz_down = zc(&out.buffer) / 2.0 / (out.buffer.frames() as f64 / 22_050.0);
    assert!((hz_orig - hz_down).abs() < 15.0, "{hz_orig} vs {hz_down}");

    let up = Node::derive(
        Op::AudioResample { to_rate: 88_200 },
        vec![Node::source("audio1")],
    );
    let out = expand_audio(&e, &up);
    assert_eq!(out.buffer.frames(), 8820);
    // Identity resample is exact.
    let same = Node::derive(
        Op::AudioResample { to_rate: 44_100 },
        vec![Node::source("audio1")],
    );
    assert_eq!(expand_audio(&e, &same).buffer, original.buffer);
    // Zero rate rejected.
    let zero = Node::derive(
        Op::AudioResample { to_rate: 0 },
        vec![Node::source("audio1")],
    );
    assert!(e.expand(&zero).is_err());
}

#[test]
fn resample_lazy_metadata_agrees() {
    let e = expander();
    let node = Node::derive(
        Op::AudioResample { to_rate: 8_000 },
        vec![Node::source("audio1")],
    );
    assert_eq!(e.audio_rate(&node).unwrap(), 8_000);
    let full = expand_audio(&e, &node);
    assert_eq!(e.audio_len(&node).unwrap(), full.buffer.frames());
    let window = e.pull_audio(&node, 100, 200).unwrap();
    assert_eq!(
        window.samples(),
        full.buffer.slice_frames(100, 300).samples()
    );
    // Category: the rate attribute changes — a (mild) change of type.
    let Node::Derive { op, .. } = &node else {
        panic!()
    };
    assert_eq!(op.category(), tbm_derive::DeriveCategory::ChangeOfType);
    assert_eq!(op.result_type(), "audio");
}

// ---------------------------------------------------------------------------
// Type errors — "an audio sequence cannot be concatenated to a video
// sequence."
// ---------------------------------------------------------------------------

#[test]
fn cross_type_derivations_rejected() {
    let e = expander();
    let node = Node::derive(
        Op::AudioConcat,
        vec![Node::source("audio1"), Node::source("video1")],
    );
    assert!(e.expand(&node).is_err());
    let node2 = Node::derive(Op::VideoReverse, vec![Node::source("audio1")]);
    assert!(e.expand(&node2).is_err());
    let node3 = Node::derive(
        Op::MidiSynthesize {
            sample_rate: 44100,
            tempo_bpm: 0,
            gain_num: 256,
        },
        vec![Node::source("video1")],
    );
    assert!(e.expand(&node3).is_err());
    // Unknown source.
    assert!(e.expand(&Node::source("ghost")).is_err());
    // Wrong arity.
    let node4 = Node::derive(Op::AudioMix, vec![Node::source("audio1")]);
    assert!(e.expand(&node4).is_err());
}

// ---------------------------------------------------------------------------
// Lazy pull agrees with full expansion
// ---------------------------------------------------------------------------

#[test]
fn lazy_video_pull_matches_expansion() {
    let e = expander();
    let fade = Node::derive(
        Op::Fade { frames: 8 },
        vec![Node::source("video1"), Node::source("video2")],
    );
    let edit = Node::derive(
        Op::VideoEdit {
            cuts: vec![
                EditCut {
                    input: 0,
                    from: 0,
                    to: 10,
                },
                EditCut {
                    input: 1,
                    from: 0,
                    to: 8,
                },
            ],
        },
        vec![Node::source("video1"), fade.clone()],
    );
    for node in [
        fade,
        edit,
        Node::derive(Op::VideoReverse, vec![Node::source("video1")]),
    ] {
        let full = expand_video(&e, &node);
        assert_eq!(e.video_len(&node).unwrap(), full.len());
        for i in [0, 1, full.len() / 2, full.len() - 1] {
            assert_eq!(
                e.pull_frame(&node, i).unwrap(),
                full.frames[i],
                "frame {i} of {node:?}"
            );
        }
        assert!(e.pull_frame(&node, full.len()).is_err());
    }
}

#[test]
fn lazy_audio_pull_matches_expansion() {
    let e = expander();
    let cut = Node::derive(
        Op::AudioCut {
            from: 100,
            to: 2100,
        },
        vec![Node::source("audio1")],
    );
    let concat = Node::derive(Op::AudioConcat, vec![cut.clone(), cut.clone()]);
    let gain = Node::derive(Op::AudioGain { num: 1, den: 2 }, vec![concat.clone()]);
    let norm = Node::derive(
        Op::AudioNormalize {
            target_peak: 12000,
            range: None,
        },
        vec![cut.clone()],
    );
    for node in [cut, concat, gain, norm] {
        let full = expand_audio(&e, &node);
        let len = e.audio_len(&node).unwrap();
        assert_eq!(len, full.buffer.frames());
        // Pull a window straddling interesting boundaries.
        let from = len / 3;
        let take = (len / 2).min(len - from);
        let window = e.pull_audio(&node, from, take).unwrap();
        assert_eq!(
            window.samples(),
            full.buffer.slice_frames(from, from + take).samples(),
            "window of {node:?}"
        );
        assert!(e.pull_audio(&node, len, 1).is_err());
    }
}

#[test]
fn lazy_mix_pads_shorter_input() {
    let e = expander();
    let short = Node::derive(
        Op::AudioCut { from: 0, to: 500 },
        vec![Node::source("audio1")],
    );
    let mixed = Node::derive(Op::AudioMix, vec![Node::source("audio1"), short]);
    let full = expand_audio(&e, &mixed);
    let len = e.audio_len(&mixed).unwrap();
    assert_eq!(len, 4410);
    let window = e.pull_audio(&mixed, 400, 300).unwrap();
    assert_eq!(
        window.samples(),
        full.buffer.slice_frames(400, 700).samples()
    );
}

// ---------------------------------------------------------------------------
// Derived objects are small (Definition 6's storage argument, object level)
// ---------------------------------------------------------------------------

#[test]
fn derivation_object_dwarfed_by_expansion() {
    let e = expander();
    let node = Node::derive(
        Op::VideoEdit {
            cuts: vec![EditCut {
                input: 0,
                from: 0,
                to: 30,
            }],
        },
        vec![Node::source("video1")],
    );
    let spec = node.spec_size() as u64;
    let expanded = e.expand(&node).unwrap().approx_bytes();
    assert!(
        expanded > spec * 100,
        "expanded {expanded} should dwarf spec {spec}"
    );
}
