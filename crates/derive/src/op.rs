//! Derivation operators and their classification.
//!
//! Table 1 of the paper classifies derivations by argument/result types and
//! category. [`Op`] carries each operator's parameters (`P_D` of
//! Definition 6); [`Op::category`], [`Op::argument_types`] and
//! [`Op::result_type`] reproduce the table's columns.

use tbm_media::color::SeparationTable;
use tbm_time::Rational;

/// The paper's derivation categories (§4.2). A derivation "can appear in
/// more than one group"; [`Op::category`] reports the primary one used in
/// Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DeriveCategory {
    /// Changes element content (filters, transitions, separations).
    ChangeOfContent,
    /// Changes element timing (edits, translation, scaling).
    ChangeOfTiming,
    /// Changes the media type (synthesis, rendering, transcoding).
    ChangeOfType,
}

impl DeriveCategory {
    /// The name as printed in Table 1.
    pub fn name(self) -> &'static str {
        match self {
            DeriveCategory::ChangeOfContent => "change of content",
            DeriveCategory::ChangeOfTiming => "change of timing",
            DeriveCategory::ChangeOfType => "change of type",
        }
    }
}

impl std::fmt::Display for DeriveCategory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One selection of a multi-input video edit list: frames `[from, to)` of
/// input `input`.
///
/// "The list of start and stop times of these selections is called an edit
/// list. Edit lists are derivation objects."
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EditCut {
    /// Which input the selection comes from.
    pub input: u8,
    /// First frame (inclusive).
    pub from: u32,
    /// End frame (exclusive).
    pub to: u32,
}

/// Direction of a wipe transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WipeDirection {
    /// The new scene enters from the left.
    LeftToRight,
    /// The new scene enters from the top.
    TopToBottom,
}

/// A derivation operator plus its parameters `P_D`.
#[derive(Debug, Clone, PartialEq)]
pub enum Op {
    // ---- change of timing --------------------------------------------------
    /// Video edit: selections from the inputs, concatenated (Table 1 "video
    /// edit"). Inputs: one or more videos.
    VideoEdit {
        /// The edit list.
        cuts: Vec<EditCut>,
    },
    /// Reverse a video's frame order (possible because intraframe elements
    /// decode independently — paper §2.1 on JPEG video).
    VideoReverse,
    /// Uniformly shift the start times of a music/animation object
    /// ("temporally translating a sequence … can be performed on … any
    /// time-based value").
    TimeTranslate {
        /// Tick shift (may be negative).
        ticks: i64,
    },
    /// Uniformly scale starts and durations of a music/animation object.
    TimeScale {
        /// Positive scale factor.
        factor: Rational,
    },
    /// Audio cut: sample-frames `[from, to)` of one audio input.
    AudioCut {
        /// First sample-frame (inclusive).
        from: u32,
        /// End sample-frame (exclusive).
        to: u32,
    },
    /// Concatenate two audio inputs.
    AudioConcat,

    // ---- change of content -------------------------------------------------
    /// Cross-fade transition between two videos (Table 1 "video
    /// transition"): the first input's tail dissolves into the second's
    /// head over `frames` frames.
    Fade {
        /// Transition length in frames.
        frames: u32,
    },
    /// Wipe transition: the second input is revealed progressively.
    Wipe {
        /// Transition length in frames.
        frames: u32,
        /// Reveal direction.
        direction: WipeDirection,
    },
    /// Chroma key: pixels of the first video near `key_rgb` are replaced by
    /// the second video ("the content of the first video sequence is
    /// partially replaced with that of the second").
    ChromaKey {
        /// Key color, packed 0xRRGGBB.
        key_rgb: u32,
        /// Per-channel tolerance.
        tolerance: u8,
    },
    /// Audio normalization (Table 1): scale so the peak reaches
    /// `target_peak` (0 < target_peak ≤ 32767), over the optional
    /// sample-frame range — "if no parameters are specified, normalization
    /// is performed for the whole audio object."
    AudioNormalize {
        /// Desired peak amplitude.
        target_peak: i16,
        /// Optional `[from, to)` range; `None` = whole object.
        range: Option<(u32, u32)>,
    },
    /// Constant gain `num/den` on an audio input.
    AudioGain {
        /// Gain numerator.
        num: i32,
        /// Gain denominator (> 0).
        den: i32,
    },
    /// Mix two audio inputs sample-by-sample (music + narration).
    AudioMix,
    /// Resample audio to a new rate (linear interpolation) — the "less
    /// radical change of type" family: the media type's rate attribute
    /// changes while the kind stays audio.
    AudioResample {
        /// Target sample rate in hertz (> 0).
        to_rate: u32,
    },
    /// RGB → CMYK color separation of an image (Table 1), parameterized by
    /// a separation table.
    ColorSeparate {
        /// Ink/paper parameters.
        table: SeparationTable,
    },

    // ---- change of type ----------------------------------------------------
    /// MIDI/music → audio synthesis (Table 1): "parameters are tempo, MIDI
    /// channel mappings and instrument parameters."
    MidiSynthesize {
        /// Output sample rate.
        sample_rate: u32,
        /// Overrides the clip tempo when nonzero.
        tempo_bpm: u32,
        /// Master gain numerator over 256.
        gain_num: u16,
    },
    /// Animation → video rendering ("video sequences are derived (via
    /// rendering) from representations of animation").
    RenderAnimation {
        /// Output frames per second.
        fps: u32,
    },
    /// Video → video re-encode at a different quality (a "less radical
    /// change of type … changing compression parameters").
    Transcode {
        /// Target quantizer percentage.
        quant_percent: u16,
    },
}

impl Op {
    /// The operator's name (Table 1 row label where applicable).
    pub fn name(&self) -> &'static str {
        match self {
            Op::VideoEdit { .. } => "video edit",
            Op::VideoReverse => "video reverse",
            Op::TimeTranslate { .. } => "temporal translation",
            Op::TimeScale { .. } => "temporal scaling",
            Op::AudioCut { .. } => "audio cut",
            Op::AudioConcat => "audio concatenation",
            Op::Fade { .. } => "video transition (fade)",
            Op::Wipe { .. } => "video transition (wipe)",
            Op::ChromaKey { .. } => "chroma key",
            Op::AudioNormalize { .. } => "audio normalization",
            Op::AudioGain { .. } => "audio gain",
            Op::AudioMix => "audio mix",
            Op::AudioResample { .. } => "audio resampling",
            Op::ColorSeparate { .. } => "color separation",
            Op::MidiSynthesize { .. } => "MIDI synthesis",
            Op::RenderAnimation { .. } => "animation rendering",
            Op::Transcode { .. } => "transcoding",
        }
    }

    /// The primary category (Table 1's "Category" column).
    pub fn category(&self) -> DeriveCategory {
        match self {
            Op::VideoEdit { .. }
            | Op::VideoReverse
            | Op::TimeTranslate { .. }
            | Op::TimeScale { .. }
            | Op::AudioCut { .. }
            | Op::AudioConcat => DeriveCategory::ChangeOfTiming,
            Op::Fade { .. }
            | Op::Wipe { .. }
            | Op::ChromaKey { .. }
            | Op::AudioNormalize { .. }
            | Op::AudioGain { .. }
            | Op::AudioMix
            | Op::ColorSeparate { .. } => DeriveCategory::ChangeOfContent,
            Op::MidiSynthesize { .. }
            | Op::RenderAnimation { .. }
            | Op::Transcode { .. }
            | Op::AudioResample { .. } => DeriveCategory::ChangeOfType,
        }
    }

    /// Argument media-type names (Table 1's "Argument Type(s)" column).
    pub fn argument_types(&self) -> Vec<&'static str> {
        match self {
            Op::VideoEdit { cuts } => {
                let inputs = cuts.iter().map(|c| c.input).max().map_or(1, |m| m + 1);
                vec!["video"; inputs as usize]
            }
            Op::VideoReverse | Op::Transcode { .. } => vec!["video"],
            Op::TimeTranslate { .. } | Op::TimeScale { .. } => vec!["music | animation"],
            Op::AudioCut { .. }
            | Op::AudioNormalize { .. }
            | Op::AudioGain { .. }
            | Op::AudioResample { .. } => vec!["audio"],
            Op::AudioConcat | Op::AudioMix => vec!["audio", "audio"],
            Op::Fade { .. } | Op::Wipe { .. } | Op::ChromaKey { .. } => vec!["video", "video"],
            Op::ColorSeparate { .. } => vec!["image"],
            Op::MidiSynthesize { .. } => vec!["music (MIDI)"],
            Op::RenderAnimation { .. } => vec!["animation"],
        }
    }

    /// Result media-type name (Table 1's "Result Type" column).
    pub fn result_type(&self) -> &'static str {
        match self {
            Op::VideoEdit { .. }
            | Op::VideoReverse
            | Op::Fade { .. }
            | Op::Wipe { .. }
            | Op::ChromaKey { .. }
            | Op::Transcode { .. }
            | Op::RenderAnimation { .. } => "video",
            Op::TimeTranslate { .. } | Op::TimeScale { .. } => "music | animation",
            Op::AudioCut { .. }
            | Op::AudioConcat
            | Op::AudioNormalize { .. }
            | Op::AudioGain { .. }
            | Op::AudioMix
            | Op::AudioResample { .. }
            | Op::MidiSynthesize { .. } => "audio",
            Op::ColorSeparate { .. } => "image (CMYK plates)",
        }
    }

    /// Number of media-object inputs the operator consumes.
    pub fn arity(&self) -> usize {
        self.argument_types().len()
    }
}

impl std::fmt::Display for Op {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The five rows of Table 1, exactly as printed.
    #[test]
    fn table_1_rows() {
        let rows: Vec<(Op, &str, &str, &str)> = vec![
            (
                Op::ColorSeparate {
                    table: SeparationTable::coated_stock(),
                },
                "image",
                "image (CMYK plates)",
                "change of content",
            ),
            (
                Op::AudioNormalize {
                    target_peak: 30000,
                    range: None,
                },
                "audio",
                "audio",
                "change of content",
            ),
            (
                Op::VideoEdit {
                    cuts: vec![EditCut {
                        input: 0,
                        from: 0,
                        to: 10,
                    }],
                },
                "video",
                "video",
                "change of timing",
            ),
            (
                Op::Fade { frames: 10 },
                "video",
                "video",
                "change of content",
            ),
            (
                Op::MidiSynthesize {
                    sample_rate: 44100,
                    tempo_bpm: 0,
                    gain_num: 256,
                },
                "music (MIDI)",
                "audio",
                "change of type",
            ),
        ];
        for (op, arg0, result, category) in rows {
            assert_eq!(op.argument_types()[0], arg0, "{op}");
            assert_eq!(op.result_type(), result, "{op}");
            assert_eq!(op.category().name(), category, "{op}");
        }
    }

    #[test]
    fn arities() {
        assert_eq!(Op::AudioMix.arity(), 2);
        assert_eq!(Op::Fade { frames: 5 }.arity(), 2);
        assert_eq!(Op::VideoReverse.arity(), 1);
        // A two-input edit list.
        let edit = Op::VideoEdit {
            cuts: vec![
                EditCut {
                    input: 0,
                    from: 0,
                    to: 5,
                },
                EditCut {
                    input: 1,
                    from: 2,
                    to: 9,
                },
            ],
        };
        assert_eq!(edit.arity(), 2);
    }

    #[test]
    fn timing_ops_are_generic() {
        // "Derivations involving changes in timing are generic … apply to
        // all time-based media."
        assert_eq!(
            Op::TimeTranslate { ticks: 5 }.category(),
            DeriveCategory::ChangeOfTiming
        );
        assert_eq!(
            Op::TimeScale {
                factor: Rational::new(1, 2)
            }
            .category(),
            DeriveCategory::ChangeOfTiming
        );
    }

    #[test]
    fn display_names() {
        assert_eq!(Op::AudioMix.to_string(), "audio mix");
        assert_eq!(DeriveCategory::ChangeOfType.to_string(), "change of type");
    }
}
