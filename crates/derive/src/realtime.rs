//! Real-time feasibility of derivation expansion.
//!
//! The paper ties the storage decision to expansion speed:
//!
//! > *"The decision of whether to store a derived object or to expand and
//! > instead store a non-derived object often hinges upon resource
//! > availability: if expansion can be done in real time then the derived
//! > object is all that needs be stored."* and: media elements "need only be
//! > stored if the calculation cannot be performed in real time (as when the
//! > time to calculate elements in a constant frequency stream is greater
//! > than their period)."
//!
//! [`assess_video`]/[`assess_audio`] measure per-element lazy expansion cost
//! against the element period and report the materialization decision.

use crate::{DeriveError, Expander, Node};
use std::time::{Duration, Instant};
use tbm_time::TimeSystem;

/// The outcome of a feasibility measurement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RealTimeReport {
    /// Mean wall-clock cost of producing one element.
    pub per_element: Duration,
    /// The element period demanded by the time system.
    pub period: Duration,
    /// Elements measured.
    pub sampled: usize,
    /// `per_element <= period`: the derived object can stay implicit.
    pub feasible: bool,
}

impl RealTimeReport {
    /// The paper's storage decision: keep the derivation object, or expand
    /// and store the non-derived object.
    pub fn decision(&self) -> &'static str {
        if self.feasible {
            "store derivation object (expand on demand)"
        } else {
            "materialize: store expanded media object"
        }
    }

    /// Headroom factor: period / per_element (> 1 means feasible with slack).
    pub fn headroom(&self) -> f64 {
        let p = self.per_element.as_secs_f64();
        if p == 0.0 {
            return f64::INFINITY;
        }
        self.period.as_secs_f64() / p
    }
}

fn duration_of_period(system: TimeSystem) -> Duration {
    Duration::from_secs_f64(system.period().seconds().to_f64())
}

/// Measures lazy per-frame expansion of a video-valued node against the
/// frame period of `system`, sampling up to `max_samples` evenly spaced
/// frames.
pub fn assess_video(
    expander: &Expander,
    node: &Node,
    system: TimeSystem,
    max_samples: usize,
) -> Result<RealTimeReport, DeriveError> {
    let len = expander.video_len(node)?;
    let samples = len.min(max_samples.max(1));
    if samples == 0 {
        return Ok(RealTimeReport {
            per_element: Duration::ZERO,
            period: duration_of_period(system),
            sampled: 0,
            feasible: true,
        });
    }
    let step = (len / samples).max(1);
    let start = Instant::now();
    let mut produced = 0usize;
    let mut idx = 0usize;
    while idx < len && produced < samples {
        let _ = expander.pull_frame(node, idx)?;
        produced += 1;
        idx += step;
    }
    let per_element = start.elapsed() / produced.max(1) as u32;
    let period = duration_of_period(system);
    Ok(RealTimeReport {
        per_element,
        period,
        sampled: produced,
        feasible: per_element <= period,
    })
}

/// Measures lazy expansion of an audio-valued node in blocks of
/// `block_frames` sample-frames against the block period at `sample_rate`.
pub fn assess_audio(
    expander: &Expander,
    node: &Node,
    sample_rate: u32,
    block_frames: usize,
    max_blocks: usize,
) -> Result<RealTimeReport, DeriveError> {
    let len = expander.audio_len(node)?;
    let block = block_frames.max(1);
    let blocks = (len / block).min(max_blocks.max(1));
    let period = Duration::from_secs_f64(block as f64 / sample_rate.max(1) as f64);
    if blocks == 0 {
        return Ok(RealTimeReport {
            per_element: Duration::ZERO,
            period,
            sampled: 0,
            feasible: true,
        });
    }
    let start = Instant::now();
    for i in 0..blocks {
        let _ = expander.pull_audio(node, i * block, block)?;
    }
    let per_element = start.elapsed() / blocks as u32;
    Ok(RealTimeReport {
        per_element,
        period,
        sampled: blocks,
        feasible: per_element <= period,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::{AudioClip, MediaValue, VideoClip};
    use crate::{EditCut, Op};
    use tbm_media::gen::{AudioSignal, VideoPattern};

    fn expander() -> Expander {
        let mut e = Expander::new();
        let frames = (0..20u64)
            .map(|i| VideoPattern::MovingBar.render(i, 32, 24))
            .collect();
        e.add_source(
            "v",
            MediaValue::Video(VideoClip::new(frames, TimeSystem::PAL)),
        );
        let audio = AudioSignal::Sine {
            hz: 440.0,
            amplitude: 9000,
        }
        .generate(0, 44100, 44100, 1);
        e.add_source("a", MediaValue::Audio(AudioClip::new(audio, 44100)));
        e
    }

    #[test]
    fn cheap_video_edit_is_feasible() {
        let e = expander();
        let node = Node::derive(
            Op::VideoEdit {
                cuts: vec![EditCut {
                    input: 0,
                    from: 2,
                    to: 18,
                }],
            },
            vec![Node::source("v")],
        );
        let report = assess_video(&e, &node, TimeSystem::PAL, 8).unwrap();
        assert!(report.sampled > 0);
        // Cloning a tiny frame takes far less than 40 ms.
        assert!(report.feasible, "{report:?}");
        assert!(report.headroom() > 1.0);
        assert_eq!(
            report.decision(),
            "store derivation object (expand on demand)"
        );
    }

    #[test]
    fn infeasible_when_period_is_tiny() {
        let e = expander();
        let node = Node::derive(
            Op::Transcode { quant_percent: 100 },
            vec![Node::source("v")],
        );
        // Demand 10 MHz frame rate: transcoding cannot keep up.
        let absurd = TimeSystem::from_hz(10_000_000);
        let report = assess_video(&e, &node, absurd, 4).unwrap();
        assert!(!report.feasible, "{report:?}");
        assert_eq!(
            report.decision(),
            "materialize: store expanded media object"
        );
    }

    #[test]
    fn audio_assessment_runs() {
        let e = expander();
        let node = Node::derive(Op::AudioGain { num: 1, den: 2 }, vec![Node::source("a")]);
        let report = assess_audio(&e, &node, 44100, 1024, 8).unwrap();
        assert_eq!(report.sampled, 8);
        assert!(report.feasible, "{report:?}");
    }

    #[test]
    fn empty_input_is_trivially_feasible() {
        let mut e = Expander::new();
        e.add_source(
            "empty",
            MediaValue::Video(VideoClip::new(vec![], TimeSystem::PAL)),
        );
        let report = assess_video(&e, &Node::source("empty"), TimeSystem::PAL, 8).unwrap();
        assert_eq!(report.sampled, 0);
        assert!(report.feasible);
    }
}
