//! Runtime media values flowing through derivations.

use tbm_media::animation::MoveSpec;
use tbm_media::midi::Note;
use tbm_media::{AudioBuffer, Frame};
use tbm_time::TimeSystem;

/// A materialized video object: frames in display order over a frame clock.
#[derive(Debug, Clone, PartialEq)]
pub struct VideoClip {
    /// Frames in display order (constant-frequency: one per tick).
    pub frames: Vec<Frame>,
    /// The frame clock (e.g. `D_25`).
    pub system: TimeSystem,
}

impl VideoClip {
    /// Creates a clip.
    pub fn new(frames: Vec<Frame>, system: TimeSystem) -> VideoClip {
        VideoClip { frames, system }
    }

    /// Number of frames.
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// `true` when the clip has no frames.
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// Frame geometry `(width, height)`, if non-empty.
    pub fn geometry(&self) -> Option<(u32, u32)> {
        self.frames.first().map(|f| (f.width(), f.height()))
    }
}

/// A materialized audio object: one buffer at a sample rate.
#[derive(Debug, Clone, PartialEq)]
pub struct AudioClip {
    /// The interleaved PCM content.
    pub buffer: AudioBuffer,
    /// Sample rate in hertz.
    pub sample_rate: u32,
}

impl AudioClip {
    /// Creates a clip.
    pub fn new(buffer: AudioBuffer, sample_rate: u32) -> AudioClip {
        AudioClip {
            buffer,
            sample_rate,
        }
    }

    /// Duration in seconds (lossy, for reporting).
    pub fn seconds(&self) -> f64 {
        self.buffer.frames() as f64 / self.sample_rate as f64
    }
}

/// CMYK separation plates: four grayscale frames, one per ink.
#[derive(Debug, Clone, PartialEq)]
pub struct ColorPlates {
    /// Cyan plate (Gray8).
    pub c: Frame,
    /// Magenta plate (Gray8).
    pub m: Frame,
    /// Yellow plate (Gray8).
    pub y: Frame,
    /// Black plate (Gray8).
    pub k: Frame,
}

/// A symbolic music object: timed notes over a tick clock.
///
/// Notes are `(note, start, duration)` with starts ordered; chords overlap,
/// rests leave gaps (the paper's non-continuous example).
#[derive(Debug, Clone, PartialEq)]
pub struct MusicClip {
    /// The notes, ordered by start tick.
    pub notes: Vec<(Note, i64, i64)>,
    /// Ticks per quarter note.
    pub ppq: u32,
    /// Tempo in beats (quarters) per minute.
    pub tempo_bpm: u32,
}

impl MusicClip {
    /// Creates a clip, sorting notes by start.
    pub fn new(mut notes: Vec<(Note, i64, i64)>, ppq: u32, tempo_bpm: u32) -> MusicClip {
        notes.sort_by_key(|&(_, s, _)| s);
        MusicClip {
            notes,
            ppq,
            tempo_bpm,
        }
    }

    /// The tick span `[first_start, max_end)`, if non-empty.
    pub fn tick_span(&self) -> Option<(i64, i64)> {
        let first = self.notes.first()?.1;
        let end = self.notes.iter().map(|&(_, s, d)| s + d).max()?;
        Some((first, end))
    }

    /// Seconds per tick at the clip's tempo.
    pub fn seconds_per_tick(&self) -> f64 {
        60.0 / (self.tempo_bpm.max(1) as f64 * self.ppq.max(1) as f64)
    }
}

/// A symbolic animation object: movement specs over a tick clock, plus the
/// scene geometry used when rendering.
#[derive(Debug, Clone, PartialEq)]
pub struct AnimClip {
    /// Movement elements `(spec, start, duration)`, ordered by start.
    pub moves: Vec<(MoveSpec, i64, i64)>,
    /// The tick clock of the starts/durations.
    pub system: TimeSystem,
    /// Scene width in pixels.
    pub width: u32,
    /// Scene height in pixels.
    pub height: u32,
    /// Background color, packed 0xRRGGBB.
    pub background: u32,
}

impl AnimClip {
    /// Creates a clip, sorting moves by start.
    pub fn new(
        mut moves: Vec<(MoveSpec, i64, i64)>,
        system: TimeSystem,
        width: u32,
        height: u32,
        background: u32,
    ) -> AnimClip {
        moves.sort_by_key(|&(_, s, _)| s);
        AnimClip {
            moves,
            system,
            width,
            height,
            background,
        }
    }

    /// The tick span `[first_start, max_end)`, if non-empty.
    pub fn tick_span(&self) -> Option<(i64, i64)> {
        let first = self.moves.first()?.1;
        let end = self.moves.iter().map(|&(_, s, d)| s + d).max()?;
        Some((first, end))
    }
}

/// Any media value a derivation can consume or produce.
#[derive(Debug, Clone, PartialEq)]
pub enum MediaValue {
    /// Video frames.
    Video(VideoClip),
    /// PCM audio.
    Audio(AudioClip),
    /// A still image.
    Image(Frame),
    /// CMYK separation plates (the result of color separation).
    Plates(ColorPlates),
    /// Symbolic music.
    Music(MusicClip),
    /// Symbolic animation.
    Animation(AnimClip),
}

impl MediaValue {
    /// The value's media-type name, for diagnostics and type checks.
    pub fn type_name(&self) -> &'static str {
        match self {
            MediaValue::Video(_) => "video",
            MediaValue::Audio(_) => "audio",
            MediaValue::Image(_) => "image",
            MediaValue::Plates(_) => "CMYK plates",
            MediaValue::Music(_) => "music",
            MediaValue::Animation(_) => "animation",
        }
    }

    /// Approximate in-memory size in bytes — the "derived objects …
    /// relatively small" comparison of §4.2 uses this against the
    /// derivation-object size.
    pub fn approx_bytes(&self) -> u64 {
        match self {
            MediaValue::Video(v) => v.frames.iter().map(|f| f.data().len() as u64).sum(),
            MediaValue::Audio(a) => (a.buffer.samples().len() * 2) as u64,
            MediaValue::Image(f) => f.data().len() as u64,
            MediaValue::Plates(p) => [&p.c, &p.m, &p.y, &p.k]
                .iter()
                .map(|f| f.data().len() as u64)
                .sum(),
            MediaValue::Music(m) => (m.notes.len() * 19) as u64,
            MediaValue::Animation(a) => (a.moves.len() * 44) as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tbm_media::PixelFormat;

    #[test]
    fn clip_geometry_and_len() {
        let c = VideoClip::new(
            vec![Frame::black(8, 6, PixelFormat::Rgb24); 3],
            TimeSystem::PAL,
        );
        assert_eq!(c.len(), 3);
        assert_eq!(c.geometry(), Some((8, 6)));
        assert!(!c.is_empty());
        assert!(VideoClip::new(vec![], TimeSystem::PAL).geometry().is_none());
    }

    #[test]
    fn audio_seconds() {
        let a = AudioClip::new(AudioBuffer::silence(2, 44100), 44100);
        assert!((a.seconds() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn music_span_and_tempo() {
        let m = MusicClip::new(
            vec![
                (Note::new(0, 64, 96), 480, 480),
                (Note::new(0, 60, 96), 0, 480),
            ],
            480,
            120,
        );
        // Sorted on construction.
        assert_eq!(m.notes[0].1, 0);
        assert_eq!(m.tick_span(), Some((0, 960)));
        // 120 bpm at 480 ppq: 1/960 s per tick.
        assert!((m.seconds_per_tick() - 1.0 / 960.0).abs() < 1e-12);
    }

    #[test]
    fn type_names_and_sizes() {
        let img = MediaValue::Image(Frame::black(4, 4, PixelFormat::Gray8));
        assert_eq!(img.type_name(), "image");
        assert_eq!(img.approx_bytes(), 16);
        let audio = MediaValue::Audio(AudioClip::new(AudioBuffer::silence(1, 8), 8000));
        assert_eq!(audio.approx_bytes(), 16);
    }
}
