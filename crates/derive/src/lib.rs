//! # tbm-derive — derivation of media objects
//!
//! Implements the paper's Definition 6:
//!
//! > *"The derivation (D) of a media object o₁ from a set of media objects O
//! > is a mapping of the form D(O, P_D) → o₁, where P_D is the set of
//! > parameters specific to D. … The information needed to compute a derived
//! > object — references to the media objects and parameter values used — is
//! > called a derivation object."*
//!
//! A [`Node`] is a derivation object (an [`Op`] plus input nodes); leaves
//! are named non-derived media objects. Derivations are grouped into the
//! paper's categories ([`DeriveCategory`]): content-changing,
//! timing-changing and type-changing, and every example from Table 1 is
//! implemented: color separation, audio normalization, video edit (edit
//! lists), video transitions (fade/wipe), and MIDI synthesis — plus chroma
//! keying, temporal translation/scaling, animation rendering and transcoding
//! from the surrounding prose.
//!
//! Two evaluation strategies mirror the paper's storage-vs-expansion
//! trade-off:
//!
//! * [`Expander::expand`] — full materialization ("expand derived objects to
//!   produce actual objects").
//! * [`Expander::pull_frame`] / [`Expander::pull_audio`] — lazy, per-element
//!   expansion ("media elements need only be stored if the calculation
//!   cannot be performed in real time").
//!
//! [`realtime`] measures per-element expansion cost against the element
//! period, automating the paper's materialization decision.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod animrender;
mod error;
mod expand;
mod node;
mod op;
pub mod realtime;
pub mod synthesis;
mod value;

pub use error::DeriveError;
pub use expand::Expander;
pub use node::Node;
pub use op::{DeriveCategory, EditCut, Op, WipeDirection};
pub use value::{AnimClip, AudioClip, ColorPlates, MediaValue, MusicClip, VideoClip};
