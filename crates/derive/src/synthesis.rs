//! MIDI/music → audio synthesis.
//!
//! The paper's type-changing derivation: "the synthesis of an audio object
//! from a MIDI object … Parameters are tempo, MIDI channel mappings and
//! instrument parameters. (These essentially identify, for example, whether
//! a given note is played on a piano, a violin or some other instrument.)"
//!
//! The synthesizer is a small but real additive design: each note renders a
//! band-limited-ish waveform chosen by its channel's program (sine, square,
//! sawtooth or triangle), shaped by an ADSR envelope, scaled by velocity,
//! and mixed with saturation.

use crate::value::{AudioClip, MusicClip};
use tbm_media::AudioBuffer;

/// The waveform families selectable by program number (program mod 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Waveform {
    /// Pure sine.
    Sine,
    /// Square wave (odd harmonics).
    Square,
    /// Sawtooth.
    Saw,
    /// Triangle.
    Triangle,
}

impl Waveform {
    /// Maps a MIDI program number to a waveform family.
    pub fn from_program(program: u8) -> Waveform {
        match program % 4 {
            0 => Waveform::Sine,
            1 => Waveform::Square,
            2 => Waveform::Saw,
            _ => Waveform::Triangle,
        }
    }

    /// Sample at phase ∈ [0, 1), amplitude ±1.
    fn sample(self, phase: f64) -> f64 {
        match self {
            Waveform::Sine => (2.0 * std::f64::consts::PI * phase).sin(),
            Waveform::Square => {
                if phase < 0.5 {
                    1.0
                } else {
                    -1.0
                }
            }
            Waveform::Saw => 2.0 * phase - 1.0,
            Waveform::Triangle => {
                if phase < 0.5 {
                    4.0 * phase - 1.0
                } else {
                    3.0 - 4.0 * phase
                }
            }
        }
    }
}

/// Synthesis parameters (the derivation's `P_D`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SynthParams {
    /// Output sample rate in hertz.
    pub sample_rate: u32,
    /// Tempo override in bpm; 0 keeps the clip's tempo.
    pub tempo_bpm: u32,
    /// Master gain, numerator over 256.
    pub gain_num: u16,
    /// Channel → program mapping ("MIDI channel mappings"): program for
    /// each of the 16 channels.
    pub programs: [u8; 16],
}

impl Default for SynthParams {
    fn default() -> SynthParams {
        SynthParams {
            sample_rate: 44_100,
            tempo_bpm: 0,
            gain_num: 256,
            programs: [0; 16],
        }
    }
}

/// ADSR envelope value at `t` seconds into a note lasting `dur` seconds.
fn adsr(t: f64, dur: f64) -> f64 {
    const ATTACK: f64 = 0.01;
    const DECAY: f64 = 0.05;
    const SUSTAIN: f64 = 0.75;
    const RELEASE: f64 = 0.05;
    if t < 0.0 || t >= dur + RELEASE {
        return 0.0;
    }
    if t < ATTACK {
        return t / ATTACK;
    }
    if t < ATTACK + DECAY {
        let k = (t - ATTACK) / DECAY;
        return 1.0 - k * (1.0 - SUSTAIN);
    }
    if t < dur {
        return SUSTAIN;
    }
    // Release tail.
    SUSTAIN * (1.0 - (t - dur) / RELEASE)
}

/// Renders a music clip to PCM audio.
pub fn synthesize(clip: &MusicClip, params: &SynthParams) -> AudioClip {
    let rate = params.sample_rate.max(1);
    let tempo = if params.tempo_bpm > 0 {
        params.tempo_bpm
    } else {
        clip.tempo_bpm.max(1)
    };
    let spt = 60.0 / (tempo as f64 * clip.ppq.max(1) as f64); // seconds per tick
    let (first, last) = match clip.tick_span() {
        Some(s) => s,
        None => return AudioClip::new(AudioBuffer::silence(1, 0), rate),
    };
    const RELEASE: f64 = 0.05;
    let total_secs = (last - first) as f64 * spt + RELEASE;
    let total_frames = (total_secs * rate as f64).ceil() as usize;
    let mut acc = vec![0f64; total_frames];
    let gain = params.gain_num as f64 / 256.0;

    for &(note, start, dur) in &clip.notes {
        let wave = Waveform::from_program(params.programs[(note.channel & 0x0f) as usize]);
        let f = note.frequency_hz();
        let amp = gain * (note.velocity.min(127) as f64 / 127.0) * 8000.0;
        let note_start = (start - first) as f64 * spt;
        let note_dur = dur as f64 * spt;
        let s0 = (note_start * rate as f64) as usize;
        let s1 = (((note_start + note_dur + RELEASE) * rate as f64) as usize).min(total_frames);
        for (i, a) in acc.iter_mut().enumerate().take(s1).skip(s0) {
            let t = i as f64 / rate as f64 - note_start;
            let env = adsr(t, note_dur);
            if env > 0.0 {
                let phase = (f * (i as f64 / rate as f64)).fract();
                *a += amp * env * wave.sample(phase);
            }
        }
    }
    let samples: Vec<i16> = acc
        .into_iter()
        .map(|v| v.clamp(i16::MIN as f64, i16::MAX as f64) as i16)
        .collect();
    AudioClip::new(
        AudioBuffer::from_samples(1, samples).expect("mono always aligns"),
        rate,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use tbm_media::gen::{chord_progression, major_scale};
    use tbm_media::midi::Note;

    fn one_note(key: u8) -> MusicClip {
        MusicClip::new(vec![(Note::new(0, key, 100), 0, 480)], 480, 120)
    }

    #[test]
    fn produces_audio_of_expected_length() {
        // 480 ticks at 480 ppq, 120 bpm = one quarter at 0.5 s.
        let clip = one_note(69);
        let audio = synthesize(&clip, &SynthParams::default());
        let secs = audio.seconds();
        assert!((secs - 0.55).abs() < 0.01, "got {secs}"); // + release tail
        assert!(audio.buffer.peak() > 1000, "should be audible");
    }

    #[test]
    fn a440_has_correct_frequency() {
        let clip = one_note(69); // A4
        let audio = synthesize(&clip, &SynthParams::default());
        // Count zero crossings over the sustained midsection.
        let s = audio.buffer.samples();
        let mid = &s[4410..17640]; // 0.1 s .. 0.4 s
        let crossings = mid.windows(2).filter(|w| (w[0] < 0) != (w[1] < 0)).count();
        let est_hz = crossings as f64 / 2.0 / (mid.len() as f64 / 44100.0);
        assert!((est_hz - 440.0).abs() < 5.0, "estimated {est_hz:.1} Hz");
    }

    #[test]
    fn tempo_scales_duration() {
        let clip = one_note(60);
        let slow = synthesize(
            &clip,
            &SynthParams {
                tempo_bpm: 60,
                ..SynthParams::default()
            },
        );
        let fast = synthesize(
            &clip,
            &SynthParams {
                tempo_bpm: 240,
                ..SynthParams::default()
            },
        );
        assert!(slow.seconds() > fast.seconds() * 2.0);
    }

    #[test]
    fn programs_change_timbre() {
        let clip = one_note(60);
        let mut square = SynthParams::default();
        square.programs[0] = 1;
        let a = synthesize(&clip, &SynthParams::default());
        let b = synthesize(&clip, &square);
        assert_ne!(a.buffer, b.buffer);
        // Square has higher RMS than sine at the same amplitude.
        assert!(b.buffer.rms() > a.buffer.rms());
    }

    #[test]
    fn chords_mix_without_clipping_artifacts() {
        let clip = MusicClip::new(chord_progression(0, 60, 960), 480, 120);
        let audio = synthesize(
            &clip,
            &SynthParams {
                gain_num: 128,
                ..SynthParams::default()
            },
        );
        assert!(audio.buffer.peak() < i16::MAX);
        assert!(audio.buffer.peak() > 2000);
    }

    #[test]
    fn scale_renders_every_note() {
        let clip = MusicClip::new(major_scale(0, 60, 1, 480, 400), 480, 120);
        let audio = synthesize(&clip, &SynthParams::default());
        // Eight notes × 0.5 s steps: at least ~3.5s of audio.
        assert!(audio.seconds() > 3.4);
        // Sound present near the last note.
        let s = audio.buffer.samples();
        let tail = &s[s.len() - 11025..];
        assert!(tail.iter().any(|&v| v.unsigned_abs() > 500));
    }

    #[test]
    fn empty_music_is_empty_audio() {
        let clip = MusicClip::new(vec![], 480, 120);
        let audio = synthesize(&clip, &SynthParams::default());
        assert_eq!(audio.buffer.frames(), 0);
    }

    #[test]
    fn waveform_shapes() {
        assert_eq!(Waveform::from_program(0), Waveform::Sine);
        assert_eq!(Waveform::from_program(5), Waveform::Square);
        assert!((Waveform::Square.sample(0.25) - 1.0).abs() < 1e-12);
        assert!((Waveform::Square.sample(0.75) + 1.0).abs() < 1e-12);
        assert!((Waveform::Saw.sample(0.5)).abs() < 1e-12);
        assert!((Waveform::Triangle.sample(0.5) - 1.0).abs() < 1e-12);
    }
}
