//! Derivation objects as expression trees, with compact serialization.
//!
//! A [`Node`] is either a reference to a non-derived media object (by name)
//! or a derivation object: an [`Op`] applied to input nodes. Serialization
//! ([`Node::to_bytes`]/[`Node::from_bytes`]) is what the database layer
//! stores; its size is what the paper compares against materialized media:
//! "derived media objects and their associated derivation objects are
//! relatively small (for example, a video edit list is likely many orders
//! of magnitude smaller than a video object)."

use crate::{DeriveError, EditCut, Op, WipeDirection};
use tbm_media::color::SeparationTable;
use tbm_time::Rational;

/// A derivation expression: a source leaf or a derivation object.
#[derive(Debug, Clone, PartialEq)]
pub enum Node {
    /// A named non-derived media object (resolved by the expander).
    Source(String),
    /// A derivation object: operator + parameters + input references.
    Derive {
        /// The operator and its parameters `P_D`.
        op: Op,
        /// Input expressions, in operator argument order.
        inputs: Vec<Node>,
    },
}

impl Node {
    /// A source leaf.
    pub fn source(name: &str) -> Node {
        Node::Source(name.to_owned())
    }

    /// A derivation node.
    pub fn derive(op: Op, inputs: Vec<Node>) -> Node {
        Node::Derive { op, inputs }
    }

    /// Number of derivation objects (non-leaf nodes) in the tree.
    pub fn derivation_count(&self) -> usize {
        match self {
            Node::Source(_) => 0,
            Node::Derive { inputs, .. } => {
                1 + inputs.iter().map(Node::derivation_count).sum::<usize>()
            }
        }
    }

    /// All source names referenced, in first-appearance order.
    pub fn sources(&self) -> Vec<&str> {
        let mut out = Vec::new();
        self.collect_sources(&mut out);
        out
    }

    fn collect_sources<'a>(&'a self, out: &mut Vec<&'a str>) {
        match self {
            Node::Source(name) => {
                if !out.contains(&name.as_str()) {
                    out.push(name);
                }
            }
            Node::Derive { inputs, .. } => {
                for i in inputs {
                    i.collect_sources(out);
                }
            }
        }
    }

    /// Serialized size in bytes — the "derivation object size" of the
    /// storage-savings experiment (E6).
    pub fn spec_size(&self) -> usize {
        self.to_bytes().len()
    }

    /// Serializes the tree to a compact binary form.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut Vec<u8>) {
        match self {
            Node::Source(name) => {
                out.push(0x00);
                write_str(out, name);
            }
            Node::Derive { op, inputs } => {
                out.push(0x01);
                write_op(out, op);
                out.push(inputs.len() as u8);
                for i in inputs {
                    i.write(out);
                }
            }
        }
    }

    /// Parses a tree serialized by [`Node::to_bytes`].
    pub fn from_bytes(bytes: &[u8]) -> Result<Node, DeriveError> {
        let mut cursor = Cursor { bytes, pos: 0 };
        let node = read_node(&mut cursor)?;
        if cursor.pos != bytes.len() {
            return Err(DeriveError::Malformed {
                detail: "trailing bytes".to_owned(),
            });
        }
        Ok(node)
    }
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn u8(&mut self) -> Result<u8, DeriveError> {
        let b = *self
            .bytes
            .get(self.pos)
            .ok_or_else(|| DeriveError::Malformed {
                detail: "unexpected end".to_owned(),
            })?;
        self.pos += 1;
        Ok(b)
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], DeriveError> {
        if self.pos + n > self.bytes.len() {
            return Err(DeriveError::Malformed {
                detail: "unexpected end".to_owned(),
            });
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u16(&mut self) -> Result<u16, DeriveError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("len")))
    }

    fn u32(&mut self) -> Result<u32, DeriveError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("len")))
    }

    fn i64(&mut self) -> Result<i64, DeriveError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().expect("len")))
    }
}

fn write_str(out: &mut Vec<u8>, s: &str) {
    let b = s.as_bytes();
    out.extend_from_slice(&(b.len() as u16).to_le_bytes());
    out.extend_from_slice(b);
}

fn read_str(c: &mut Cursor<'_>) -> Result<String, DeriveError> {
    let len = c.u16()? as usize;
    let bytes = c.take(len)?;
    String::from_utf8(bytes.to_vec()).map_err(|_| DeriveError::Malformed {
        detail: "invalid utf-8 in source name".to_owned(),
    })
}

fn write_rational(out: &mut Vec<u8>, r: Rational) {
    out.extend_from_slice(&r.numer().to_le_bytes());
    out.extend_from_slice(&r.denom().to_le_bytes());
}

fn read_rational(c: &mut Cursor<'_>) -> Result<Rational, DeriveError> {
    let num = c.i64()?;
    let den = c.i64()?;
    Rational::checked_new(num, den).map_err(|e| DeriveError::Malformed {
        detail: format!("bad rational: {e}"),
    })
}

fn write_op(out: &mut Vec<u8>, op: &Op) {
    match op {
        Op::VideoEdit { cuts } => {
            out.push(1);
            out.extend_from_slice(&(cuts.len() as u16).to_le_bytes());
            for c in cuts {
                out.push(c.input);
                out.extend_from_slice(&c.from.to_le_bytes());
                out.extend_from_slice(&c.to.to_le_bytes());
            }
        }
        Op::VideoReverse => out.push(2),
        Op::TimeTranslate { ticks } => {
            out.push(3);
            out.extend_from_slice(&ticks.to_le_bytes());
        }
        Op::TimeScale { factor } => {
            out.push(4);
            write_rational(out, *factor);
        }
        Op::AudioCut { from, to } => {
            out.push(5);
            out.extend_from_slice(&from.to_le_bytes());
            out.extend_from_slice(&to.to_le_bytes());
        }
        Op::AudioConcat => out.push(6),
        Op::Fade { frames } => {
            out.push(7);
            out.extend_from_slice(&frames.to_le_bytes());
        }
        Op::Wipe { frames, direction } => {
            out.push(8);
            out.extend_from_slice(&frames.to_le_bytes());
            out.push(match direction {
                WipeDirection::LeftToRight => 0,
                WipeDirection::TopToBottom => 1,
            });
        }
        Op::ChromaKey { key_rgb, tolerance } => {
            out.push(9);
            out.extend_from_slice(&key_rgb.to_le_bytes());
            out.push(*tolerance);
        }
        Op::AudioNormalize { target_peak, range } => {
            out.push(10);
            out.extend_from_slice(&target_peak.to_le_bytes());
            match range {
                None => out.push(0),
                Some((a, b)) => {
                    out.push(1);
                    out.extend_from_slice(&a.to_le_bytes());
                    out.extend_from_slice(&b.to_le_bytes());
                }
            }
        }
        Op::AudioGain { num, den } => {
            out.push(11);
            out.extend_from_slice(&num.to_le_bytes());
            out.extend_from_slice(&den.to_le_bytes());
        }
        Op::AudioMix => out.push(12),
        Op::ColorSeparate { table } => {
            out.push(13);
            out.extend_from_slice(&table.black_generation.to_le_bytes());
            out.extend_from_slice(&table.undercolor_removal.to_le_bytes());
            out.extend_from_slice(&table.ink_limit.to_le_bytes());
        }
        Op::MidiSynthesize {
            sample_rate,
            tempo_bpm,
            gain_num,
        } => {
            out.push(14);
            out.extend_from_slice(&sample_rate.to_le_bytes());
            out.extend_from_slice(&tempo_bpm.to_le_bytes());
            out.extend_from_slice(&gain_num.to_le_bytes());
        }
        Op::RenderAnimation { fps } => {
            out.push(15);
            out.extend_from_slice(&fps.to_le_bytes());
        }
        Op::Transcode { quant_percent } => {
            out.push(16);
            out.extend_from_slice(&quant_percent.to_le_bytes());
        }
        Op::AudioResample { to_rate } => {
            out.push(17);
            out.extend_from_slice(&to_rate.to_le_bytes());
        }
    }
}

fn read_op(c: &mut Cursor<'_>) -> Result<Op, DeriveError> {
    Ok(match c.u8()? {
        1 => {
            let n = c.u16()? as usize;
            let mut cuts = Vec::with_capacity(n);
            for _ in 0..n {
                cuts.push(EditCut {
                    input: c.u8()?,
                    from: c.u32()?,
                    to: c.u32()?,
                });
            }
            Op::VideoEdit { cuts }
        }
        2 => Op::VideoReverse,
        3 => Op::TimeTranslate { ticks: c.i64()? },
        4 => Op::TimeScale {
            factor: read_rational(c)?,
        },
        5 => Op::AudioCut {
            from: c.u32()?,
            to: c.u32()?,
        },
        6 => Op::AudioConcat,
        7 => Op::Fade { frames: c.u32()? },
        8 => Op::Wipe {
            frames: c.u32()?,
            direction: match c.u8()? {
                0 => WipeDirection::LeftToRight,
                1 => WipeDirection::TopToBottom,
                d => {
                    return Err(DeriveError::Malformed {
                        detail: format!("bad wipe direction {d}"),
                    })
                }
            },
        },
        9 => Op::ChromaKey {
            key_rgb: c.u32()?,
            tolerance: c.u8()?,
        },
        10 => Op::AudioNormalize {
            target_peak: c.u16()? as i16,
            range: match c.u8()? {
                0 => None,
                1 => Some((c.u32()?, c.u32()?)),
                t => {
                    return Err(DeriveError::Malformed {
                        detail: format!("bad range tag {t}"),
                    })
                }
            },
        },
        11 => Op::AudioGain {
            num: c.u32()? as i32,
            den: c.u32()? as i32,
        },
        12 => Op::AudioMix,
        13 => Op::ColorSeparate {
            table: SeparationTable {
                black_generation: c.u16()?,
                undercolor_removal: c.u16()?,
                ink_limit: c.u16()?,
            },
        },
        14 => Op::MidiSynthesize {
            sample_rate: c.u32()?,
            tempo_bpm: c.u32()?,
            gain_num: c.u16()?,
        },
        15 => Op::RenderAnimation { fps: c.u32()? },
        16 => Op::Transcode {
            quant_percent: c.u16()?,
        },
        17 => Op::AudioResample { to_rate: c.u32()? },
        t => {
            return Err(DeriveError::Malformed {
                detail: format!("unknown op tag {t}"),
            })
        }
    })
}

fn read_node(c: &mut Cursor<'_>) -> Result<Node, DeriveError> {
    match c.u8()? {
        0x00 => Ok(Node::Source(read_str(c)?)),
        0x01 => {
            let op = read_op(c)?;
            let n = c.u8()? as usize;
            let mut inputs = Vec::with_capacity(n);
            for _ in 0..n {
                inputs.push(read_node(c)?);
            }
            Ok(Node::Derive { op, inputs })
        }
        t => Err(DeriveError::Malformed {
            detail: format!("unknown node tag {t}"),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_tree() -> Node {
        // The Fig. 4 pipeline: concat(cut1(video1), fade(video1, video2), cut2(video2)).
        let fade = Node::derive(
            Op::Fade { frames: 250 },
            vec![Node::source("video1"), Node::source("video2")],
        );
        let cut1 = Node::derive(
            Op::VideoEdit {
                cuts: vec![EditCut {
                    input: 0,
                    from: 0,
                    to: 1500,
                }],
            },
            vec![Node::source("video1")],
        );
        let cut2 = Node::derive(
            Op::VideoEdit {
                cuts: vec![EditCut {
                    input: 0,
                    from: 250,
                    to: 1750,
                }],
            },
            vec![Node::source("video2")],
        );
        Node::derive(
            Op::VideoEdit {
                cuts: vec![
                    EditCut {
                        input: 0,
                        from: 0,
                        to: 1500,
                    },
                    EditCut {
                        input: 1,
                        from: 0,
                        to: 250,
                    },
                    EditCut {
                        input: 2,
                        from: 0,
                        to: 1500,
                    },
                ],
            },
            vec![cut1, fade, cut2],
        )
    }

    #[test]
    fn roundtrip_all_ops() {
        let ops = vec![
            Op::VideoEdit {
                cuts: vec![EditCut {
                    input: 1,
                    from: 3,
                    to: 9,
                }],
            },
            Op::VideoReverse,
            Op::TimeTranslate { ticks: -42 },
            Op::TimeScale {
                factor: Rational::new(3, 2),
            },
            Op::AudioCut { from: 10, to: 99 },
            Op::AudioConcat,
            Op::Fade { frames: 250 },
            Op::Wipe {
                frames: 100,
                direction: WipeDirection::TopToBottom,
            },
            Op::ChromaKey {
                key_rgb: 0x00FF00,
                tolerance: 30,
            },
            Op::AudioNormalize {
                target_peak: 30000,
                range: Some((5, 500)),
            },
            Op::AudioNormalize {
                target_peak: 20000,
                range: None,
            },
            Op::AudioGain { num: -3, den: 2 },
            Op::AudioMix,
            Op::ColorSeparate {
                table: SeparationTable::newsprint(),
            },
            Op::MidiSynthesize {
                sample_rate: 44100,
                tempo_bpm: 90,
                gain_num: 200,
            },
            Op::RenderAnimation { fps: 25 },
            Op::Transcode { quant_percent: 250 },
            Op::AudioResample { to_rate: 22_050 },
        ];
        for op in ops {
            let inputs = vec![Node::source("a"); op.arity()];
            let node = Node::derive(op, inputs);
            let bytes = node.to_bytes();
            assert_eq!(Node::from_bytes(&bytes).unwrap(), node);
        }
    }

    #[test]
    fn nested_tree_roundtrip() {
        let tree = sample_tree();
        let bytes = tree.to_bytes();
        assert_eq!(Node::from_bytes(&bytes).unwrap(), tree);
        assert_eq!(tree.derivation_count(), 4); // concat + cut1 + fade + cut2
        assert_eq!(tree.sources(), vec!["video1", "video2"]);
    }

    #[test]
    fn derivation_objects_are_small() {
        // The E6 claim at the object level: the whole Fig. 4 video pipeline
        // spec is well under a kilobyte.
        let size = sample_tree().spec_size();
        assert!(size < 256, "spec size {size} unexpectedly large");
    }

    #[test]
    fn malformed_rejected() {
        assert!(Node::from_bytes(&[]).is_err());
        assert!(Node::from_bytes(&[0x07]).is_err());
        assert!(Node::from_bytes(&[0x01, 99]).is_err()); // unknown op tag
        let mut ok = Node::source("x").to_bytes();
        ok.push(0); // trailing garbage
        assert!(Node::from_bytes(&ok).is_err());
        // Truncations never panic.
        let bytes = sample_tree().to_bytes();
        for cut in 0..bytes.len() {
            let _ = Node::from_bytes(&bytes[..cut]);
        }
    }
}
