//! Expansion of derivation objects.
//!
//! The paper distinguishes storing a derivation object from storing its
//! *expansion*: "It should be possible to a) store derived media objects in
//! an implicit form, and b) to 'expand' derived objects to produce actual
//! (i.e., non-derived) objects." [`Expander::expand`] is (b);
//! [`Expander::pull_frame`] and [`Expander::pull_audio`] compute single
//! elements on demand — "the representation of media objects whose
//! underlying media elements are calculated when needed."
//!
//! Laziness note: element-local operators (edits, transitions, keys, gains)
//! pull only the input elements they need. Operators with *global*
//! parameters or element misalignment (normalization's peak scan, MIDI
//! synthesis) necessarily materialize their input; they fall back to
//! [`Expander::expand`] internally.

use crate::animrender;
use crate::synthesis::{self, SynthParams};
use crate::value::{AnimClip, AudioClip, ColorPlates, MediaValue, MusicClip, VideoClip};
use crate::{DeriveError, EditCut, Node, Op, WipeDirection};
use std::collections::HashMap;
use tbm_codec::dct::{self, DctParams};
use tbm_media::color::{separate, Rgb};
use tbm_media::{AudioBuffer, Frame, PixelFormat};
use tbm_time::Rational;

/// Resolves source names and evaluates derivation trees.
#[derive(Debug, Default)]
pub struct Expander {
    sources: HashMap<String, MediaValue>,
}

impl Expander {
    /// An expander with no sources.
    pub fn new() -> Expander {
        Expander::default()
    }

    /// Registers a non-derived media object under `name`.
    pub fn add_source(&mut self, name: &str, value: MediaValue) {
        self.sources.insert(name.to_owned(), value);
    }

    /// Looks up a source.
    pub fn source(&self, name: &str) -> Result<&MediaValue, DeriveError> {
        self.sources
            .get(name)
            .ok_or_else(|| DeriveError::UnknownSource {
                name: name.to_owned(),
            })
    }

    // ---------------------------------------------------------------------
    // Full expansion
    // ---------------------------------------------------------------------

    /// Fully materializes the value of `node`.
    pub fn expand(&self, node: &Node) -> Result<MediaValue, DeriveError> {
        match node {
            Node::Source(name) => Ok(self.source(name)?.clone()),
            Node::Derive { op, inputs } => {
                check_arity(op, inputs.len())?;
                let inputs: Vec<MediaValue> = inputs
                    .iter()
                    .map(|n| self.expand(n))
                    .collect::<Result<_, _>>()?;
                apply(op, inputs)
            }
        }
    }

    // ---------------------------------------------------------------------
    // Lazy video pull
    // ---------------------------------------------------------------------

    /// Number of frames the video-valued `node` would expand to, computed
    /// without materializing frames.
    pub fn video_len(&self, node: &Node) -> Result<usize, DeriveError> {
        match node {
            Node::Source(name) => match self.source(name)? {
                MediaValue::Video(v) => Ok(v.len()),
                other => Err(type_mismatch("video source", "video", other.type_name())),
            },
            Node::Derive { op, inputs } => {
                check_arity(op, inputs.len())?;
                match op {
                    Op::VideoEdit { cuts } => {
                        let mut total = 0usize;
                        for c in cuts {
                            let len = self.video_len(&inputs[c.input as usize])?;
                            validate_cut(c, len)?;
                            total += (c.to - c.from) as usize;
                        }
                        Ok(total)
                    }
                    Op::VideoReverse | Op::Transcode { .. } => self.video_len(&inputs[0]),
                    Op::Fade { frames } | Op::Wipe { frames, .. } => {
                        let a = self.video_len(&inputs[0])?;
                        let b = self.video_len(&inputs[1])?;
                        let n = *frames as usize;
                        if n == 0 || a < n || b < n {
                            return Err(DeriveError::BadParams {
                                op: op.name(),
                                detail: format!(
                                    "transition of {n} frames needs inputs ≥ {n} (got {a}, {b})"
                                ),
                            });
                        }
                        Ok(n)
                    }
                    Op::ChromaKey { .. } => {
                        Ok(self.video_len(&inputs[0])?.min(self.video_len(&inputs[1])?))
                    }
                    Op::RenderAnimation { fps } => {
                        // Frame count requires only the (cheap) symbolic clip.
                        match self.expand(&inputs[0])? {
                            MediaValue::Animation(clip) => Ok(animrender::frame_count(&clip, *fps)),
                            other => Err(type_mismatch(
                                "animation rendering",
                                "animation",
                                other.type_name(),
                            )),
                        }
                    }
                    other => Err(type_mismatch(other.name(), "video", other.result_type())),
                }
            }
        }
    }

    /// Computes frame `idx` of the video-valued `node`, pulling only the
    /// input elements that frame depends on.
    pub fn pull_frame(&self, node: &Node, idx: usize) -> Result<Frame, DeriveError> {
        match node {
            Node::Source(name) => match self.source(name)? {
                MediaValue::Video(v) => v.frames.get(idx).cloned().ok_or(DeriveError::OutOfRange {
                    index: idx,
                    len: v.len(),
                }),
                other => Err(type_mismatch("video source", "video", other.type_name())),
            },
            Node::Derive { op, inputs } => {
                check_arity(op, inputs.len())?;
                match op {
                    Op::VideoEdit { cuts } => {
                        let mut remaining = idx;
                        for c in cuts {
                            let len = (c.to - c.from) as usize;
                            if remaining < len {
                                return self.pull_frame(
                                    &inputs[c.input as usize],
                                    c.from as usize + remaining,
                                );
                            }
                            remaining -= len;
                        }
                        Err(DeriveError::OutOfRange {
                            index: idx,
                            len: self.video_len(node)?,
                        })
                    }
                    Op::VideoReverse => {
                        let len = self.video_len(&inputs[0])?;
                        if idx >= len {
                            return Err(DeriveError::OutOfRange { index: idx, len });
                        }
                        self.pull_frame(&inputs[0], len - 1 - idx)
                    }
                    Op::Fade { frames } => {
                        let n = self.video_len(node)?; // validates
                        if idx >= n {
                            return Err(DeriveError::OutOfRange { index: idx, len: n });
                        }
                        let a_len = self.video_len(&inputs[0])?;
                        let a = self.pull_frame(&inputs[0], a_len - *frames as usize + idx)?;
                        let b = self.pull_frame(&inputs[1], idx)?;
                        blend_frames(&a, &b, fade_alpha(idx, n))
                    }
                    Op::Wipe { frames, direction } => {
                        let n = self.video_len(node)?;
                        if idx >= n {
                            return Err(DeriveError::OutOfRange { index: idx, len: n });
                        }
                        let a_len = self.video_len(&inputs[0])?;
                        let a = self.pull_frame(&inputs[0], a_len - *frames as usize + idx)?;
                        let b = self.pull_frame(&inputs[1], idx)?;
                        wipe_frames(&a, &b, idx + 1, n, *direction)
                    }
                    Op::ChromaKey { key_rgb, tolerance } => {
                        let n = self.video_len(node)?;
                        if idx >= n {
                            return Err(DeriveError::OutOfRange { index: idx, len: n });
                        }
                        let fg = self.pull_frame(&inputs[0], idx)?;
                        let bg = self.pull_frame(&inputs[1], idx)?;
                        chroma_key(&fg, &bg, *key_rgb, *tolerance)
                    }
                    Op::Transcode { quant_percent } => {
                        let f = self.pull_frame(&inputs[0], idx)?;
                        let enc = dct::encode_frame(&f, DctParams::with_quant(*quant_percent));
                        Ok(dct::decode_frame(&enc)?)
                    }
                    Op::RenderAnimation { .. } => {
                        // Symbolic input: materialize the clip (cheap) and
                        // render only this frame.
                        match self.expand(&inputs[0])? {
                            MediaValue::Animation(clip) => {
                                render_one(&clip, op, idx, self.video_len(node)?)
                            }
                            other => Err(type_mismatch(
                                "animation rendering",
                                "animation",
                                other.type_name(),
                            )),
                        }
                    }
                    other => Err(type_mismatch(other.name(), "video", other.result_type())),
                }
            }
        }
    }

    /// The frame clock of the video-valued `node`, computed without
    /// materializing frames (needed by players and compositors).
    pub fn video_system(&self, node: &Node) -> Result<tbm_time::TimeSystem, DeriveError> {
        match node {
            Node::Source(name) => match self.source(name)? {
                MediaValue::Video(v) => Ok(v.system),
                other => Err(type_mismatch("video source", "video", other.type_name())),
            },
            Node::Derive { op, inputs } => {
                check_arity(op, inputs.len())?;
                match op {
                    Op::VideoEdit { .. }
                    | Op::VideoReverse
                    | Op::Fade { .. }
                    | Op::Wipe { .. }
                    | Op::ChromaKey { .. }
                    | Op::Transcode { .. } => self.video_system(&inputs[0]),
                    Op::RenderAnimation { fps } => {
                        Ok(tbm_time::TimeSystem::from_hz((*fps).max(1) as i64))
                    }
                    other => Err(type_mismatch(other.name(), "video", other.result_type())),
                }
            }
        }
    }

    /// The sample rate of the audio-valued `node`, without materializing.
    pub fn audio_rate(&self, node: &Node) -> Result<u32, DeriveError> {
        match node {
            Node::Source(name) => match self.source(name)? {
                MediaValue::Audio(a) => Ok(a.sample_rate),
                other => Err(type_mismatch("audio source", "audio", other.type_name())),
            },
            Node::Derive { op, inputs } => {
                check_arity(op, inputs.len())?;
                match op {
                    Op::AudioCut { .. }
                    | Op::AudioConcat
                    | Op::AudioGain { .. }
                    | Op::AudioNormalize { .. }
                    | Op::AudioMix => self.audio_rate(&inputs[0]),
                    Op::MidiSynthesize { sample_rate, .. } => Ok(*sample_rate),
                    Op::AudioResample { to_rate } => Ok((*to_rate).max(1)),
                    other => Err(type_mismatch(other.name(), "audio", other.result_type())),
                }
            }
        }
    }

    // ---------------------------------------------------------------------
    // Lazy audio pull
    // ---------------------------------------------------------------------

    /// Number of sample-frames of the audio-valued `node`.
    pub fn audio_len(&self, node: &Node) -> Result<usize, DeriveError> {
        match node {
            Node::Source(name) => match self.source(name)? {
                MediaValue::Audio(a) => Ok(a.buffer.frames()),
                other => Err(type_mismatch("audio source", "audio", other.type_name())),
            },
            Node::Derive { op, inputs } => {
                check_arity(op, inputs.len())?;
                match op {
                    Op::AudioCut { from, to } => {
                        let len = self.audio_len(&inputs[0])?;
                        if from > to || *to as usize > len {
                            return Err(DeriveError::BadParams {
                                op: op.name(),
                                detail: format!("cut [{from}, {to}) of {len}-frame input"),
                            });
                        }
                        Ok((to - from) as usize)
                    }
                    Op::AudioConcat => {
                        Ok(self.audio_len(&inputs[0])? + self.audio_len(&inputs[1])?)
                    }
                    Op::AudioGain { .. } | Op::AudioNormalize { .. } => self.audio_len(&inputs[0]),
                    Op::AudioMix => {
                        Ok(self.audio_len(&inputs[0])?.max(self.audio_len(&inputs[1])?))
                    }
                    Op::MidiSynthesize { .. } => match self.expand(node)? {
                        MediaValue::Audio(a) => Ok(a.buffer.frames()),
                        _ => unreachable!("synthesis produces audio"),
                    },
                    Op::AudioResample { to_rate } => {
                        let in_len = self.audio_len(&inputs[0])?;
                        let from = self.audio_rate(&inputs[0])?.max(1);
                        Ok(resampled_len(in_len, from, (*to_rate).max(1)))
                    }
                    other => Err(type_mismatch(other.name(), "audio", other.result_type())),
                }
            }
        }
    }

    /// Computes sample-frames `[from, from + len)` of the audio-valued
    /// `node`.
    pub fn pull_audio(
        &self,
        node: &Node,
        from: usize,
        len: usize,
    ) -> Result<AudioBuffer, DeriveError> {
        match node {
            Node::Source(name) => match self.source(name)? {
                MediaValue::Audio(a) => {
                    let total = a.buffer.frames();
                    if from + len > total {
                        return Err(DeriveError::OutOfRange {
                            index: from + len,
                            len: total,
                        });
                    }
                    Ok(a.buffer.slice_frames(from, from + len))
                }
                other => Err(type_mismatch("audio source", "audio", other.type_name())),
            },
            Node::Derive { op, inputs } => {
                check_arity(op, inputs.len())?;
                match op {
                    Op::AudioCut { from: cut_from, .. } => {
                        let my_len = self.audio_len(node)?;
                        if from + len > my_len {
                            return Err(DeriveError::OutOfRange {
                                index: from + len,
                                len: my_len,
                            });
                        }
                        self.pull_audio(&inputs[0], *cut_from as usize + from, len)
                    }
                    Op::AudioConcat => {
                        let a_len = self.audio_len(&inputs[0])?;
                        let total = a_len + self.audio_len(&inputs[1])?;
                        if from + len > total {
                            return Err(DeriveError::OutOfRange {
                                index: from + len,
                                len: total,
                            });
                        }
                        if from + len <= a_len {
                            self.pull_audio(&inputs[0], from, len)
                        } else if from >= a_len {
                            self.pull_audio(&inputs[1], from - a_len, len)
                        } else {
                            let mut head = self.pull_audio(&inputs[0], from, a_len - from)?;
                            let tail = self.pull_audio(&inputs[1], 0, from + len - a_len)?;
                            if !head.append(&tail) {
                                return Err(DeriveError::Incompatible {
                                    op: op.name(),
                                    detail: "channel counts differ".to_owned(),
                                });
                            }
                            Ok(head)
                        }
                    }
                    Op::AudioGain { num, den } => {
                        if *den <= 0 {
                            return Err(DeriveError::BadParams {
                                op: op.name(),
                                detail: "denominator must be positive".to_owned(),
                            });
                        }
                        let mut buf = self.pull_audio(&inputs[0], from, len)?;
                        buf.apply_gain(*num, *den);
                        Ok(buf)
                    }
                    Op::AudioMix => {
                        let a_len = self.audio_len(&inputs[0])?;
                        let b_len = self.audio_len(&inputs[1])?;
                        let total = a_len.max(b_len);
                        if from + len > total {
                            return Err(DeriveError::OutOfRange {
                                index: from + len,
                                len: total,
                            });
                        }
                        let pull_padded = |input: &Node, input_len: usize| {
                            let avail = input_len.saturating_sub(from).min(len);
                            let mut buf = if avail > 0 {
                                self.pull_audio(input, from, avail)?
                            } else {
                                AudioBuffer::silence(1, 0)
                            };
                            if buf.frames() < len && buf.frames() > 0 {
                                let pad = AudioBuffer::silence(buf.channels(), len - buf.frames());
                                buf.append(&pad);
                            }
                            Ok::<_, DeriveError>(buf)
                        };
                        let mut a = pull_padded(&inputs[0], a_len)?;
                        let b = pull_padded(&inputs[1], b_len)?;
                        if a.frames() == 0 {
                            return Ok(b);
                        }
                        if b.frames() > 0 && !a.mix_in(&b) {
                            return Err(DeriveError::Incompatible {
                                op: op.name(),
                                detail: "channel counts differ".to_owned(),
                            });
                        }
                        Ok(a)
                    }
                    // Global ops: materialize then slice.
                    Op::AudioNormalize { .. }
                    | Op::MidiSynthesize { .. }
                    | Op::AudioResample { .. } => match self.expand(node)? {
                        MediaValue::Audio(a) => {
                            let total = a.buffer.frames();
                            if from + len > total {
                                return Err(DeriveError::OutOfRange {
                                    index: from + len,
                                    len: total,
                                });
                            }
                            Ok(a.buffer.slice_frames(from, from + len))
                        }
                        other => Err(type_mismatch(op.name(), "audio", other.type_name())),
                    },
                    other => Err(type_mismatch(other.name(), "audio", other.result_type())),
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Operator application (full materialization)
// ---------------------------------------------------------------------------

/// Output length of a linear resample: `round(len · to / from)`.
fn resampled_len(len: usize, from: u32, to: u32) -> usize {
    ((len as u128 * to as u128 + from as u128 / 2) / from as u128) as usize
}

/// Linear-interpolation resampler, per channel.
fn resample(clip: &AudioClip, to_rate: u32) -> AudioClip {
    let from = clip.sample_rate.max(1);
    if from == to_rate {
        return AudioClip::new(clip.buffer.clone(), to_rate);
    }
    let in_frames = clip.buffer.frames();
    let out_frames = resampled_len(in_frames, from, to_rate);
    let channels = clip.buffer.channels();
    let mut out = tbm_media::AudioBuffer::silence(channels, out_frames);
    if in_frames == 0 {
        return AudioClip::new(out, to_rate);
    }
    for i in 0..out_frames {
        // Source position in 32.32 fixed point: i * from / to.
        let pos = (i as u128) * (from as u128) * (1u128 << 32) / (to_rate as u128);
        let idx = (pos >> 32) as usize;
        let frac = (pos & 0xFFFF_FFFF) as i64;
        let idx0 = idx.min(in_frames - 1);
        let idx1 = (idx + 1).min(in_frames - 1);
        for c in 0..channels {
            let a = clip.buffer.sample(idx0, c) as i64;
            let b = clip.buffer.sample(idx1, c) as i64;
            let v = a + (((b - a) * frac) >> 32);
            out.set_sample(i, c, v as i16);
        }
    }
    AudioClip::new(out, to_rate)
}

fn check_arity(op: &Op, got: usize) -> Result<(), DeriveError> {
    let expected = op.arity();
    if got != expected {
        return Err(DeriveError::Arity {
            op: op.name(),
            expected,
            got,
        });
    }
    Ok(())
}

fn type_mismatch(op: &'static str, expected: &'static str, got: &'static str) -> DeriveError {
    DeriveError::TypeMismatch { op, expected, got }
}

fn validate_cut(c: &EditCut, input_len: usize) -> Result<(), DeriveError> {
    if c.from > c.to || c.to as usize > input_len {
        return Err(DeriveError::BadParams {
            op: "video edit",
            detail: format!(
                "cut [{}, {}) out of range for {input_len}-frame input {}",
                c.from, c.to, c.input
            ),
        });
    }
    Ok(())
}

fn as_video(op: &Op, v: MediaValue) -> Result<VideoClip, DeriveError> {
    match v {
        MediaValue::Video(c) => Ok(c),
        other => Err(type_mismatch(op.name(), "video", other.type_name())),
    }
}

fn as_audio(op: &Op, v: MediaValue) -> Result<AudioClip, DeriveError> {
    match v {
        MediaValue::Audio(c) => Ok(c),
        other => Err(type_mismatch(op.name(), "audio", other.type_name())),
    }
}

fn fade_alpha(idx: usize, n: usize) -> (u32, u32) {
    if n <= 1 {
        (1, 2)
    } else {
        (idx as u32, (n - 1) as u32)
    }
}

fn blend_frames(a: &Frame, b: &Frame, (num, den): (u32, u32)) -> Result<Frame, DeriveError> {
    // Blend in a common format: convert b if needed.
    let b_conv;
    let b_ref = if a.format() == b.format() {
        b
    } else {
        b_conv = b.to_format(a.format());
        &b_conv
    };
    a.blend(b_ref, num, den).ok_or(DeriveError::Incompatible {
        op: "video transition (fade)",
        detail: format!(
            "geometry mismatch: {}x{} vs {}x{}",
            a.width(),
            a.height(),
            b.width(),
            b.height()
        ),
    })
}

fn wipe_frames(
    a: &Frame,
    b: &Frame,
    step: usize,
    steps: usize,
    direction: WipeDirection,
) -> Result<Frame, DeriveError> {
    if a.width() != b.width() || a.height() != b.height() {
        return Err(DeriveError::Incompatible {
            op: "video transition (wipe)",
            detail: "geometry mismatch".to_owned(),
        });
    }
    let mut out = a.to_format(PixelFormat::Rgb24);
    let b_rgb = b.to_format(PixelFormat::Rgb24);
    match direction {
        WipeDirection::LeftToRight => {
            let reveal = (a.width() as usize * step / steps.max(1)) as u32;
            for y in 0..a.height() {
                for x in 0..reveal.min(a.width()) {
                    out.set_rgb(x, y, b_rgb.get_rgb(x, y));
                }
            }
        }
        WipeDirection::TopToBottom => {
            let reveal = (a.height() as usize * step / steps.max(1)) as u32;
            for y in 0..reveal.min(a.height()) {
                for x in 0..a.width() {
                    out.set_rgb(x, y, b_rgb.get_rgb(x, y));
                }
            }
        }
    }
    Ok(out)
}

fn chroma_key(fg: &Frame, bg: &Frame, key_rgb: u32, tol: u8) -> Result<Frame, DeriveError> {
    if fg.width() != bg.width() || fg.height() != bg.height() {
        return Err(DeriveError::Incompatible {
            op: "chroma key",
            detail: "geometry mismatch".to_owned(),
        });
    }
    let key = Rgb::new((key_rgb >> 16) as u8, (key_rgb >> 8) as u8, key_rgb as u8);
    let mut out = fg.to_format(PixelFormat::Rgb24);
    let bg_rgb = bg.to_format(PixelFormat::Rgb24);
    let tol = tol as i32;
    for y in 0..out.height() {
        for x in 0..out.width() {
            let p = out.get_rgb(x, y);
            let close = (p.r as i32 - key.r as i32).abs() <= tol
                && (p.g as i32 - key.g as i32).abs() <= tol
                && (p.b as i32 - key.b as i32).abs() <= tol;
            if close {
                out.set_rgb(x, y, bg_rgb.get_rgb(x, y));
            }
        }
    }
    Ok(out)
}

fn render_one(clip: &AnimClip, op: &Op, idx: usize, len: usize) -> Result<Frame, DeriveError> {
    let Op::RenderAnimation { fps } = op else {
        unreachable!("caller matched RenderAnimation");
    };
    if idx >= len {
        return Err(DeriveError::OutOfRange { index: idx, len });
    }
    let system = tbm_time::TimeSystem::from_hz(*fps as i64);
    let (first, _) = clip.tick_span().expect("non-empty: len > 0");
    let t = system.ticks_to_delta(idx as i64).seconds();
    let tick = first
        + clip
            .system
            .seconds_to_tick_floor(tbm_time::TimePoint::from_seconds(t));
    Ok(animrender::render_frame_at(clip, tick))
}

fn apply(op: &Op, mut inputs: Vec<MediaValue>) -> Result<MediaValue, DeriveError> {
    match op {
        Op::VideoEdit { cuts } => {
            let clips: Vec<VideoClip> = inputs
                .into_iter()
                .map(|v| as_video(op, v))
                .collect::<Result<_, _>>()?;
            let system = clips.first().map(|c| c.system).ok_or(DeriveError::Arity {
                op: op.name(),
                expected: 1,
                got: 0,
            })?;
            if clips.iter().any(|c| c.system != system) {
                return Err(DeriveError::Incompatible {
                    op: op.name(),
                    detail: "inputs use different time systems".to_owned(),
                });
            }
            let mut frames = Vec::new();
            for c in cuts {
                let clip = clips.get(c.input as usize).ok_or(DeriveError::BadParams {
                    op: op.name(),
                    detail: format!("cut references input {} of {}", c.input, clips.len()),
                })?;
                validate_cut(c, clip.len())?;
                frames.extend_from_slice(&clip.frames[c.from as usize..c.to as usize]);
            }
            Ok(MediaValue::Video(VideoClip::new(frames, system)))
        }
        Op::VideoReverse => {
            let mut clip = as_video(op, inputs.remove(0))?;
            clip.frames.reverse();
            Ok(MediaValue::Video(clip))
        }
        Op::TimeTranslate { ticks } => match inputs.remove(0) {
            MediaValue::Music(mut m) => {
                for n in &mut m.notes {
                    n.1 += ticks;
                }
                Ok(MediaValue::Music(m))
            }
            MediaValue::Animation(mut a) => {
                for mv in &mut a.moves {
                    mv.1 += ticks;
                }
                Ok(MediaValue::Animation(a))
            }
            other => Err(type_mismatch(
                op.name(),
                "music | animation",
                other.type_name(),
            )),
        },
        Op::TimeScale { factor } => {
            if factor.signum() <= 0 {
                return Err(DeriveError::BadParams {
                    op: op.name(),
                    detail: "scale factor must be positive".to_owned(),
                });
            }
            let scale = |t: i64| -> i64 { (Rational::from(t) * *factor).round() };
            match inputs.remove(0) {
                MediaValue::Music(mut m) => {
                    for n in &mut m.notes {
                        let end = scale(n.1 + n.2);
                        n.1 = scale(n.1);
                        n.2 = (end - n.1).max(0);
                    }
                    Ok(MediaValue::Music(m))
                }
                MediaValue::Animation(mut a) => {
                    for mv in &mut a.moves {
                        let end = scale(mv.1 + mv.2);
                        mv.1 = scale(mv.1);
                        mv.2 = (end - mv.1).max(0);
                    }
                    Ok(MediaValue::Animation(a))
                }
                other => Err(type_mismatch(
                    op.name(),
                    "music | animation",
                    other.type_name(),
                )),
            }
        }
        Op::AudioCut { from, to } => {
            let clip = as_audio(op, inputs.remove(0))?;
            if from > to || *to as usize > clip.buffer.frames() {
                return Err(DeriveError::BadParams {
                    op: op.name(),
                    detail: format!("cut [{from}, {to}) of {}-frame input", clip.buffer.frames()),
                });
            }
            Ok(MediaValue::Audio(AudioClip::new(
                clip.buffer.slice_frames(*from as usize, *to as usize),
                clip.sample_rate,
            )))
        }
        Op::AudioConcat => {
            let b = as_audio(op, inputs.pop().expect("arity checked"))?;
            let mut a = as_audio(op, inputs.pop().expect("arity checked"))?;
            if a.sample_rate != b.sample_rate {
                return Err(DeriveError::Incompatible {
                    op: op.name(),
                    detail: "sample rates differ".to_owned(),
                });
            }
            if !a.buffer.append(&b.buffer) {
                return Err(DeriveError::Incompatible {
                    op: op.name(),
                    detail: "channel counts differ".to_owned(),
                });
            }
            Ok(MediaValue::Audio(a))
        }
        Op::Fade { frames } | Op::Wipe { frames, .. } => {
            let b = as_video(op, inputs.pop().expect("arity checked"))?;
            let a = as_video(op, inputs.pop().expect("arity checked"))?;
            let n = *frames as usize;
            if n == 0 || a.len() < n || b.len() < n {
                return Err(DeriveError::BadParams {
                    op: op.name(),
                    detail: format!(
                        "transition of {n} frames needs inputs ≥ {n} (got {}, {})",
                        a.len(),
                        b.len()
                    ),
                });
            }
            let mut out = Vec::with_capacity(n);
            for i in 0..n {
                let fa = &a.frames[a.len() - n + i];
                let fb = &b.frames[i];
                let f = match op {
                    Op::Fade { .. } => blend_frames(fa, fb, fade_alpha(i, n))?,
                    Op::Wipe { direction, .. } => wipe_frames(fa, fb, i + 1, n, *direction)?,
                    _ => unreachable!(),
                };
                out.push(f);
            }
            Ok(MediaValue::Video(VideoClip::new(out, a.system)))
        }
        Op::ChromaKey { key_rgb, tolerance } => {
            let bg = as_video(op, inputs.pop().expect("arity checked"))?;
            let fg = as_video(op, inputs.pop().expect("arity checked"))?;
            let n = fg.len().min(bg.len());
            let mut out = Vec::with_capacity(n);
            for i in 0..n {
                out.push(chroma_key(
                    &fg.frames[i],
                    &bg.frames[i],
                    *key_rgb,
                    *tolerance,
                )?);
            }
            Ok(MediaValue::Video(VideoClip::new(out, fg.system)))
        }
        Op::AudioNormalize { target_peak, range } => {
            let mut clip = as_audio(op, inputs.remove(0))?;
            if *target_peak <= 0 {
                return Err(DeriveError::BadParams {
                    op: op.name(),
                    detail: "target peak must be positive".to_owned(),
                });
            }
            let total = clip.buffer.frames();
            let (from, to) = match range {
                Some((a, b)) => (*a as usize, *b as usize),
                None => (0, total),
            };
            if from > to || to > total {
                return Err(DeriveError::BadParams {
                    op: op.name(),
                    detail: format!("range [{from}, {to}) of {total}-frame input"),
                });
            }
            let region = clip.buffer.slice_frames(from, to);
            let peak = region.peak();
            if peak > 0 {
                let channels = clip.buffer.channels() as usize;
                let samples = clip.buffer.samples_mut();
                for frame in from..to {
                    for c in 0..channels {
                        let i = frame * channels + c;
                        let v = samples[i] as i64 * *target_peak as i64 / peak as i64;
                        samples[i] = v.clamp(i16::MIN as i64, i16::MAX as i64) as i16;
                    }
                }
            }
            Ok(MediaValue::Audio(clip))
        }
        Op::AudioGain { num, den } => {
            if *den <= 0 {
                return Err(DeriveError::BadParams {
                    op: op.name(),
                    detail: "denominator must be positive".to_owned(),
                });
            }
            let mut clip = as_audio(op, inputs.remove(0))?;
            clip.buffer.apply_gain(*num, *den);
            Ok(MediaValue::Audio(clip))
        }
        Op::AudioMix => {
            let b = as_audio(op, inputs.pop().expect("arity checked"))?;
            let mut a = as_audio(op, inputs.pop().expect("arity checked"))?;
            if a.sample_rate != b.sample_rate {
                return Err(DeriveError::Incompatible {
                    op: op.name(),
                    detail: "sample rates differ".to_owned(),
                });
            }
            if !a.buffer.mix_in(&b.buffer) {
                return Err(DeriveError::Incompatible {
                    op: op.name(),
                    detail: "channel counts differ".to_owned(),
                });
            }
            Ok(MediaValue::Audio(a))
        }
        Op::AudioResample { to_rate } => {
            if *to_rate == 0 {
                return Err(DeriveError::BadParams {
                    op: op.name(),
                    detail: "target rate must be positive".to_owned(),
                });
            }
            let clip = as_audio(op, inputs.remove(0))?;
            Ok(MediaValue::Audio(resample(&clip, *to_rate)))
        }
        Op::ColorSeparate { table } => {
            let img = match inputs.remove(0) {
                MediaValue::Image(f) => f,
                other => return Err(type_mismatch(op.name(), "image", other.type_name())),
            };
            let (w, h) = (img.width(), img.height());
            let mut plates = [
                Frame::black(w, h, PixelFormat::Gray8),
                Frame::black(w, h, PixelFormat::Gray8),
                Frame::black(w, h, PixelFormat::Gray8),
                Frame::black(w, h, PixelFormat::Gray8),
            ];
            for y in 0..h {
                for x in 0..w {
                    let ink = separate(img.get_rgb(x, y), table);
                    let i = (y as usize) * w as usize + x as usize;
                    plates[0].data_mut()[i] = ink.c;
                    plates[1].data_mut()[i] = ink.m;
                    plates[2].data_mut()[i] = ink.y;
                    plates[3].data_mut()[i] = ink.k;
                }
            }
            let [c, m, ye, k] = plates;
            Ok(MediaValue::Plates(ColorPlates { c, m, y: ye, k }))
        }
        Op::MidiSynthesize {
            sample_rate,
            tempo_bpm,
            gain_num,
        } => {
            let music: MusicClip = match inputs.remove(0) {
                MediaValue::Music(m) => m,
                other => return Err(type_mismatch(op.name(), "music", other.type_name())),
            };
            let params = SynthParams {
                sample_rate: *sample_rate,
                tempo_bpm: *tempo_bpm,
                gain_num: *gain_num,
                programs: [0; 16],
            };
            Ok(MediaValue::Audio(synthesis::synthesize(&music, &params)))
        }
        Op::RenderAnimation { fps } => {
            let anim = match inputs.remove(0) {
                MediaValue::Animation(a) => a,
                other => return Err(type_mismatch(op.name(), "animation", other.type_name())),
            };
            Ok(MediaValue::Video(animrender::render(&anim, *fps)))
        }
        Op::Transcode { quant_percent } => {
            let clip = as_video(op, inputs.remove(0))?;
            let params = DctParams::with_quant(*quant_percent);
            let mut frames = Vec::with_capacity(clip.len());
            for f in &clip.frames {
                let enc = dct::encode_frame(f, params);
                frames.push(dct::decode_frame(&enc)?);
            }
            Ok(MediaValue::Video(VideoClip::new(frames, clip.system)))
        }
    }
}
