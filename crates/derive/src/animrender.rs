//! Animation → video rendering.
//!
//! The paper: "video sequences are derived (via rendering) from
//! representations of animation," and animation is its canonical
//! non-continuous medium: "at times when the animated object is at rest
//! there are no associated media elements." The renderer honours that
//! semantics — between movement elements an object *holds* its last
//! position; it does not disappear.

use crate::value::{AnimClip, VideoClip};
use tbm_media::animation::{MoveSpec, Point};
use tbm_media::color::Rgb;
use tbm_media::{Frame, PixelFormat};
use tbm_time::TimeSystem;

fn unpack(rgb: u32) -> Rgb {
    Rgb::new((rgb >> 16) as u8, (rgb >> 8) as u8, rgb as u8)
}

/// The position and appearance of one object at a given animation tick.
fn object_state_at(moves: &[(MoveSpec, i64, i64)], object: u32, tick: i64) -> Option<MoveSpec> {
    let mut current: Option<(MoveSpec, i64, i64)> = None;
    for &(m, start, dur) in moves {
        if start > tick {
            break; // moves are start-ordered
        }
        if m.object_id == object {
            current = Some((m, start, dur));
        }
    }
    let (m, start, dur) = current?;
    if dur > 0 && tick < start + dur {
        // Mid-movement: interpolate.
        let p = m.position_at(tick - start, dur);
        Some(MoveSpec {
            from: p,
            to: p,
            ..m
        })
    } else {
        // At rest after the movement: hold the end position.
        Some(MoveSpec {
            from: m.to,
            to: m.to,
            ..m
        })
    }
}

/// Renders one output frame at animation tick `tick`.
pub fn render_frame_at(clip: &AnimClip, tick: i64) -> Frame {
    let mut frame = Frame::filled(
        clip.width,
        clip.height,
        PixelFormat::Rgb24,
        unpack(clip.background),
    );
    // Objects in id order, lowest drawn first.
    let mut objects: Vec<u32> = clip.moves.iter().map(|(m, _, _)| m.object_id).collect();
    objects.sort_unstable();
    objects.dedup();
    for obj in objects {
        if let Some(state) = object_state_at(&clip.moves, obj, tick) {
            // Only draw once the object's first element has begun.
            draw_sprite(&mut frame, state.from, state.size, unpack(state.color));
        }
    }
    frame
}

fn draw_sprite(frame: &mut Frame, at: Point, size: u32, color: Rgb) {
    let half = size as i32 / 2;
    for dy in -half..=half {
        for dx in -half..=half {
            let x = at.x + dx;
            let y = at.y + dy;
            if x >= 0 && y >= 0 && (x as u32) < frame.width() && (y as u32) < frame.height() {
                frame.set_rgb(x as u32, y as u32, color);
            }
        }
    }
}

/// Number of video frames a render of `clip` at `fps` produces, without
/// rendering anything (used by lazy length queries).
pub fn frame_count(clip: &AnimClip, fps: u32) -> usize {
    let fps = fps.max(1);
    let Some((first, last)) = clip.tick_span() else {
        return 0;
    };
    let span_secs = clip.system.ticks_to_delta(last - first).seconds();
    (span_secs * tbm_time::Rational::from(fps as i64))
        .ceil()
        .max(1) as usize
}

/// Renders a whole clip to video at `fps` frames per second, covering the
/// clip's tick span (type-changing derivation: animation → video).
pub fn render(clip: &AnimClip, fps: u32) -> VideoClip {
    let fps = fps.max(1);
    let system = TimeSystem::from_hz(fps as i64);
    let Some((first, _)) = clip.tick_span() else {
        return VideoClip::new(Vec::new(), system);
    };
    let frame_count = frame_count(clip, fps);
    let mut frames = Vec::with_capacity(frame_count);
    for i in 0..frame_count {
        // Output frame i shows the scene at animation tick:
        let t_secs = system.ticks_to_delta(i as i64).seconds();
        let tick = first
            + clip
                .system
                .seconds_to_tick_floor(tbm_time::TimePoint::from_seconds(t_secs));
        frames.push(render_frame_at(clip, tick));
    }
    VideoClip::new(frames, system)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn simple_clip() -> AnimClip {
        // Object 1 moves from (4,8) to (24,8) over ticks [0, 10), then rests
        // until a second movement at tick 20.
        AnimClip::new(
            vec![
                (
                    MoveSpec::new(1, Point::new(4, 8), Point::new(24, 8), 3, 0xFF0000),
                    0,
                    10,
                ),
                (
                    MoveSpec::new(1, Point::new(24, 8), Point::new(24, 20), 3, 0xFF0000),
                    20,
                    10,
                ),
            ],
            TimeSystem::from_hz(10),
            32,
            32,
            0x101010,
        )
    }

    fn red_at(frame: &Frame, x: u32, y: u32) -> bool {
        let p = frame.get_rgb(x, y);
        p.r > 200 && p.g < 60 && p.b < 60
    }

    #[test]
    fn interpolates_during_movement() {
        let clip = simple_clip();
        let f = render_frame_at(&clip, 5); // halfway: x = 14
        assert!(red_at(&f, 14, 8), "sprite should be at (14, 8)");
        assert!(!red_at(&f, 4, 8));
        assert!(!red_at(&f, 24, 8));
    }

    #[test]
    fn holds_position_at_rest() {
        // "At times when the animated object is at rest there are no
        // associated media elements" — between ticks 10 and 20 the object
        // holds at (24, 8).
        let clip = simple_clip();
        for tick in [10, 15, 19] {
            let f = render_frame_at(&clip, tick);
            assert!(red_at(&f, 24, 8), "tick {tick}");
        }
        // Second movement underway at tick 25: halfway down to y=14.
        let f = render_frame_at(&clip, 25);
        assert!(red_at(&f, 24, 14));
    }

    #[test]
    fn background_fills_empty_scene() {
        let clip = AnimClip::new(vec![], TimeSystem::from_hz(10), 8, 8, 0x336699);
        let f = render_frame_at(&clip, 0);
        assert_eq!(f.get_rgb(3, 3), Rgb::new(0x33, 0x66, 0x99));
        assert!(render(&clip, 25).is_empty());
    }

    #[test]
    fn render_produces_expected_frame_count() {
        // Span: 30 ticks at 10 Hz = 3 s; at 5 fps = 15 frames.
        let clip = simple_clip();
        let video = render(&clip, 5);
        assert_eq!(video.len(), 15);
        assert_eq!(video.geometry(), Some((32, 32)));
        assert_eq!(video.system, TimeSystem::from_hz(5));
    }

    #[test]
    fn sprites_clip_at_edges() {
        let clip = AnimClip::new(
            vec![(
                MoveSpec::new(1, Point::new(0, 0), Point::new(0, 0), 5, 0x00FF00),
                0,
                1,
            )],
            TimeSystem::from_hz(10),
            8,
            8,
            0,
        );
        // Must not panic drawing at the corner.
        let f = render_frame_at(&clip, 0);
        let p = f.get_rgb(0, 0);
        assert!(p.g > 200);
    }

    #[test]
    fn multiple_objects_render() {
        let clip = AnimClip::new(
            vec![
                (
                    MoveSpec::new(1, Point::new(5, 5), Point::new(5, 5), 3, 0xFF0000),
                    0,
                    10,
                ),
                (
                    MoveSpec::new(2, Point::new(20, 20), Point::new(20, 20), 3, 0x0000FF),
                    0,
                    10,
                ),
            ],
            TimeSystem::from_hz(10),
            32,
            32,
            0,
        );
        let f = render_frame_at(&clip, 3);
        assert!(red_at(&f, 5, 5));
        let p = f.get_rgb(20, 20);
        assert!(p.b > 200 && p.r < 60);
    }
}
