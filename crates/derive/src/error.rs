//! Error type for the derivation layer.

use std::fmt;
use tbm_codec::CodecError;

/// Errors raised while building or expanding derivations.
#[derive(Debug)]
pub enum DeriveError {
    /// A derivation referenced a source name the expander does not know.
    UnknownSource {
        /// The missing source name.
        name: String,
    },
    /// An operator received the wrong number of inputs.
    Arity {
        /// The operator's name.
        op: &'static str,
        /// Inputs expected.
        expected: usize,
        /// Inputs supplied.
        got: usize,
    },
    /// An operator received an input of the wrong media type — the paper:
    /// "an audio sequence cannot be concatenated to a video sequence."
    TypeMismatch {
        /// The operator's name.
        op: &'static str,
        /// What the operator needed.
        expected: &'static str,
        /// What it received.
        got: &'static str,
    },
    /// Operator parameters are invalid (empty range, zero rate, …).
    BadParams {
        /// The operator's name.
        op: &'static str,
        /// What was wrong.
        detail: String,
    },
    /// Inputs are structurally incompatible (geometry, rate, channels).
    Incompatible {
        /// The operator's name.
        op: &'static str,
        /// What was wrong.
        detail: String,
    },
    /// A requested element lies outside the derived object's range.
    OutOfRange {
        /// The requested element index.
        index: usize,
        /// The derived object's element count.
        len: usize,
    },
    /// A serialized derivation object could not be parsed.
    Malformed {
        /// What was wrong.
        detail: String,
    },
    /// Codec failure during expansion (transcoding).
    Codec(CodecError),
}

impl fmt::Display for DeriveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeriveError::UnknownSource { name } => write!(f, "unknown source object `{name}`"),
            DeriveError::Arity { op, expected, got } => {
                write!(f, "{op}: expected {expected} input(s), got {got}")
            }
            DeriveError::TypeMismatch { op, expected, got } => {
                write!(f, "{op}: expected {expected} input, got {got}")
            }
            DeriveError::BadParams { op, detail } => write!(f, "{op}: bad parameters: {detail}"),
            DeriveError::Incompatible { op, detail } => {
                write!(f, "{op}: incompatible inputs: {detail}")
            }
            DeriveError::OutOfRange { index, len } => {
                write!(f, "element {index} out of range (derived object has {len})")
            }
            DeriveError::Malformed { detail } => {
                write!(f, "malformed derivation object: {detail}")
            }
            DeriveError::Codec(e) => write!(f, "codec error during expansion: {e}"),
        }
    }
}

impl std::error::Error for DeriveError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DeriveError::Codec(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CodecError> for DeriveError {
    fn from(e: CodecError) -> DeriveError {
        DeriveError::Codec(e)
    }
}
