//! Catalog persistence.
//!
//! The paper stresses that structural information "is crucial and the task
//! should not be left to applications" — losing an interpretation leaves
//! "meaningless data". Persistence therefore stores the *whole* catalog:
//! interpretations (descriptors, element tables), object records,
//! derivation objects and multimedia objects, in one compact binary file
//! next to the BLOBs of a [`tbm_blob::FileBlobStore`].
//!
//! Symbolic immediates (music, animation) persist too; bulk video/audio
//! immediates are rejected — continuous media belong in BLOBs with
//! interpretations, per the model.
//!
//! ## Durability and corruption
//!
//! Version 2 catalogs end in a 16-byte footer `[crc32][payload len][magic]`
//! so damage anywhere in the file is *detected* rather than silently loaded;
//! [`MediaDb::save`] is atomic (temp file + fsync + rename + directory
//! fsync) so a crash leaves either the old or the new catalog, never a torn
//! one; and [`MediaDb::salvage`] recovers the valid record prefix of a
//! damaged catalog, reporting exactly what was lost.

use crate::record::{DerivationRecord, MediaObjectRecord, MultimediaRecord, Origin};
use crate::{DbError, MediaDb};
use std::collections::HashMap;
use std::io::{Read, Write};
use std::path::{Path, PathBuf};
use tbm_blob::{BlobStore, ByteSpan, FileBlobStore};
use tbm_compose::{Component, ComponentKind, MultimediaObject, Region};
use tbm_core::{
    crc32, AttrValue, BlobId, DerivationId, ElementDescriptor, InterpretationId, MediaDescriptor,
    MediaKind, MediaObjectId, MultimediaObjectId,
};
use tbm_derive::{AnimClip, MediaValue, MusicClip, Node};
use tbm_interp::{ElementEntry, Interpretation, Placement, StreamInterp};
use tbm_media::animation::{MoveSpec, Point};
use tbm_media::midi::Note;
use tbm_time::{AllenRelation, Rational, TimeDelta, TimePoint, TimeSystem};

const MAGIC: &[u8; 4] = b"TBMC";
/// Current catalog version. Version 2 added per-layer element checksums and
/// the whole-file footer; version 1 files (no footer) are still readable.
const VERSION: u8 = 2;
/// Oldest version this decoder accepts.
const MIN_VERSION: u8 = 1;

/// The catalog file name inside a database directory.
pub const CATALOG_FILE: &str = "catalog.tbm";

/// The temporary file [`MediaDb::save`] writes before atomically renaming it
/// over [`CATALOG_FILE`]. A leftover `catalog.tbm.tmp` means a crash
/// interrupted a save; it is uncommitted state and is discarded on open.
pub const CATALOG_TMP: &str = "catalog.tbm.tmp";

/// Footer: `[crc32 of payload: u32 LE][payload len: u64 LE][b"TBMF"]`.
const FOOTER_MAGIC: &[u8; 4] = b"TBMF";
const FOOTER_LEN: usize = 16;

fn corrupt(detail: &str) -> DbError {
    DbError::CorruptCatalog {
        detail: detail.to_owned(),
    }
}

/// Capacity hint for length-prefixed sections: trust small counts, clamp
/// huge ones so a corrupt count cannot drive a giant allocation before the
/// per-record bounds checks reject the data.
fn cap(n: usize) -> usize {
    n.min(4096)
}

// ---------------------------------------------------------------------------
// Encoder / decoder primitives
// ---------------------------------------------------------------------------

struct Enc {
    out: Vec<u8>,
}

impl Enc {
    fn new() -> Enc {
        Enc {
            out: Vec::with_capacity(4096),
        }
    }

    fn u8(&mut self, v: u8) {
        self.out.push(v);
    }

    fn u32(&mut self, v: u32) {
        self.out.extend_from_slice(&v.to_le_bytes());
    }

    fn u64(&mut self, v: u64) {
        self.out.extend_from_slice(&v.to_le_bytes());
    }

    fn i64(&mut self, v: i64) {
        self.out.extend_from_slice(&v.to_le_bytes());
    }

    fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.out.extend_from_slice(s.as_bytes());
    }

    fn bytes(&mut self, b: &[u8]) {
        self.u32(b.len() as u32);
        self.out.extend_from_slice(b);
    }

    fn rational(&mut self, r: Rational) {
        self.i64(r.numer());
        self.i64(r.denom());
    }
}

struct Dec<'a> {
    bytes: &'a [u8],
    pos: usize,
    /// Catalog version being decoded; gates fields added after version 1.
    version: u8,
}

impl<'a> Dec<'a> {
    fn new(bytes: &'a [u8]) -> Dec<'a> {
        Dec {
            bytes,
            pos: 0,
            version: VERSION,
        }
    }

    /// Consumes and validates the catalog header, recording the version.
    fn header(&mut self) -> Result<(), DbError> {
        if self.take(4)? != MAGIC {
            return Err(corrupt("bad magic"));
        }
        let version = self.u8()?;
        if !(MIN_VERSION..=VERSION).contains(&version) {
            return Err(corrupt(&format!("unsupported version {version}")));
        }
        self.version = version;
        Ok(())
    }
}

impl<'a> Dec<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], DbError> {
        if self.pos + n > self.bytes.len() {
            return Err(corrupt("unexpected end"));
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, DbError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, DbError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("len")))
    }

    fn u64(&mut self) -> Result<u64, DbError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("len")))
    }

    fn i64(&mut self) -> Result<i64, DbError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().expect("len")))
    }

    fn str(&mut self) -> Result<String, DbError> {
        let n = self.u32()? as usize;
        String::from_utf8(self.take(n)?.to_vec()).map_err(|_| corrupt("invalid utf-8"))
    }

    fn blob(&mut self) -> Result<Vec<u8>, DbError> {
        let n = self.u32()? as usize;
        Ok(self.take(n)?.to_vec())
    }

    fn rational(&mut self) -> Result<Rational, DbError> {
        let num = self.i64()?;
        let den = self.i64()?;
        Rational::checked_new(num, den).map_err(|_| corrupt("invalid rational"))
    }
}

// ---------------------------------------------------------------------------
// Piecewise encodings
// ---------------------------------------------------------------------------

fn enc_attr(e: &mut Enc, v: &AttrValue) {
    match v {
        AttrValue::Int(i) => {
            e.u8(0);
            e.i64(*i);
        }
        AttrValue::Rational(r) => {
            e.u8(1);
            e.rational(*r);
        }
        AttrValue::Text(s) => {
            e.u8(2);
            e.str(s);
        }
        AttrValue::Bool(b) => {
            e.u8(3);
            e.u8(*b as u8);
        }
    }
}

fn dec_attr(d: &mut Dec) -> Result<AttrValue, DbError> {
    Ok(match d.u8()? {
        0 => AttrValue::Int(d.i64()?),
        1 => AttrValue::Rational(d.rational()?),
        2 => AttrValue::Text(d.str()?),
        3 => AttrValue::Bool(d.u8()? != 0),
        t => return Err(corrupt(&format!("attr tag {t}"))),
    })
}

fn kind_tag(k: MediaKind) -> u8 {
    match k {
        MediaKind::Image => 0,
        MediaKind::Audio => 1,
        MediaKind::Video => 2,
        MediaKind::Music => 3,
        MediaKind::Animation => 4,
        MediaKind::Text => 5,
    }
}

fn kind_from(tag: u8) -> Result<MediaKind, DbError> {
    Ok(match tag {
        0 => MediaKind::Image,
        1 => MediaKind::Audio,
        2 => MediaKind::Video,
        3 => MediaKind::Music,
        4 => MediaKind::Animation,
        5 => MediaKind::Text,
        t => return Err(corrupt(&format!("media kind {t}"))),
    })
}

fn enc_descriptor(e: &mut Enc, desc: &MediaDescriptor) {
    e.u8(kind_tag(desc.kind()));
    e.u32(desc.len() as u32);
    for (k, v) in desc.iter() {
        e.str(k);
        enc_attr(e, v);
    }
}

fn dec_descriptor(d: &mut Dec) -> Result<MediaDescriptor, DbError> {
    let kind = kind_from(d.u8()?)?;
    let n = d.u32()? as usize;
    let mut desc = MediaDescriptor::new(kind);
    for _ in 0..n {
        let k = d.str()?;
        let v = dec_attr(d)?;
        desc.set(&k, v);
    }
    Ok(desc)
}

fn enc_entry(e: &mut Enc, entry: &ElementEntry) {
    e.i64(entry.start);
    e.i64(entry.duration);
    let layers = entry.placement.layers();
    e.u8(layers.len() as u8);
    for s in layers {
        e.u64(s.offset);
        e.u64(s.len);
    }
    match &entry.descriptor {
        None => e.u8(0),
        Some(ed) => {
            e.u8(1);
            e.u32(ed.iter().count() as u32);
            for (k, v) in ed.iter() {
                e.str(k);
                enc_attr(e, v);
            }
        }
    }
    e.u8(entry.is_key as u8);
    // Version 2: per-layer checksums (0 = none recorded).
    e.u8(entry.checksums.len() as u8);
    for &sum in &entry.checksums {
        e.u32(sum);
    }
}

fn dec_entry(d: &mut Dec) -> Result<ElementEntry, DbError> {
    let start = d.i64()?;
    let duration = d.i64()?;
    let n_layers = d.u8()? as usize;
    if n_layers == 0 {
        return Err(corrupt("entry with zero layers"));
    }
    let mut spans = Vec::with_capacity(n_layers);
    for _ in 0..n_layers {
        let offset = d.u64()?;
        let len = d.u64()?;
        spans.push(ByteSpan::new(offset, len));
    }
    let descriptor = match d.u8()? {
        0 => None,
        1 => {
            let n = d.u32()? as usize;
            let mut pairs = Vec::with_capacity(cap(n));
            for _ in 0..n {
                let k = d.str()?;
                let v = dec_attr(d)?;
                pairs.push((k, v));
            }
            Some(ElementDescriptor::from_pairs(pairs))
        }
        t => return Err(corrupt(&format!("descriptor tag {t}"))),
    };
    let is_key = d.u8()? != 0;
    let checksums = if d.version >= 2 {
        let n_sums = d.u8()? as usize;
        if n_sums != 0 && n_sums != n_layers {
            return Err(corrupt("checksum count does not match layer count"));
        }
        let mut sums = Vec::with_capacity(n_sums);
        for _ in 0..n_sums {
            sums.push(d.u32()?);
        }
        sums
    } else {
        Vec::new()
    };
    let placement = Placement::layered(spans).expect("n_layers >= 1");
    Ok(ElementEntry {
        start,
        duration,
        size: placement.total_len(),
        placement,
        descriptor,
        is_key,
        checksums,
    })
}

fn enc_interpretation(e: &mut Enc, interp: &Interpretation) {
    e.u64(interp.blob().raw());
    e.u32(interp.len() as u32);
    for (name, stream) in interp.streams() {
        e.str(name);
        enc_descriptor(e, stream.descriptor());
        e.rational(stream.system().frequency());
        e.u32(stream.len() as u32);
        for entry in stream.entries() {
            enc_entry(e, entry);
        }
    }
}

fn dec_interpretation(d: &mut Dec) -> Result<Interpretation, DbError> {
    let blob = BlobId::new(d.u64()?);
    let mut interp = Interpretation::new(blob);
    let n = d.u32()? as usize;
    for _ in 0..n {
        let name = d.str()?;
        let desc = dec_descriptor(d)?;
        let freq = d.rational()?;
        let system = TimeSystem::new(freq).map_err(|_| corrupt("bad frequency"))?;
        let n_entries = d.u32()? as usize;
        let mut entries = Vec::with_capacity(cap(n_entries));
        for _ in 0..n_entries {
            entries.push(dec_entry(d)?);
        }
        let stream = StreamInterp::new(desc, system, entries)?;
        interp.add_stream(&name, stream)?;
    }
    Ok(interp)
}

fn enc_multimedia(e: &mut Enc, m: &MultimediaObject) {
    e.str(m.name());
    e.u32(m.components().len() as u32);
    for c in m.components() {
        e.str(&c.name);
        e.u8(match c.kind {
            ComponentKind::Video => 0,
            ComponentKind::Audio => 1,
        });
        e.bytes(&c.media.to_bytes());
        e.rational(c.interval.start().seconds());
        e.rational(c.interval.duration().seconds());
        match c.region {
            None => e.u8(0),
            Some(r) => {
                e.u8(1);
                e.i64(r.x as i64);
                e.i64(r.y as i64);
                e.u32(r.width);
                e.u32(r.height);
                e.i64(r.layer as i64);
            }
        }
    }
    e.u32(m.constraints().len() as u32);
    for sc in m.constraints() {
        e.str(&sc.a);
        e.str(&sc.b);
        let idx = AllenRelation::ALL
            .iter()
            .position(|r| *r == sc.relation)
            .expect("relation in ALL");
        e.u8(idx as u8);
    }
}

fn dec_multimedia(d: &mut Dec) -> Result<MultimediaObject, DbError> {
    let name = d.str()?;
    let mut m = MultimediaObject::new(&name);
    let n = d.u32()? as usize;
    for _ in 0..n {
        let cname = d.str()?;
        let kind = match d.u8()? {
            0 => ComponentKind::Video,
            1 => ComponentKind::Audio,
            t => return Err(corrupt(&format!("component kind {t}"))),
        };
        let media = Node::from_bytes(&d.blob()?)?;
        let start = TimePoint::from_seconds(d.rational()?);
        let dur = TimeDelta::from_seconds(d.rational()?);
        let mut component =
            Component::new(&cname, kind, media, start, dur).ok_or_else(|| corrupt("interval"))?;
        if d.u8()? == 1 {
            let x = d.i64()? as i32;
            let y = d.i64()? as i32;
            let w = d.u32()?;
            let h = d.u32()?;
            let layer = d.i64()? as i32;
            component = component.in_region(Region::new(x, y, w, h).at_layer(layer));
        }
        m.add_component(component)?;
    }
    let nc = d.u32()? as usize;
    for _ in 0..nc {
        let a = d.str()?;
        let b = d.str()?;
        let idx = d.u8()? as usize;
        let relation = *AllenRelation::ALL
            .get(idx)
            .ok_or_else(|| corrupt("relation index"))?;
        m.add_constraint(&a, relation, &b)?;
    }
    Ok(m)
}

fn enc_immediate(e: &mut Enc, v: &MediaValue) -> Result<(), DbError> {
    match v {
        MediaValue::Music(m) => {
            e.u8(0);
            e.u32(m.ppq);
            e.u32(m.tempo_bpm);
            e.u32(m.notes.len() as u32);
            for &(note, start, dur) in &m.notes {
                e.u8(note.channel);
                e.u8(note.key);
                e.u8(note.velocity);
                e.i64(start);
                e.i64(dur);
            }
            Ok(())
        }
        MediaValue::Animation(a) => {
            e.u8(1);
            e.rational(a.system.frequency());
            e.u32(a.width);
            e.u32(a.height);
            e.u32(a.background);
            e.u32(a.moves.len() as u32);
            for &(mv, start, dur) in &a.moves {
                e.u32(mv.object_id);
                e.i64(mv.from.x as i64);
                e.i64(mv.from.y as i64);
                e.i64(mv.to.x as i64);
                e.i64(mv.to.y as i64);
                e.u32(mv.size);
                e.u32(mv.color);
                e.i64(start);
                e.i64(dur);
            }
            Ok(())
        }
        other => Err(DbError::UnsupportedEncoding {
            name: "<immediate>".to_owned(),
            encoding: format!(
                "{} immediates are not persistable — capture continuous media into BLOBs",
                other.type_name()
            ),
        }),
    }
}

fn dec_immediate(d: &mut Dec) -> Result<MediaValue, DbError> {
    Ok(match d.u8()? {
        0 => {
            let ppq = d.u32()?;
            let tempo = d.u32()?;
            let n = d.u32()? as usize;
            let mut notes = Vec::with_capacity(cap(n));
            for _ in 0..n {
                let channel = d.u8()?;
                let key = d.u8()?;
                let velocity = d.u8()?;
                let start = d.i64()?;
                let dur = d.i64()?;
                notes.push((Note::new(channel, key, velocity), start, dur));
            }
            MediaValue::Music(MusicClip::new(notes, ppq, tempo))
        }
        1 => {
            let freq = d.rational()?;
            let system = TimeSystem::new(freq).map_err(|_| corrupt("bad frequency"))?;
            let width = d.u32()?;
            let height = d.u32()?;
            let background = d.u32()?;
            let n = d.u32()? as usize;
            let mut moves = Vec::with_capacity(cap(n));
            for _ in 0..n {
                let object_id = d.u32()?;
                let fx = d.i64()? as i32;
                let fy = d.i64()? as i32;
                let tx = d.i64()? as i32;
                let ty = d.i64()? as i32;
                let size = d.u32()?;
                let color = d.u32()?;
                let start = d.i64()?;
                let dur = d.i64()?;
                moves.push((
                    MoveSpec::new(
                        object_id,
                        Point::new(fx, fy),
                        Point::new(tx, ty),
                        size,
                        color,
                    ),
                    start,
                    dur,
                ));
            }
            MediaValue::Animation(AnimClip::new(moves, system, width, height, background))
        }
        t => return Err(corrupt(&format!("immediate tag {t}"))),
    })
}

// ---------------------------------------------------------------------------
// Top level
// ---------------------------------------------------------------------------

impl<S: BlobStore> MediaDb<S> {
    /// Serializes the catalog (everything except BLOB contents) to bytes.
    pub fn catalog_to_bytes(&self) -> Result<Vec<u8>, DbError> {
        let (interps, objects, derivations, multimedia) = self.parts();
        let mut e = Enc::new();
        e.out.extend_from_slice(MAGIC);
        e.u8(VERSION);

        e.u32(interps.len() as u32);
        for i in interps {
            enc_interpretation(&mut e, i);
        }

        e.u32(objects.len() as u32);
        for o in objects {
            e.str(&o.name);
            match &o.origin {
                Origin::Interpreted {
                    interpretation,
                    stream,
                } => {
                    e.u8(0);
                    e.u64(interpretation.raw());
                    e.str(stream);
                }
                Origin::Derived { derivation } => {
                    e.u8(1);
                    e.u64(derivation.raw());
                }
            }
        }

        e.u32(derivations.len() as u32);
        for rec in derivations {
            e.bytes(&rec.bytes);
        }

        e.u32(multimedia.len() as u32);
        for m in multimedia {
            enc_multimedia(&mut e, &m.object);
        }

        e.u32(self.immediates.len() as u32);
        let mut names: Vec<&String> = self.immediates.keys().collect();
        names.sort();
        for name in names {
            e.str(name);
            enc_immediate(&mut e, &self.immediates[name])?;
        }
        Ok(append_footer(e.out))
    }

    /// Rebuilds a database from serialized catalog bytes and a BLOB store.
    ///
    /// Strict: the footer checksum must verify (version ≥ 2) and every
    /// record must decode with no bytes left over. Damaged input yields
    /// [`DbError::CorruptCatalog`], never a silently wrong catalog and never
    /// a panic; use [`MediaDb::catalog_salvage_from_bytes`] to recover what
    /// a damaged catalog still holds.
    pub fn catalog_from_bytes(store: S, bytes: &[u8]) -> Result<MediaDb<S>, DbError> {
        let payload = match verify_footer(bytes)? {
            Some(payload) => payload,
            // No footer at all: accept only version-1 files (written before
            // the footer existed); anything else lost its footer to damage.
            None if is_legacy_v1(bytes) => bytes,
            None => return Err(corrupt("missing or damaged footer")),
        };
        let scan = decode_sections(payload);
        if let Some(e) = scan.error {
            return Err(e);
        }
        if scan.consumed != payload.len() {
            return Err(corrupt("trailing bytes"));
        }
        let p = scan.parts;
        Ok(MediaDb::from_parts(
            store,
            p.interpretations,
            p.objects,
            p.derivations,
            p.multimedia,
            p.immediates,
        ))
    }

    /// Recovers the valid record prefix of a (possibly damaged) catalog.
    ///
    /// Total function: any input — truncated, bit-flipped, or garbage —
    /// yields a database holding every record that still decodes, plus a
    /// [`SalvageReport`] accounting for what was lost. Objects whose
    /// interpretation or derivation did not survive are dropped too
    /// (counted as [`SalvageReport::dangling_objects`]) so the salvaged
    /// database never holds dangling references.
    pub fn catalog_salvage_from_bytes(store: S, bytes: &[u8]) -> (MediaDb<S>, SalvageReport) {
        let (payload, footer_ok) = match verify_footer(bytes) {
            Ok(Some(payload)) => (payload, true),
            // Footer-less: fine for a version-1 file, damage otherwise.
            Ok(None) => (bytes, is_legacy_v1(bytes)),
            // Footer present but failing validation: its magic still marks
            // the payload boundary.
            Err(_) => (&bytes[..bytes.len() - FOOTER_LEN], false),
        };
        let scan = decode_sections(payload);
        let mut report = scan.report;
        report.footer_ok = footer_ok;
        if let Some(e) = scan.error {
            report.detail = Some(e.to_string());
        } else if scan.consumed != payload.len() {
            report.detail = Some(format!(
                "{} trailing bytes ignored",
                payload.len() - scan.consumed
            ));
        }
        let mut p = scan.parts;
        // Referential integrity: drop objects pointing at lost records.
        let before = p.objects.len();
        let (interps, derivations) = (&p.interpretations, &p.derivations);
        p.objects.retain(|o| match &o.origin {
            Origin::Interpreted {
                interpretation,
                stream,
            } => interps
                .get(interpretation.raw() as usize)
                .is_some_and(|i| i.stream(stream).is_ok()),
            Origin::Derived { derivation } => (derivation.raw() as usize) < derivations.len(),
        });
        report.dangling_objects = before - p.objects.len();
        let db = MediaDb::from_parts(
            store,
            p.interpretations,
            p.objects,
            p.derivations,
            p.multimedia,
            p.immediates,
        );
        (db, report)
    }
}

// ---------------------------------------------------------------------------
// Footer, section scan, salvage report
// ---------------------------------------------------------------------------

fn append_footer(mut payload: Vec<u8>) -> Vec<u8> {
    let crc = crc32(&payload);
    let len = payload.len() as u64;
    payload.extend_from_slice(&crc.to_le_bytes());
    payload.extend_from_slice(&len.to_le_bytes());
    payload.extend_from_slice(FOOTER_MAGIC);
    payload
}

/// Locates and verifies the whole-file footer. `Ok(Some(payload))` when a
/// valid footer checks out, `Ok(None)` when no footer is present at all,
/// `Err` when a footer is present but the length or checksum disagrees.
fn verify_footer(bytes: &[u8]) -> Result<Option<&[u8]>, DbError> {
    if bytes.len() < FOOTER_LEN || &bytes[bytes.len() - 4..] != FOOTER_MAGIC {
        return Ok(None);
    }
    let foot = &bytes[bytes.len() - FOOTER_LEN..];
    let crc = u32::from_le_bytes(foot[0..4].try_into().expect("len"));
    let len = u64::from_le_bytes(foot[4..12].try_into().expect("len"));
    let payload = &bytes[..bytes.len() - FOOTER_LEN];
    if len != payload.len() as u64 {
        return Err(corrupt("footer length mismatch"));
    }
    if crc32(payload) != crc {
        return Err(corrupt("footer checksum mismatch"));
    }
    Ok(Some(payload))
}

/// `true` when `bytes` starts with a version-1 header — the only format
/// allowed to lack a footer.
fn is_legacy_v1(bytes: &[u8]) -> bool {
    bytes.len() >= 5 && &bytes[..4] == MAGIC && bytes[4] == 1
}

/// Decoded catalog parts (possibly a prefix, when scanning stopped early).
#[derive(Default)]
struct Parts {
    interpretations: Vec<Interpretation>,
    objects: Vec<MediaObjectRecord>,
    derivations: Vec<DerivationRecord>,
    multimedia: Vec<MultimediaRecord>,
    immediates: HashMap<String, MediaValue>,
}

struct Scan {
    parts: Parts,
    report: SalvageReport,
    /// The typed error that stopped the scan, if any.
    error: Option<DbError>,
    /// Bytes consumed when the scan stopped.
    consumed: usize,
}

fn dec_object(d: &mut Dec, i: usize) -> Result<MediaObjectRecord, DbError> {
    let name = d.str()?;
    let origin = match d.u8()? {
        0 => Origin::Interpreted {
            interpretation: InterpretationId::new(d.u64()?),
            stream: d.str()?,
        },
        1 => Origin::Derived {
            derivation: DerivationId::new(d.u64()?),
        },
        t => return Err(corrupt(&format!("origin tag {t}"))),
    };
    Ok(MediaObjectRecord {
        id: MediaObjectId::new(i as u64),
        name,
        origin,
    })
}

fn dec_derivation(d: &mut Dec, i: usize) -> Result<DerivationRecord, DbError> {
    let bytes = d.blob()?;
    let node = Node::from_bytes(&bytes)?;
    Ok(DerivationRecord {
        id: DerivationId::new(i as u64),
        node,
        bytes,
    })
}

/// Decodes header and sections in order, stopping at the first record that
/// fails. Shared by strict load (which then requires a complete, error-free
/// scan) and salvage (which keeps the recovered prefix).
fn decode_sections(payload: &[u8]) -> Scan {
    let mut parts = Parts::default();
    let mut report = SalvageReport::default();
    let mut d = Dec::new(payload);

    // Records are decoded one at a time and tallied on success, so the first
    // failing record aborts the scan (via `?`) while every earlier record —
    // including earlier records of the same section — stays recovered.
    let error = (|| -> Result<(), DbError> {
        d.header()?;

        let n = d.u32()? as usize;
        report.interpretations.expected = n;
        for _ in 0..n {
            parts.interpretations.push(dec_interpretation(&mut d)?);
            report.interpretations.recovered += 1;
        }

        let n = d.u32()? as usize;
        report.objects.expected = n;
        for i in 0..n {
            parts.objects.push(dec_object(&mut d, i)?);
            report.objects.recovered += 1;
        }

        let n = d.u32()? as usize;
        report.derivations.expected = n;
        for i in 0..n {
            parts.derivations.push(dec_derivation(&mut d, i)?);
            report.derivations.recovered += 1;
        }

        let n = d.u32()? as usize;
        report.multimedia.expected = n;
        for i in 0..n {
            parts.multimedia.push(MultimediaRecord {
                id: MultimediaObjectId::new(i as u64),
                object: dec_multimedia(&mut d)?,
            });
            report.multimedia.recovered += 1;
        }

        let n = d.u32()? as usize;
        report.immediates.expected = n;
        for _ in 0..n {
            let name = d.str()?;
            parts.immediates.insert(name, dec_immediate(&mut d)?);
            report.immediates.recovered += 1;
        }
        Ok(())
    })()
    .err();

    Scan {
        parts,
        report,
        error,
        consumed: d.pos,
    }
}

/// Recovered-vs-expected tally for one catalog section.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SectionSalvage {
    /// Records that decoded intact.
    pub recovered: usize,
    /// Records the (possibly damaged) count field claimed. Zero when the
    /// scan never reached this section — losses beyond the failure point
    /// are unknowable and reported via [`SalvageReport::detail`].
    pub expected: usize,
}

impl SectionSalvage {
    /// Records lost from this section.
    pub fn lost(&self) -> usize {
        self.expected.saturating_sub(self.recovered)
    }
}

/// What [`MediaDb::salvage`] recovered and what it had to give up.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SalvageReport {
    /// Whether the whole-file checksum footer verified (or was legitimately
    /// absent, for version-1 files).
    pub footer_ok: bool,
    /// Interpretation records.
    pub interpretations: SectionSalvage,
    /// Media object records.
    pub objects: SectionSalvage,
    /// Derivation records.
    pub derivations: SectionSalvage,
    /// Multimedia object records.
    pub multimedia: SectionSalvage,
    /// Symbolic immediate values.
    pub immediates: SectionSalvage,
    /// Decoded objects dropped because their interpretation or derivation
    /// did not survive (they would otherwise dangle).
    pub dangling_objects: usize,
    /// Why the scan stopped early (or a note about ignored trailing bytes);
    /// `None` when every record decoded.
    pub detail: Option<String>,
}

impl SalvageReport {
    /// `true` when nothing was lost: footer verified, every section decoded
    /// in full, no dangling objects.
    pub fn is_clean(&self) -> bool {
        self.footer_ok && self.detail.is_none() && self.dangling_objects == 0 && self.lost() == 0
    }

    /// Total records lost across all sections (dangling objects included).
    pub fn lost(&self) -> usize {
        self.interpretations.lost()
            + self.objects.lost()
            + self.derivations.lost()
            + self.multimedia.lost()
            + self.immediates.lost()
            + self.dangling_objects
    }
}

// ---------------------------------------------------------------------------
// Durable save / open / salvage on a database directory
// ---------------------------------------------------------------------------

fn io_err(e: std::io::Error) -> DbError {
    DbError::Blob(tbm_blob::BlobError::Io(e))
}

/// Writes catalog bytes to the temp file and flushes them to disk. First
/// half of the atomic save; the catalog is not yet visible to `open`.
fn write_catalog_tmp(dir: &Path, bytes: &[u8]) -> Result<PathBuf, DbError> {
    let tmp = dir.join(CATALOG_TMP);
    let mut f = std::fs::File::create(&tmp).map_err(io_err)?;
    f.write_all(bytes).map_err(io_err)?;
    f.sync_all().map_err(io_err)?;
    Ok(tmp)
}

/// Atomically publishes a fully-written temp file as the catalog, then
/// flushes the directory entry so the rename itself is durable.
fn commit_catalog_tmp(dir: &Path, tmp: &Path) -> Result<(), DbError> {
    std::fs::rename(tmp, dir.join(CATALOG_FILE)).map_err(io_err)?;
    if let Ok(d) = std::fs::File::open(dir) {
        // Best effort: directories cannot be fsynced on every platform.
        let _ = d.sync_all();
    }
    Ok(())
}

impl MediaDb<FileBlobStore> {
    /// Persists the catalog next to the BLOB files.
    ///
    /// Atomic: bytes are written and fsynced to [`CATALOG_TMP`], renamed
    /// over [`CATALOG_FILE`], and the directory entry is flushed. A crash at
    /// any point leaves either the previous catalog or the new one — never
    /// a torn file.
    pub fn save(&self) -> Result<(), DbError> {
        let bytes = self.catalog_to_bytes()?;
        let dir = self.store().dir().to_path_buf();
        let tmp = write_catalog_tmp(&dir, &bytes)?;
        commit_catalog_tmp(&dir, &tmp)
    }

    /// Opens a database directory: BLOBs plus the saved catalog (an empty
    /// catalog if none was saved yet). A stale [`CATALOG_TMP`] left by an
    /// interrupted save is uncommitted state and is removed.
    pub fn open(dir: impl AsRef<Path>) -> Result<MediaDb<FileBlobStore>, DbError> {
        let store = FileBlobStore::open(&dir)?;
        let stale = store.dir().join(CATALOG_TMP);
        if stale.exists() {
            let _ = std::fs::remove_file(&stale);
        }
        let path = store.dir().join(CATALOG_FILE);
        if !path.exists() {
            return Ok(MediaDb::with_store(store));
        }
        let mut bytes = Vec::new();
        std::fs::File::open(path)
            .map_err(tbm_blob::BlobError::Io)?
            .read_to_end(&mut bytes)
            .map_err(tbm_blob::BlobError::Io)?;
        MediaDb::catalog_from_bytes(store, &bytes)
    }

    /// Opens a database directory, salvaging whatever the catalog still
    /// holds instead of failing on damage. Returns the recovered database
    /// and a [`SalvageReport`] saying what was lost; a missing catalog
    /// yields an empty, clean database.
    pub fn salvage(
        dir: impl AsRef<Path>,
    ) -> Result<(MediaDb<FileBlobStore>, SalvageReport), DbError> {
        let store = FileBlobStore::open(&dir)?;
        let path = store.dir().join(CATALOG_FILE);
        if !path.exists() {
            let report = SalvageReport {
                footer_ok: true,
                ..SalvageReport::default()
            };
            return Ok((MediaDb::with_store(store), report));
        }
        let bytes = std::fs::read(&path).map_err(io_err)?;
        Ok(MediaDb::catalog_salvage_from_bytes(store, &bytes))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tbm_derive::Op;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("tbm-persist-unit-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    /// A small catalog exercising every section except interpretations:
    /// one immediate, one derived object (with its derivation), one
    /// multimedia object.
    fn small_db(dir: &Path) -> MediaDb<FileBlobStore> {
        let mut db = MediaDb::open(dir).unwrap();
        db.register_value(
            "score",
            MediaValue::Music(MusicClip::new(
                vec![(Note::new(0, 60, 100), 0, 480)],
                480,
                120,
            )),
        )
        .unwrap();
        db.create_derived(
            "score_audio",
            Node::derive(
                Op::MidiSynthesize {
                    sample_rate: 22_050,
                    tempo_bpm: 0,
                    gain_num: 256,
                },
                vec![Node::source("score")],
            ),
        )
        .unwrap();
        let mut m = MultimediaObject::new("m");
        m.add_component(
            Component::new(
                "s",
                ComponentKind::Audio,
                Node::source("score_audio"),
                TimePoint::ZERO,
                TimeDelta::from_secs(1),
            )
            .unwrap(),
        )
        .unwrap();
        db.add_multimedia(m).unwrap();
        db
    }

    #[test]
    fn atomic_save_crash_before_commit_keeps_old_catalog() {
        let dir = temp_dir("crash");
        let mut db = small_db(&dir);
        db.save().unwrap();

        // New state reaches the temp file, but the "crash" happens before
        // the rename commits it.
        db.register_value("late", MediaValue::Music(MusicClip::new(vec![], 480, 90)))
            .unwrap();
        let new_bytes = db.catalog_to_bytes().unwrap();
        write_catalog_tmp(db.store().dir(), &new_bytes).unwrap();
        assert!(dir.join(CATALOG_TMP).exists());

        // Open sees the committed catalog only; the stale tmp is discarded.
        let reopened = MediaDb::open(&dir).unwrap();
        assert!(reopened.object("score_audio").is_ok());
        assert!(reopened.immediates.contains_key("score"));
        assert!(!reopened.immediates.contains_key("late"));
        assert!(!dir.join(CATALOG_TMP).exists());

        // A completed save commits the new state.
        db.save().unwrap();
        let reopened = MediaDb::open(&dir).unwrap();
        assert!(reopened.immediates.contains_key("late"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn footer_detects_bit_flips_everywhere() {
        let dir = temp_dir("flip");
        let db = small_db(&dir);
        let good = db.catalog_to_bytes().unwrap();
        for pos in (0..good.len()).step_by(7) {
            let mut bad = good.clone();
            bad[pos] ^= 0x10;
            let store = FileBlobStore::open(&dir).unwrap();
            let r = MediaDb::catalog_from_bytes(store, &bad);
            assert!(
                matches!(r, Err(DbError::CorruptCatalog { .. })),
                "flip at {pos} not detected"
            );
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn salvage_recovers_prefix_and_reports_losses() {
        let dir = temp_dir("salvage");
        let db = small_db(&dir);
        let good = db.catalog_to_bytes().unwrap();

        // Clean bytes salvage cleanly.
        let store = FileBlobStore::open(&dir).unwrap();
        let (whole, report) = MediaDb::catalog_salvage_from_bytes(store, &good);
        assert!(report.is_clean(), "{report:?}");
        assert_eq!(whole.objects().len(), 1);
        assert_eq!(report.lost(), 0);

        // Truncate inside the derivation section: the object referencing
        // the lost derivation is dropped as dangling; nothing panics.
        for cut in (5..good.len()).step_by(13) {
            let store = FileBlobStore::open(&dir).unwrap();
            let (saved, report) = MediaDb::catalog_salvage_from_bytes(store, &good[..cut]);
            assert!(!report.is_clean(), "cut {cut}: {report:?}");
            for o in saved.objects() {
                match &o.origin {
                    Origin::Derived { derivation } => {
                        assert!(saved.derivation(*derivation).is_some());
                    }
                    Origin::Interpreted { .. } => panic!("no interpreted objects in this db"),
                }
            }
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn salvage_garbage_yields_empty_db_with_detail() {
        let dir = temp_dir("garbage");
        let store = FileBlobStore::open(&dir).unwrap();
        let (db, report) = MediaDb::catalog_salvage_from_bytes(store, b"not a catalog at all");
        assert!(db.objects().is_empty());
        assert!(!report.footer_ok);
        assert!(report.detail.is_some());
        assert_eq!(report.lost(), 0); // nothing was even claimed
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn legacy_v1_catalog_without_footer_loads() {
        // An empty version-1 catalog: header + five zero section counts.
        let mut v1 = Vec::new();
        v1.extend_from_slice(MAGIC);
        v1.push(1);
        v1.extend_from_slice(&[0u8; 20]);
        let dir = temp_dir("v1");
        let store = FileBlobStore::open(&dir).unwrap();
        let db = MediaDb::catalog_from_bytes(store, &v1).unwrap();
        assert!(db.objects().is_empty());

        // A version-2 header without a footer is damage, not legacy.
        let mut v2 = v1.clone();
        v2[4] = 2;
        let store = FileBlobStore::open(&dir).unwrap();
        assert!(matches!(
            MediaDb::catalog_from_bytes(store, &v2),
            Err(DbError::CorruptCatalog { .. })
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn save_is_footered_and_reopenable() {
        let dir = temp_dir("footer");
        let db = small_db(&dir);
        db.save().unwrap();
        let bytes = std::fs::read(dir.join(CATALOG_FILE)).unwrap();
        assert_eq!(&bytes[bytes.len() - 4..], FOOTER_MAGIC);
        assert!(verify_footer(&bytes).unwrap().is_some());
        let db2 = MediaDb::open(&dir).unwrap();
        assert_eq!(db2.objects().len(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
