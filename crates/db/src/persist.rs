//! Catalog persistence.
//!
//! The paper stresses that structural information "is crucial and the task
//! should not be left to applications" — losing an interpretation leaves
//! "meaningless data". Persistence therefore stores the *whole* catalog:
//! interpretations (descriptors, element tables), object records,
//! derivation objects and multimedia objects, in one compact binary file
//! next to the BLOBs of a [`tbm_blob::FileBlobStore`].
//!
//! Symbolic immediates (music, animation) persist too; bulk video/audio
//! immediates are rejected — continuous media belong in BLOBs with
//! interpretations, per the model.

use crate::record::{DerivationRecord, MediaObjectRecord, MultimediaRecord, Origin};
use crate::{DbError, MediaDb};
use std::collections::HashMap;
use std::io::{Read, Write};
use std::path::Path;
use tbm_blob::{BlobStore, ByteSpan, FileBlobStore};
use tbm_compose::{Component, ComponentKind, MultimediaObject, Region};
use tbm_core::{
    AttrValue, BlobId, DerivationId, ElementDescriptor, InterpretationId, MediaDescriptor,
    MediaKind, MediaObjectId, MultimediaObjectId,
};
use tbm_derive::{AnimClip, MediaValue, MusicClip, Node};
use tbm_interp::{ElementEntry, Interpretation, Placement, StreamInterp};
use tbm_media::animation::{MoveSpec, Point};
use tbm_media::midi::Note;
use tbm_time::{AllenRelation, Rational, TimeDelta, TimePoint, TimeSystem};

const MAGIC: &[u8; 4] = b"TBMC";
const VERSION: u8 = 1;

/// The catalog file name inside a database directory.
pub const CATALOG_FILE: &str = "catalog.tbm";

fn corrupt(detail: &str) -> DbError {
    DbError::Blob(tbm_blob::BlobError::Io(std::io::Error::new(
        std::io::ErrorKind::InvalidData,
        format!("corrupt catalog: {detail}"),
    )))
}

// ---------------------------------------------------------------------------
// Encoder / decoder primitives
// ---------------------------------------------------------------------------

struct Enc {
    out: Vec<u8>,
}

impl Enc {
    fn new() -> Enc {
        Enc {
            out: Vec::with_capacity(4096),
        }
    }

    fn u8(&mut self, v: u8) {
        self.out.push(v);
    }

    fn u32(&mut self, v: u32) {
        self.out.extend_from_slice(&v.to_le_bytes());
    }

    fn u64(&mut self, v: u64) {
        self.out.extend_from_slice(&v.to_le_bytes());
    }

    fn i64(&mut self, v: i64) {
        self.out.extend_from_slice(&v.to_le_bytes());
    }

    fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.out.extend_from_slice(s.as_bytes());
    }

    fn bytes(&mut self, b: &[u8]) {
        self.u32(b.len() as u32);
        self.out.extend_from_slice(b);
    }

    fn rational(&mut self, r: Rational) {
        self.i64(r.numer());
        self.i64(r.denom());
    }
}

struct Dec<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], DbError> {
        if self.pos + n > self.bytes.len() {
            return Err(corrupt("unexpected end"));
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, DbError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, DbError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("len")))
    }

    fn u64(&mut self) -> Result<u64, DbError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("len")))
    }

    fn i64(&mut self) -> Result<i64, DbError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().expect("len")))
    }

    fn str(&mut self) -> Result<String, DbError> {
        let n = self.u32()? as usize;
        String::from_utf8(self.take(n)?.to_vec()).map_err(|_| corrupt("invalid utf-8"))
    }

    fn blob(&mut self) -> Result<Vec<u8>, DbError> {
        let n = self.u32()? as usize;
        Ok(self.take(n)?.to_vec())
    }

    fn rational(&mut self) -> Result<Rational, DbError> {
        let num = self.i64()?;
        let den = self.i64()?;
        Rational::checked_new(num, den).map_err(|_| corrupt("invalid rational"))
    }
}

// ---------------------------------------------------------------------------
// Piecewise encodings
// ---------------------------------------------------------------------------

fn enc_attr(e: &mut Enc, v: &AttrValue) {
    match v {
        AttrValue::Int(i) => {
            e.u8(0);
            e.i64(*i);
        }
        AttrValue::Rational(r) => {
            e.u8(1);
            e.rational(*r);
        }
        AttrValue::Text(s) => {
            e.u8(2);
            e.str(s);
        }
        AttrValue::Bool(b) => {
            e.u8(3);
            e.u8(*b as u8);
        }
    }
}

fn dec_attr(d: &mut Dec) -> Result<AttrValue, DbError> {
    Ok(match d.u8()? {
        0 => AttrValue::Int(d.i64()?),
        1 => AttrValue::Rational(d.rational()?),
        2 => AttrValue::Text(d.str()?),
        3 => AttrValue::Bool(d.u8()? != 0),
        t => return Err(corrupt(&format!("attr tag {t}"))),
    })
}

fn kind_tag(k: MediaKind) -> u8 {
    match k {
        MediaKind::Image => 0,
        MediaKind::Audio => 1,
        MediaKind::Video => 2,
        MediaKind::Music => 3,
        MediaKind::Animation => 4,
        MediaKind::Text => 5,
    }
}

fn kind_from(tag: u8) -> Result<MediaKind, DbError> {
    Ok(match tag {
        0 => MediaKind::Image,
        1 => MediaKind::Audio,
        2 => MediaKind::Video,
        3 => MediaKind::Music,
        4 => MediaKind::Animation,
        5 => MediaKind::Text,
        t => return Err(corrupt(&format!("media kind {t}"))),
    })
}

fn enc_descriptor(e: &mut Enc, desc: &MediaDescriptor) {
    e.u8(kind_tag(desc.kind()));
    e.u32(desc.len() as u32);
    for (k, v) in desc.iter() {
        e.str(k);
        enc_attr(e, v);
    }
}

fn dec_descriptor(d: &mut Dec) -> Result<MediaDescriptor, DbError> {
    let kind = kind_from(d.u8()?)?;
    let n = d.u32()? as usize;
    let mut desc = MediaDescriptor::new(kind);
    for _ in 0..n {
        let k = d.str()?;
        let v = dec_attr(d)?;
        desc.set(&k, v);
    }
    Ok(desc)
}

fn enc_entry(e: &mut Enc, entry: &ElementEntry) {
    e.i64(entry.start);
    e.i64(entry.duration);
    let layers = entry.placement.layers();
    e.u8(layers.len() as u8);
    for s in layers {
        e.u64(s.offset);
        e.u64(s.len);
    }
    match &entry.descriptor {
        None => e.u8(0),
        Some(ed) => {
            e.u8(1);
            e.u32(ed.iter().count() as u32);
            for (k, v) in ed.iter() {
                e.str(k);
                enc_attr(e, v);
            }
        }
    }
    e.u8(entry.is_key as u8);
}

fn dec_entry(d: &mut Dec) -> Result<ElementEntry, DbError> {
    let start = d.i64()?;
    let duration = d.i64()?;
    let n_layers = d.u8()? as usize;
    if n_layers == 0 {
        return Err(corrupt("entry with zero layers"));
    }
    let mut spans = Vec::with_capacity(n_layers);
    for _ in 0..n_layers {
        let offset = d.u64()?;
        let len = d.u64()?;
        spans.push(ByteSpan::new(offset, len));
    }
    let descriptor = match d.u8()? {
        0 => None,
        1 => {
            let n = d.u32()? as usize;
            let mut pairs = Vec::with_capacity(n);
            for _ in 0..n {
                let k = d.str()?;
                let v = dec_attr(d)?;
                pairs.push((k, v));
            }
            Some(ElementDescriptor::from_pairs(pairs))
        }
        t => return Err(corrupt(&format!("descriptor tag {t}"))),
    };
    let is_key = d.u8()? != 0;
    let placement = Placement::layered(spans).expect("n_layers >= 1");
    let mut entry = ElementEntry {
        start,
        duration,
        size: placement.total_len(),
        placement,
        descriptor,
        is_key,
    };
    // `simple` constructor invariants are preserved by construction.
    entry.size = entry.placement.total_len();
    Ok(entry)
}

fn enc_interpretation(e: &mut Enc, interp: &Interpretation) {
    e.u64(interp.blob().raw());
    e.u32(interp.len() as u32);
    for (name, stream) in interp.streams() {
        e.str(name);
        enc_descriptor(e, stream.descriptor());
        e.rational(stream.system().frequency());
        e.u32(stream.len() as u32);
        for entry in stream.entries() {
            enc_entry(e, entry);
        }
    }
}

fn dec_interpretation(d: &mut Dec) -> Result<Interpretation, DbError> {
    let blob = BlobId::new(d.u64()?);
    let mut interp = Interpretation::new(blob);
    let n = d.u32()? as usize;
    for _ in 0..n {
        let name = d.str()?;
        let desc = dec_descriptor(d)?;
        let freq = d.rational()?;
        let system = TimeSystem::new(freq).map_err(|_| corrupt("bad frequency"))?;
        let n_entries = d.u32()? as usize;
        let mut entries = Vec::with_capacity(n_entries);
        for _ in 0..n_entries {
            entries.push(dec_entry(d)?);
        }
        let stream = StreamInterp::new(desc, system, entries)?;
        interp.add_stream(&name, stream)?;
    }
    Ok(interp)
}

fn enc_multimedia(e: &mut Enc, m: &MultimediaObject) {
    e.str(m.name());
    e.u32(m.components().len() as u32);
    for c in m.components() {
        e.str(&c.name);
        e.u8(match c.kind {
            ComponentKind::Video => 0,
            ComponentKind::Audio => 1,
        });
        e.bytes(&c.media.to_bytes());
        e.rational(c.interval.start().seconds());
        e.rational(c.interval.duration().seconds());
        match c.region {
            None => e.u8(0),
            Some(r) => {
                e.u8(1);
                e.i64(r.x as i64);
                e.i64(r.y as i64);
                e.u32(r.width);
                e.u32(r.height);
                e.i64(r.layer as i64);
            }
        }
    }
    e.u32(m.constraints().len() as u32);
    for sc in m.constraints() {
        e.str(&sc.a);
        e.str(&sc.b);
        let idx = AllenRelation::ALL
            .iter()
            .position(|r| *r == sc.relation)
            .expect("relation in ALL");
        e.u8(idx as u8);
    }
}

fn dec_multimedia(d: &mut Dec) -> Result<MultimediaObject, DbError> {
    let name = d.str()?;
    let mut m = MultimediaObject::new(&name);
    let n = d.u32()? as usize;
    for _ in 0..n {
        let cname = d.str()?;
        let kind = match d.u8()? {
            0 => ComponentKind::Video,
            1 => ComponentKind::Audio,
            t => return Err(corrupt(&format!("component kind {t}"))),
        };
        let media = Node::from_bytes(&d.blob()?)?;
        let start = TimePoint::from_seconds(d.rational()?);
        let dur = TimeDelta::from_seconds(d.rational()?);
        let mut component =
            Component::new(&cname, kind, media, start, dur).ok_or_else(|| corrupt("interval"))?;
        if d.u8()? == 1 {
            let x = d.i64()? as i32;
            let y = d.i64()? as i32;
            let w = d.u32()?;
            let h = d.u32()?;
            let layer = d.i64()? as i32;
            component = component.in_region(Region::new(x, y, w, h).at_layer(layer));
        }
        m.add_component(component)?;
    }
    let nc = d.u32()? as usize;
    for _ in 0..nc {
        let a = d.str()?;
        let b = d.str()?;
        let idx = d.u8()? as usize;
        let relation = *AllenRelation::ALL
            .get(idx)
            .ok_or_else(|| corrupt("relation index"))?;
        m.add_constraint(&a, relation, &b)?;
    }
    Ok(m)
}

fn enc_immediate(e: &mut Enc, v: &MediaValue) -> Result<(), DbError> {
    match v {
        MediaValue::Music(m) => {
            e.u8(0);
            e.u32(m.ppq);
            e.u32(m.tempo_bpm);
            e.u32(m.notes.len() as u32);
            for &(note, start, dur) in &m.notes {
                e.u8(note.channel);
                e.u8(note.key);
                e.u8(note.velocity);
                e.i64(start);
                e.i64(dur);
            }
            Ok(())
        }
        MediaValue::Animation(a) => {
            e.u8(1);
            e.rational(a.system.frequency());
            e.u32(a.width);
            e.u32(a.height);
            e.u32(a.background);
            e.u32(a.moves.len() as u32);
            for &(mv, start, dur) in &a.moves {
                e.u32(mv.object_id);
                e.i64(mv.from.x as i64);
                e.i64(mv.from.y as i64);
                e.i64(mv.to.x as i64);
                e.i64(mv.to.y as i64);
                e.u32(mv.size);
                e.u32(mv.color);
                e.i64(start);
                e.i64(dur);
            }
            Ok(())
        }
        other => Err(DbError::UnsupportedEncoding {
            name: "<immediate>".to_owned(),
            encoding: format!(
                "{} immediates are not persistable — capture continuous media into BLOBs",
                other.type_name()
            ),
        }),
    }
}

fn dec_immediate(d: &mut Dec) -> Result<MediaValue, DbError> {
    Ok(match d.u8()? {
        0 => {
            let ppq = d.u32()?;
            let tempo = d.u32()?;
            let n = d.u32()? as usize;
            let mut notes = Vec::with_capacity(n);
            for _ in 0..n {
                let channel = d.u8()?;
                let key = d.u8()?;
                let velocity = d.u8()?;
                let start = d.i64()?;
                let dur = d.i64()?;
                notes.push((Note::new(channel, key, velocity), start, dur));
            }
            MediaValue::Music(MusicClip::new(notes, ppq, tempo))
        }
        1 => {
            let freq = d.rational()?;
            let system = TimeSystem::new(freq).map_err(|_| corrupt("bad frequency"))?;
            let width = d.u32()?;
            let height = d.u32()?;
            let background = d.u32()?;
            let n = d.u32()? as usize;
            let mut moves = Vec::with_capacity(n);
            for _ in 0..n {
                let object_id = d.u32()?;
                let fx = d.i64()? as i32;
                let fy = d.i64()? as i32;
                let tx = d.i64()? as i32;
                let ty = d.i64()? as i32;
                let size = d.u32()?;
                let color = d.u32()?;
                let start = d.i64()?;
                let dur = d.i64()?;
                moves.push((
                    MoveSpec::new(object_id, Point::new(fx, fy), Point::new(tx, ty), size, color),
                    start,
                    dur,
                ));
            }
            MediaValue::Animation(AnimClip::new(moves, system, width, height, background))
        }
        t => return Err(corrupt(&format!("immediate tag {t}"))),
    })
}

// ---------------------------------------------------------------------------
// Top level
// ---------------------------------------------------------------------------

impl<S: BlobStore> MediaDb<S> {
    /// Serializes the catalog (everything except BLOB contents) to bytes.
    pub fn catalog_to_bytes(&self) -> Result<Vec<u8>, DbError> {
        let (interps, objects, derivations, multimedia) = self.parts();
        let mut e = Enc::new();
        e.out.extend_from_slice(MAGIC);
        e.u8(VERSION);

        e.u32(interps.len() as u32);
        for i in interps {
            enc_interpretation(&mut e, i);
        }

        e.u32(objects.len() as u32);
        for o in objects {
            e.str(&o.name);
            match &o.origin {
                Origin::Interpreted {
                    interpretation,
                    stream,
                } => {
                    e.u8(0);
                    e.u64(interpretation.raw());
                    e.str(stream);
                }
                Origin::Derived { derivation } => {
                    e.u8(1);
                    e.u64(derivation.raw());
                }
            }
        }

        e.u32(derivations.len() as u32);
        for rec in derivations {
            e.bytes(&rec.bytes);
        }

        e.u32(multimedia.len() as u32);
        for m in multimedia {
            enc_multimedia(&mut e, &m.object);
        }

        e.u32(self.immediates.len() as u32);
        let mut names: Vec<&String> = self.immediates.keys().collect();
        names.sort();
        for name in names {
            e.str(name);
            enc_immediate(&mut e, &self.immediates[name])?;
        }
        Ok(e.out)
    }

    /// Rebuilds a database from serialized catalog bytes and a BLOB store.
    pub fn catalog_from_bytes(store: S, bytes: &[u8]) -> Result<MediaDb<S>, DbError> {
        let mut d = Dec { bytes, pos: 0 };
        if d.take(4)? != MAGIC {
            return Err(corrupt("bad magic"));
        }
        if d.u8()? != VERSION {
            return Err(corrupt("unsupported version"));
        }

        let n = d.u32()? as usize;
        let mut interpretations = Vec::with_capacity(n);
        for _ in 0..n {
            interpretations.push(dec_interpretation(&mut d)?);
        }

        let n = d.u32()? as usize;
        let mut objects = Vec::with_capacity(n);
        for i in 0..n {
            let name = d.str()?;
            let origin = match d.u8()? {
                0 => Origin::Interpreted {
                    interpretation: InterpretationId::new(d.u64()?),
                    stream: d.str()?,
                },
                1 => Origin::Derived {
                    derivation: DerivationId::new(d.u64()?),
                },
                t => return Err(corrupt(&format!("origin tag {t}"))),
            };
            objects.push(MediaObjectRecord {
                id: MediaObjectId::new(i as u64),
                name,
                origin,
            });
        }

        let n = d.u32()? as usize;
        let mut derivations = Vec::with_capacity(n);
        for i in 0..n {
            let bytes = d.blob()?;
            let node = Node::from_bytes(&bytes)?;
            derivations.push(DerivationRecord {
                id: DerivationId::new(i as u64),
                node,
                bytes,
            });
        }

        let n = d.u32()? as usize;
        let mut multimedia = Vec::with_capacity(n);
        for i in 0..n {
            multimedia.push(MultimediaRecord {
                id: MultimediaObjectId::new(i as u64),
                object: dec_multimedia(&mut d)?,
            });
        }

        let n = d.u32()? as usize;
        let mut immediates = HashMap::with_capacity(n);
        for _ in 0..n {
            let name = d.str()?;
            immediates.insert(name, dec_immediate(&mut d)?);
        }

        if d.pos != bytes.len() {
            return Err(corrupt("trailing bytes"));
        }
        Ok(MediaDb::from_parts(
            store,
            interpretations,
            objects,
            derivations,
            multimedia,
            immediates,
        ))
    }
}

impl MediaDb<FileBlobStore> {
    /// Persists the catalog next to the BLOB files.
    pub fn save(&self) -> Result<(), DbError> {
        let path = self.store().dir().join(CATALOG_FILE);
        let bytes = self.catalog_to_bytes()?;
        let mut f = std::fs::File::create(path).map_err(tbm_blob::BlobError::Io)?;
        f.write_all(&bytes).map_err(tbm_blob::BlobError::Io)?;
        Ok(())
    }

    /// Opens a database directory: BLOBs plus the saved catalog (an empty
    /// catalog if none was saved yet).
    pub fn open(dir: impl AsRef<Path>) -> Result<MediaDb<FileBlobStore>, DbError> {
        let store = FileBlobStore::open(&dir)?;
        let path = store.dir().join(CATALOG_FILE);
        if !path.exists() {
            return Ok(MediaDb::with_store(store));
        }
        let mut bytes = Vec::new();
        std::fs::File::open(path)
            .map_err(tbm_blob::BlobError::Io)?
            .read_to_end(&mut bytes)
            .map_err(tbm_blob::BlobError::Io)?;
        MediaDb::catalog_from_bytes(store, &bytes)
    }
}
