//! Error type for the database layer.

use std::fmt;
use tbm_blob::BlobError;
use tbm_compose::ComposeError;
use tbm_derive::DeriveError;
use tbm_interp::InterpError;

/// Errors raised by the multimedia database.
#[derive(Debug)]
pub enum DbError {
    /// No media object with this name.
    NoSuchObject {
        /// The requested name.
        name: String,
    },
    /// An object with this name already exists.
    DuplicateObject {
        /// The conflicting name.
        name: String,
    },
    /// A derivation referenced an unregistered media object.
    UnknownDerivationInput {
        /// The missing input name.
        name: String,
    },
    /// The object's encoding is not one the database can materialize.
    UnsupportedEncoding {
        /// The object.
        name: String,
        /// The encoding attribute found.
        encoding: String,
    },
    /// A time-based retrieval addressed a moment with no element.
    NothingAtTime {
        /// The object queried.
        name: String,
    },
    /// Removal refused: other derived objects reference this one.
    HasDependents {
        /// The object whose removal was requested.
        name: String,
        /// The derived objects that reference it.
        dependents: Vec<String>,
    },
    /// Removal refused: the object is non-derived. Interpretations are
    /// "permanently associated" with their BLOBs (paper §4.1); originals
    /// are preserved, edits are derivations.
    NotDerived {
        /// The object whose removal was requested.
        name: String,
    },
    /// The persisted catalog failed validation: bad magic, damaged footer
    /// checksum, a truncated or malformed record. The file is not silently
    /// loaded; [`crate::MediaDb::salvage`] can recover the valid record
    /// prefix.
    CorruptCatalog {
        /// What failed to validate.
        detail: String,
    },
    /// Underlying interpretation failure.
    Interp(InterpError),
    /// Underlying BLOB failure.
    Blob(BlobError),
    /// Underlying derivation failure.
    Derive(DeriveError),
    /// Underlying composition failure.
    Compose(ComposeError),
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbError::NoSuchObject { name } => write!(f, "no media object named `{name}`"),
            DbError::DuplicateObject { name } => {
                write!(f, "media object `{name}` already exists")
            }
            DbError::UnknownDerivationInput { name } => {
                write!(f, "derivation references unregistered object `{name}`")
            }
            DbError::UnsupportedEncoding { name, encoding } => {
                write!(
                    f,
                    "object `{name}` has unmaterializable encoding `{encoding}`"
                )
            }
            DbError::NothingAtTime { name } => {
                write!(f, "no element of `{name}` at the requested time")
            }
            DbError::HasDependents { name, dependents } => {
                write!(
                    f,
                    "cannot remove `{name}`: derived objects {dependents:?} reference it"
                )
            }
            DbError::NotDerived { name } => {
                write!(
                    f,
                    "cannot remove non-derived object `{name}`: interpretations are \
                     permanently associated with their BLOBs"
                )
            }
            DbError::CorruptCatalog { detail } => write!(f, "corrupt catalog: {detail}"),
            DbError::Interp(e) => write!(f, "interpretation: {e}"),
            DbError::Blob(e) => write!(f, "blob: {e}"),
            DbError::Derive(e) => write!(f, "derivation: {e}"),
            DbError::Compose(e) => write!(f, "composition: {e}"),
        }
    }
}

impl std::error::Error for DbError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DbError::Interp(e) => Some(e),
            DbError::Blob(e) => Some(e),
            DbError::Derive(e) => Some(e),
            DbError::Compose(e) => Some(e),
            _ => None,
        }
    }
}

impl From<InterpError> for DbError {
    fn from(e: InterpError) -> DbError {
        DbError::Interp(e)
    }
}

impl From<BlobError> for DbError {
    fn from(e: BlobError) -> DbError {
        DbError::Blob(e)
    }
}

impl From<DeriveError> for DbError {
    fn from(e: DeriveError) -> DbError {
        DbError::Derive(e)
    }
}

impl From<ComposeError> for DbError {
    fn from(e: ComposeError) -> DbError {
        DbError::Compose(e)
    }
}
