//! The catalog: registration, lookup, queries, provenance.

use crate::record::{DerivationRecord, MediaObjectRecord, MultimediaRecord, Origin};
use crate::DbError;
use std::collections::HashMap;
use tbm_blob::{BlobStore, MemBlobStore};
use tbm_compose::MultimediaObject;
use tbm_core::{
    keys, AudioQuality, DerivationId, InterpretationId, MediaDescriptor, MediaObjectId,
    MultimediaObjectId, QualityFactor, VideoQuality,
};
use tbm_derive::{MediaValue, Node};
use tbm_interp::{Interpretation, StreamInterp};
use tbm_time::{TimeDelta, TimePoint};

/// One catalog object projected onto typed columns, for the query plane's
/// `scan(Objects)` source.
#[derive(Debug, Clone, PartialEq)]
pub struct ObjectColumns {
    /// The object's registered name.
    pub name: String,
    /// Media kind from the descriptor; `None` for derived objects.
    pub kind: Option<tbm_core::MediaKind>,
    /// Whether the object is the output of a derivation.
    pub derived: bool,
    /// The `encoding` descriptor attribute, when declared.
    pub codec: Option<String>,
    /// Elements in the backing stream (0 for derived objects).
    pub elements: u64,
    /// Encoded bytes of the backing stream (0 for derived objects).
    pub bytes: u64,
    /// Declared duration, when the descriptor carries one.
    pub duration: Option<TimeDelta>,
}

/// One stream interpretation projected onto typed columns, for the query
/// plane's `scan(Streams)` source.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamColumns {
    /// The owning object's name.
    pub object: String,
    /// The stream descriptor's media kind.
    pub kind: tbm_core::MediaKind,
    /// The `encoding` descriptor attribute, when declared.
    pub codec: Option<String>,
    /// Number of elements.
    pub elements: u64,
    /// Total encoded bytes.
    pub bytes: u64,
    /// First and last tick covered, `None` for empty streams.
    pub tick_span: Option<(i64, i64)>,
}

/// The multimedia database: a BLOB store plus the catalogs of
/// interpretations, media objects, derivation objects and multimedia
/// objects.
#[derive(Debug)]
pub struct MediaDb<S: BlobStore = MemBlobStore> {
    store: S,
    interpretations: Vec<Interpretation>,
    objects: Vec<MediaObjectRecord>,
    derivations: Vec<DerivationRecord>,
    multimedia: Vec<MultimediaRecord>,
    /// Symbolic non-derived values registered directly (music, animation).
    pub(crate) immediates: HashMap<String, MediaValue>,
}

impl MediaDb<MemBlobStore> {
    /// An in-memory database.
    pub fn new() -> MediaDb<MemBlobStore> {
        MediaDb::with_store(MemBlobStore::new())
    }
}

impl Default for MediaDb<MemBlobStore> {
    fn default() -> Self {
        MediaDb::new()
    }
}

impl<S: BlobStore> MediaDb<S> {
    /// A database over a caller-provided BLOB store (e.g. a
    /// [`tbm_blob::FileBlobStore`] for durability).
    pub fn with_store(store: S) -> MediaDb<S> {
        MediaDb {
            store,
            interpretations: Vec::new(),
            objects: Vec::new(),
            derivations: Vec::new(),
            multimedia: Vec::new(),
            immediates: HashMap::new(),
        }
    }

    /// The underlying BLOB store.
    pub fn store(&self) -> &S {
        &self.store
    }

    /// Crate-internal: raw catalog parts for persistence.
    pub(crate) fn parts(
        &self,
    ) -> (
        &[Interpretation],
        &[MediaObjectRecord],
        &[DerivationRecord],
        &[MultimediaRecord],
    ) {
        (
            &self.interpretations,
            &self.objects,
            &self.derivations,
            &self.multimedia,
        )
    }

    /// Crate-internal: rebuilds a database from persisted parts.
    pub(crate) fn from_parts(
        store: S,
        interpretations: Vec<Interpretation>,
        objects: Vec<MediaObjectRecord>,
        derivations: Vec<DerivationRecord>,
        multimedia: Vec<MultimediaRecord>,
        immediates: HashMap<String, MediaValue>,
    ) -> MediaDb<S> {
        MediaDb {
            store,
            interpretations,
            objects,
            derivations,
            multimedia,
            immediates,
        }
    }

    /// Mutable access to the BLOB store (for capture pipelines).
    pub fn store_mut(&mut self) -> &mut S {
        &mut self.store
    }

    fn check_free(&self, name: &str) -> Result<(), DbError> {
        if self.objects.iter().any(|o| o.name == name) || self.immediates.contains_key(name) {
            return Err(DbError::DuplicateObject {
                name: name.to_owned(),
            });
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Registration
    // ------------------------------------------------------------------

    /// Registers a BLOB's interpretation; every stream becomes a non-derived
    /// media object under its stream name.
    pub fn register_interpretation(
        &mut self,
        interp: Interpretation,
    ) -> Result<InterpretationId, DbError> {
        for (name, _) in interp.streams() {
            self.check_free(name)?;
        }
        let id = InterpretationId::new(self.interpretations.len() as u64);
        for (name, _) in interp.streams() {
            self.objects.push(MediaObjectRecord {
                id: MediaObjectId::new(self.objects.len() as u64),
                name: name.to_owned(),
                origin: Origin::Interpreted {
                    interpretation: id,
                    stream: name.to_owned(),
                },
            });
        }
        self.interpretations.push(interp);
        Ok(id)
    }

    /// Registers a symbolic non-derived value (music, animation) directly.
    pub fn register_value(&mut self, name: &str, value: MediaValue) -> Result<(), DbError> {
        self.check_free(name)?;
        self.immediates.insert(name.to_owned(), value);
        Ok(())
    }

    /// Registers a derived media object: stores the derivation object and
    /// creates the object record. All referenced sources must already be
    /// registered — this is the non-destructive edit entry point.
    pub fn create_derived(&mut self, name: &str, node: Node) -> Result<MediaObjectId, DbError> {
        self.check_free(name)?;
        for src in node.sources() {
            if !self.objects.iter().any(|o| o.name == src) && !self.immediates.contains_key(src) {
                return Err(DbError::UnknownDerivationInput {
                    name: src.to_owned(),
                });
            }
        }
        let derivation = DerivationId::new(self.derivations.len() as u64);
        let bytes = node.to_bytes();
        self.derivations.push(DerivationRecord {
            id: derivation,
            node,
            bytes,
        });
        let id = MediaObjectId::new(self.objects.len() as u64);
        self.objects.push(MediaObjectRecord {
            id,
            name: name.to_owned(),
            origin: Origin::Derived { derivation },
        });
        Ok(id)
    }

    /// Registers a multimedia object (the result of composition).
    pub fn add_multimedia(
        &mut self,
        object: MultimediaObject,
    ) -> Result<MultimediaObjectId, DbError> {
        object.validate()?;
        let id = MultimediaObjectId::new(self.multimedia.len() as u64);
        self.multimedia.push(MultimediaRecord { id, object });
        Ok(id)
    }

    /// Removes a *derived* media object.
    ///
    /// Refuses when other derived objects reference it (provenance
    /// protection) and always refuses for non-derived objects — the paper's
    /// discipline: originals are preserved; only derivations come and go.
    /// The derivation object itself is retained as history ("by storing
    /// derivation objects it is possible to keep track of … manipulations").
    pub fn remove_derived(&mut self, name: &str) -> Result<(), DbError> {
        let rec = self.object(name)?;
        if !rec.origin.is_derived() {
            return Err(DbError::NotDerived {
                name: name.to_owned(),
            });
        }
        let dependents: Vec<String> = self
            .derived_from(name)
            .into_iter()
            .map(str::to_owned)
            .collect();
        if !dependents.is_empty() {
            return Err(DbError::HasDependents {
                name: name.to_owned(),
                dependents,
            });
        }
        self.objects.retain(|o| o.name != name);
        Ok(())
    }

    // ------------------------------------------------------------------
    // Lookup
    // ------------------------------------------------------------------

    /// All media object records.
    pub fn objects(&self) -> &[MediaObjectRecord] {
        &self.objects
    }

    /// Media object names in registration order — the shard-stable
    /// iteration a sharded catalog concatenates per shard. Symbolic
    /// immediates are not listed (they have no stream to serve).
    pub fn object_names(&self) -> impl Iterator<Item = &str> {
        self.objects.iter().map(|o| o.name.as_str())
    }

    /// Whether `name` is a registered media object (interpreted or
    /// derived; symbolic immediates count too).
    pub fn contains_object(&self, name: &str) -> bool {
        self.objects.iter().any(|o| o.name == name) || self.immediates.contains_key(name)
    }

    /// Looks up a media object record by name.
    pub fn object(&self, name: &str) -> Result<&MediaObjectRecord, DbError> {
        self.objects
            .iter()
            .find(|o| o.name == name)
            .ok_or_else(|| DbError::NoSuchObject {
                name: name.to_owned(),
            })
    }

    /// An interpretation by id.
    pub fn interpretation(&self, id: InterpretationId) -> Option<&Interpretation> {
        self.interpretations.get(id.raw() as usize)
    }

    /// All interpretations.
    pub fn interpretations(&self) -> &[Interpretation] {
        &self.interpretations
    }

    /// The stream interpretation behind a non-derived object.
    pub fn stream_of(&self, name: &str) -> Result<(&Interpretation, &StreamInterp), DbError> {
        let rec = self.object(name)?;
        match &rec.origin {
            Origin::Interpreted {
                interpretation,
                stream,
            } => {
                let interp = self
                    .interpretation(*interpretation)
                    .expect("registered interpretation exists");
                Ok((interp, interp.stream(stream)?))
            }
            Origin::Derived { .. } => Err(DbError::NoSuchObject {
                name: format!("{name} (derived: no stream interpretation)"),
            }),
        }
    }

    /// The media descriptor of an object, when it has one (non-derived
    /// objects always do).
    pub fn descriptor(&self, name: &str) -> Option<&MediaDescriptor> {
        let rec = self.objects.iter().find(|o| o.name == name)?;
        match &rec.origin {
            Origin::Interpreted {
                interpretation,
                stream,
            } => self
                .interpretation(*interpretation)
                .and_then(|i| i.stream(stream).ok())
                .map(|s| s.descriptor()),
            Origin::Derived { .. } => None,
        }
    }

    /// A stored derivation record.
    pub fn derivation(&self, id: DerivationId) -> Option<&DerivationRecord> {
        self.derivations.get(id.raw() as usize)
    }

    /// All stored derivation records.
    pub fn derivations(&self) -> &[DerivationRecord] {
        &self.derivations
    }

    /// A multimedia object by name.
    pub fn multimedia(&self, name: &str) -> Option<&MultimediaRecord> {
        self.multimedia.iter().find(|m| m.object.name() == name)
    }

    /// All multimedia objects.
    pub fn multimedia_objects(&self) -> &[MultimediaRecord] {
        &self.multimedia
    }

    // ------------------------------------------------------------------
    // The §1.2 query surface
    // ------------------------------------------------------------------

    /// "Select a specific sound track": audio objects whose `language`
    /// descriptor attribute equals `lang`.
    pub fn audio_tracks_by_language(&self, lang: &str) -> Vec<&str> {
        self.objects
            .iter()
            .filter(|o| {
                self.descriptor(&o.name)
                    .and_then(|d| d.get_text(keys::LANGUAGE))
                    .map(|l| l == lang)
                    .unwrap_or(false)
            })
            .map(|o| o.name.as_str())
            .collect()
    }

    /// "Select a specific duration": objects whose declared duration is at
    /// least `min`.
    pub fn objects_with_duration_at_least(&self, min: TimeDelta) -> Vec<&str> {
        self.objects
            .iter()
            .filter(|o| {
                self.descriptor(&o.name)
                    .and_then(|d| d.duration())
                    .map(|dur| dur >= min)
                    .unwrap_or(false)
            })
            .map(|o| o.name.as_str())
            .collect()
    }

    /// Video objects whose quality factor is at least `min`.
    pub fn videos_with_quality_at_least(&self, min: VideoQuality) -> Vec<&str> {
        self.objects_with_quality(|q| matches!(q, QualityFactor::Video(v) if v >= min))
    }

    /// Audio objects whose quality factor is at least `min`.
    pub fn audio_with_quality_at_least(&self, min: AudioQuality) -> Vec<&str> {
        self.objects_with_quality(|q| matches!(q, QualityFactor::Audio(a) if a >= min))
    }

    fn objects_with_quality(&self, pred: impl Fn(QualityFactor) -> bool) -> Vec<&str> {
        self.objects
            .iter()
            .filter(|o| {
                self.descriptor(&o.name)
                    .and_then(|d| d.quality())
                    .map(&pred)
                    .unwrap_or(false)
            })
            .map(|o| o.name.as_str())
            .collect()
    }

    /// Objects of a given media kind (judged by their descriptors; derived
    /// objects without descriptors are excluded).
    pub fn objects_of_kind(&self, kind: tbm_core::MediaKind) -> Vec<&str> {
        self.objects
            .iter()
            .filter(|o| {
                self.descriptor(&o.name)
                    .map(|d| d.kind() == kind)
                    .unwrap_or(false)
            })
            .map(|o| o.name.as_str())
            .collect()
    }

    // ------------------------------------------------------------------
    // Typed column access (the query plane's scan sources)
    // ------------------------------------------------------------------

    /// Every catalog object projected onto typed columns — the row set a
    /// `scan(Objects)` query filters. Derived objects appear with no kind,
    /// codec or stream geometry (they have no descriptor of their own).
    pub fn object_columns(&self) -> Vec<ObjectColumns> {
        self.objects
            .iter()
            .map(|o| {
                let derived = matches!(o.origin, Origin::Derived { .. });
                let desc = self.descriptor(&o.name);
                let stream = self.stream_of(&o.name).ok();
                ObjectColumns {
                    name: o.name.clone(),
                    kind: desc.map(MediaDescriptor::kind),
                    derived,
                    codec: desc
                        .and_then(|d| d.get_text(keys::ENCODING))
                        .map(str::to_owned),
                    elements: stream.map_or(0, |(_, s)| s.len() as u64),
                    bytes: stream.map_or(0, |(_, s)| s.total_bytes()),
                    duration: desc.and_then(MediaDescriptor::duration),
                }
            })
            .collect()
    }

    /// Every non-derived object's stream interpretation projected onto
    /// typed columns — the row set a `scan(Streams)` query filters.
    pub fn stream_columns(&self) -> Vec<StreamColumns> {
        self.objects
            .iter()
            .filter_map(|o| {
                let (_, stream) = self.stream_of(&o.name).ok()?;
                let desc = stream.descriptor();
                Some(StreamColumns {
                    object: o.name.clone(),
                    kind: desc.kind(),
                    codec: desc.get_text(keys::ENCODING).map(str::to_owned),
                    elements: stream.len() as u64,
                    bytes: stream.total_bytes(),
                    tick_span: stream.tick_span(),
                })
            })
            .collect()
    }

    /// Objects whose descriptor `category` line mentions `category_name`
    /// (e.g. `"uniform"`, `"event-based"`) — querying the Figure 1 taxonomy.
    pub fn objects_in_category(&self, category_name: &str) -> Vec<&str> {
        self.objects
            .iter()
            .filter(|o| {
                self.descriptor(&o.name)
                    .and_then(|d| d.get_text(keys::CATEGORY))
                    .map(|c| c.split(", ").any(|part| part == category_name))
                    .unwrap_or(false)
            })
            .map(|o| o.name.as_str())
            .collect()
    }

    /// Time-based retrieval: the encoded bytes of the element of `name`
    /// active at `t` (relative to the stream's own origin).
    pub fn element_bytes_at(&self, name: &str, t: TimePoint) -> Result<Vec<u8>, DbError> {
        self.element_bytes_at_fidelity(name, t, None)
    }

    /// "Retrieve frames at a specific visual fidelity": like
    /// [`MediaDb::element_bytes_at`] but reading only the first `layers`
    /// placement layers of scalable elements.
    pub fn element_bytes_at_fidelity(
        &self,
        name: &str,
        t: TimePoint,
        layers: Option<usize>,
    ) -> Result<Vec<u8>, DbError> {
        let (interp, stream) = self.stream_of(name)?;
        let tick = stream.system().seconds_to_tick_floor(t);
        let idx = stream
            .element_at(tick)
            .map_err(|_| DbError::NothingAtTime {
                name: name.to_owned(),
            })?;
        let bytes = match layers {
            None => stream.read_element(&self.store, interp.blob(), idx)?,
            Some(n) => stream.read_element_layers(&self.store, interp.blob(), idx, n)?,
        };
        Ok(bytes)
    }

    // ------------------------------------------------------------------
    // Provenance
    // ------------------------------------------------------------------

    /// The derivation expression behind a derived object.
    pub fn provenance(&self, name: &str) -> Result<Option<&Node>, DbError> {
        let rec = self.object(name)?;
        Ok(match &rec.origin {
            Origin::Derived { derivation } => {
                Some(&self.derivation(*derivation).expect("registered").node)
            }
            Origin::Interpreted { .. } => None,
        })
    }

    /// All derived objects that reference `source` (directly or through
    /// intermediate derived objects) — "keep track of, and query,
    /// manipulations to media objects."
    pub fn derived_from(&self, source: &str) -> Vec<&str> {
        let mut out = Vec::new();
        for o in &self.objects {
            if o.name == source {
                continue;
            }
            if self.mentions(&o.name, source) {
                out.push(o.name.as_str());
            }
        }
        out
    }

    fn mentions(&self, object: &str, source: &str) -> bool {
        let Ok(Some(node)) = self.provenance(object) else {
            return false;
        };
        node.sources()
            .iter()
            .any(|s| *s == source || self.mentions(s, source))
    }

    /// Total bytes the database stores for a derived object (its derivation
    /// object only — the E6 storage comparison).
    pub fn derivation_storage_bytes(&self, name: &str) -> Result<u64, DbError> {
        let rec = self.object(name)?;
        match &rec.origin {
            Origin::Derived { derivation } => Ok(self
                .derivation(*derivation)
                .expect("registered")
                .bytes
                .len() as u64),
            Origin::Interpreted { .. } => Ok(0),
        }
    }
}
