//! # tbm-db — the multimedia database facade
//!
//! Ties the four layers of the paper's Fig. 5 into one catalog:
//!
//! ```text
//! multimedia object   ←  temporal composition   (tbm-compose)
//! media objects (derived)  ←  derivation        (tbm-derive)
//! media objects (non-derived)  ←  interpretation (tbm-interp)
//! BLOB                                          (tbm-blob)
//! ```
//!
//! [`MediaDb`] registers BLOBs with their interpretations, derived objects
//! with their derivation objects, and multimedia objects with their
//! components — and answers the §1.2 queries that motivated the model:
//!
//! > *"If the movie is represented structurally … it is possible to issue
//! > queries which select a specific sound track, or select a specific
//! > duration, or perhaps retrieve frames at a specific visual fidelity."*
//!
//! Editing is non-destructive throughout: an edit registers a derivation
//! object (an edit list); BLOBs are never rewritten. Provenance queries
//! ("by storing derivation objects it is possible to keep track of, and
//! query, manipulations to media objects") walk the derivation references.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod catalog;
mod error;
mod materialize;
mod persist;
mod record;

pub use catalog::{MediaDb, ObjectColumns, StreamColumns};
pub use error::DbError;
pub use persist::{SalvageReport, SectionSalvage, CATALOG_FILE, CATALOG_TMP};
pub use record::{DerivationRecord, MediaObjectRecord, MultimediaRecord, Origin};
