//! Catalog records.

use tbm_compose::MultimediaObject;
use tbm_core::{DerivationId, InterpretationId, MediaObjectId, MultimediaObjectId};
use tbm_derive::Node;

/// Where a media object's elements come from (the Fig. 4(a) edges).
#[derive(Debug, Clone, PartialEq)]
pub enum Origin {
    /// Non-derived: interpreted from a BLOB (`InterpretationOf` + `By`).
    Interpreted {
        /// The interpretation mapping the BLOB.
        interpretation: InterpretationId,
        /// The stream name within the interpretation.
        stream: String,
    },
    /// Derived: computed by a derivation object (`Extract`/`Composite` …).
    Derived {
        /// The stored derivation object.
        derivation: DerivationId,
    },
}

impl Origin {
    /// `true` for derived objects (shaded in the paper's instance diagram).
    pub fn is_derived(&self) -> bool {
        matches!(self, Origin::Derived { .. })
    }
}

/// One media object in the catalog.
#[derive(Debug, Clone, PartialEq)]
pub struct MediaObjectRecord {
    /// The object's id.
    pub id: MediaObjectId,
    /// Its unique name (`video1`, `videoF`, …).
    pub name: String,
    /// Where its elements come from.
    pub origin: Origin,
}

/// One stored derivation object.
#[derive(Debug, Clone, PartialEq)]
pub struct DerivationRecord {
    /// The derivation object's id.
    pub id: DerivationId,
    /// The expression (operator, parameters, input references).
    pub node: Node,
    /// Serialized form (what the database persists); its length is the
    /// derivation object's storage footprint.
    pub bytes: Vec<u8>,
}

/// One stored multimedia object.
#[derive(Debug, Clone, PartialEq)]
pub struct MultimediaRecord {
    /// The multimedia object's id.
    pub id: MultimediaObjectId,
    /// The composed object.
    pub object: MultimediaObject,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn origin_classification() {
        let a = Origin::Interpreted {
            interpretation: InterpretationId::new(0),
            stream: "video1".into(),
        };
        let b = Origin::Derived {
            derivation: DerivationId::new(3),
        };
        assert!(!a.is_derived());
        assert!(b.is_derived());
    }
}
