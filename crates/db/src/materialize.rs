//! Materialization: turning catalog objects into runtime media values.
//!
//! Non-derived objects decode out of their BLOBs according to the
//! `encoding` descriptor attribute; derived objects expand their derivation
//! trees after recursively materializing the sources. This realizes the
//! paper's Fig. 5 bottom-up path on demand.

use crate::record::Origin;
use crate::{DbError, MediaDb};
use tbm_blob::BlobStore;
use tbm_codec::interframe::GopParams;
use tbm_codec::{adpcm, dct};
use tbm_core::keys;
use tbm_derive::{AudioClip, Expander, MediaValue, Node, VideoClip};
use tbm_interp::{capture, Interpretation, StreamInterp};
use tbm_media::AudioBuffer;
use tbm_time::Rational;

impl<S: BlobStore> MediaDb<S> {
    /// Materializes a media object to a runtime [`MediaValue`], decoding or
    /// expanding as its origin requires.
    pub fn materialize(&self, name: &str) -> Result<MediaValue, DbError> {
        if let Some(v) = self.immediates.get(name) {
            return Ok(v.clone());
        }
        let rec = self.object(name)?;
        match &rec.origin {
            Origin::Interpreted { .. } => {
                let (interp, stream) = self.stream_of(name)?;
                self.decode_stream(name, interp, stream)
            }
            Origin::Derived { derivation } => {
                let node = self
                    .derivation(*derivation)
                    .expect("registered")
                    .node
                    .clone();
                let expander = self.expander_for(&node)?;
                Ok(expander.expand(&node)?)
            }
        }
    }

    /// Builds an expander whose sources are the materialized transitive
    /// inputs of `node` ("expansion" per Definition 6).
    pub fn expander_for(&self, node: &Node) -> Result<Expander, DbError> {
        let mut expander = Expander::new();
        for src in node.sources() {
            // A source may itself be derived; materialize recursively.
            expander.add_source(src, self.materialize(src)?);
        }
        Ok(expander)
    }

    /// Decodes a non-derived stream according to its `encoding` attribute.
    fn decode_stream(
        &self,
        name: &str,
        interp: &Interpretation,
        stream: &StreamInterp,
    ) -> Result<MediaValue, DbError> {
        let desc = stream.descriptor();
        let encoding = desc.get_text(keys::ENCODING).unwrap_or("").to_owned();
        let blob = interp.blob();
        match encoding.as_str() {
            "PCM" => {
                let channels = desc.get_int(keys::CHANNELS).unwrap_or(1).max(1) as u16;
                let rate = desc.get_int(keys::SAMPLE_RATE).unwrap_or(44_100) as u32;
                let mut all = Vec::new();
                for i in 0..stream.len() {
                    all.extend(stream.read_element(self.store(), blob, i)?);
                }
                let buffer = AudioBuffer::from_bytes(channels, &all).ok_or(
                    DbError::UnsupportedEncoding {
                        name: name.to_owned(),
                        encoding: encoding.clone(),
                    },
                )?;
                Ok(MediaValue::Audio(AudioClip::new(buffer, rate)))
            }
            "ADPCM" => {
                let rate = desc.get_int(keys::SAMPLE_RATE).unwrap_or(44_100) as u32;
                let mut blocks = Vec::with_capacity(stream.len());
                for i in 0..stream.len() {
                    let bytes = stream.read_element(self.store(), blob, i)?;
                    blocks.push(
                        adpcm::AdpcmBlock::from_bytes(&bytes)
                            .map_err(|e| DbError::Interp(tbm_interp::InterpError::Codec(e)))?,
                    );
                }
                let buffer = adpcm::decode_blocks(&blocks)
                    .map_err(|e| DbError::Interp(tbm_interp::InterpError::Codec(e)))?;
                Ok(MediaValue::Audio(AudioClip::new(buffer, rate)))
            }
            "YUV 8:2:2, JPEG" | "YUV 8:2:2, layered DCT" => {
                // Intraframe: each element decodes independently. For
                // layered elements the full read is `[base][enhancement]`,
                // which the layered decoder understands via the placement.
                let mut frames = Vec::with_capacity(stream.len());
                for i in 0..stream.len() {
                    let entry = stream.entry(i)?;
                    if entry.placement.layer_count() == 1 {
                        let bytes = stream.read_element(self.store(), blob, i)?;
                        frames.push(
                            dct::decode_frame(&bytes)
                                .map_err(|e| DbError::Interp(tbm_interp::InterpError::Codec(e)))?,
                        );
                    } else {
                        let w = desc.get_int(keys::FRAME_WIDTH).unwrap_or(0) as u32;
                        let h = desc.get_int(keys::FRAME_HEIGHT).unwrap_or(0) as u32;
                        let quant = desc.get_int(capture::QUANT_KEY).unwrap_or(100) as u16;
                        let base = stream.read_element_layers(self.store(), blob, i, 1)?;
                        let full = stream.read_element(self.store(), blob, i)?;
                        let lf = tbm_codec::scalable::LayeredFrame {
                            width: w,
                            height: h,
                            quant_percent: quant,
                            base: base.clone(),
                            enhancement: full[base.len()..].to_vec(),
                        };
                        frames.push(
                            tbm_codec::scalable::decode_full(&lf)
                                .map_err(|e| DbError::Interp(tbm_interp::InterpError::Codec(e)))?,
                        );
                    }
                }
                Ok(MediaValue::Video(VideoClip::new(frames, stream.system())))
            }
            "YUV 8:2:2, interframe GOP" => {
                let w = desc.get_int(keys::FRAME_WIDTH).unwrap_or(0) as u32;
                let h = desc.get_int(keys::FRAME_HEIGHT).unwrap_or(0) as u32;
                let quant = desc.get_int(capture::QUANT_KEY).unwrap_or(100) as u16;
                let params = GopParams {
                    dct: tbm_codec::dct::DctParams::with_quant(quant),
                    ..GopParams::default()
                };
                let seq = capture::reassemble_interframe(self.store(), blob, stream, params, w, h)?;
                let frames = tbm_codec::interframe::decode_sequence(&seq)
                    .map_err(|e| DbError::Interp(tbm_interp::InterpError::Codec(e)))?;
                Ok(MediaValue::Video(VideoClip::new(frames, stream.system())))
            }
            other => Err(DbError::UnsupportedEncoding {
                name: name.to_owned(),
                encoding: other.to_owned(),
            }),
        }
    }

    /// The storage footprint, in bytes, of a media object as the database
    /// holds it: mapped BLOB bytes for non-derived objects, the derivation
    /// object's size for derived ones. This is the quantity the E6
    /// experiment compares.
    pub fn stored_bytes(&self, name: &str) -> Result<u64, DbError> {
        if self.immediates.contains_key(name) {
            // Approximate symbolic values by their materialized size.
            return Ok(self.materialize(name)?.approx_bytes());
        }
        let rec = self.object(name)?;
        match &rec.origin {
            Origin::Interpreted { .. } => {
                let (_, stream) = self.stream_of(name)?;
                Ok(stream.total_bytes())
            }
            Origin::Derived { .. } => self.derivation_storage_bytes(name),
        }
    }

    /// The average data rate declared for (or derivable from) an object's
    /// descriptor, in bytes/second.
    pub fn average_data_rate(&self, name: &str) -> Option<Rational> {
        self.descriptor(name)?.get_rational(keys::AVG_DATA_RATE)
    }
}
