//! Persistence round-trip: a fully populated database survives
//! save → close → open with every layer intact.

use tbm_codec::dct::DctParams;
use tbm_compose::{Component, ComponentKind, MultimediaObject, Region};
use tbm_core::{keys, QualityFactor, VideoQuality};
use tbm_db::{DbError, MediaDb, CATALOG_FILE};
use tbm_derive::{EditCut, MediaValue, MusicClip, Node, Op};
use tbm_interp::capture;
use tbm_media::gen::{major_scale, AudioSignal, VideoPattern};
use tbm_time::{AllenRelation, Rational, TimeDelta, TimePoint, TimeSystem};

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("tbm-persist-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn populate(db: &mut MediaDb<tbm_blob::FileBlobStore>) {
    // A captured AV clip (interleaved BLOB + interpretation).
    let frames = tbm_media::gen::render_frames(VideoPattern::MovingBar, 0, 10, 64, 48);
    let audio = AudioSignal::Sine {
        hz: 440.0,
        amplitude: 9000,
    }
    .generate(0, 10 * 1764, 44_100, 2);
    let cap = capture::capture_av_interleaved(
        db.store_mut(),
        &frames,
        &audio,
        1764,
        TimeSystem::PAL,
        DctParams::default(),
        Some(QualityFactor::Video(VideoQuality::Vhs)),
    )
    .unwrap();
    db.register_interpretation(cap.interpretation).unwrap();

    // An ADPCM capture (heterogeneous element descriptors must survive).
    let (_, adpcm_interp) = capture::capture_audio_adpcm(
        db.store_mut(),
        &AudioSignal::Chirp {
            from_hz: 100.0,
            to_hz: 2000.0,
            sweep_frames: 4096,
            amplitude: 10_000,
        }
        .generate(0, 4096, 44_100, 1),
        44_100,
        1024,
    )
    .unwrap();
    let mut renamed = tbm_interp::Interpretation::new(adpcm_interp.blob());
    renamed
        .add_stream("adpcm1", adpcm_interp.stream("audio1").unwrap().clone())
        .unwrap();
    db.register_interpretation(renamed).unwrap();

    // A scalable capture (layered placements must survive).
    let (_, sc) = capture::capture_video_scalable(
        db.store_mut(),
        &tbm_media::gen::render_frames(VideoPattern::ShiftingGradient, 0, 4, 64, 48),
        TimeSystem::PAL,
        DctParams::default(),
    )
    .unwrap();
    let mut renamed = tbm_interp::Interpretation::new(sc.blob());
    renamed
        .add_stream("layered1", sc.stream("video1").unwrap().clone())
        .unwrap();
    db.register_interpretation(renamed).unwrap();

    // A symbolic immediate and derivations over everything.
    db.register_value(
        "score",
        MediaValue::Music(MusicClip::new(major_scale(0, 60, 1, 480, 400), 480, 120)),
    )
    .unwrap();
    db.create_derived(
        "teaser",
        Node::derive(
            Op::VideoEdit {
                cuts: vec![EditCut {
                    input: 0,
                    from: 2,
                    to: 8,
                }],
            },
            vec![Node::source("video1")],
        ),
    )
    .unwrap();
    db.create_derived(
        "score_audio",
        Node::derive(
            Op::MidiSynthesize {
                sample_rate: 22_050,
                tempo_bpm: 0,
                gain_num: 256,
            },
            vec![Node::source("score")],
        ),
    )
    .unwrap();

    // A multimedia object with constraints and a spatial region.
    let mut m = MultimediaObject::new("m");
    m.add_component(
        Component::new(
            "teaser",
            ComponentKind::Video,
            Node::source("teaser"),
            TimePoint::ZERO,
            TimeDelta::from_seconds(Rational::new(6, 25)),
        )
        .unwrap()
        .in_region(Region::new(4, 4, 32, 24).at_layer(2)),
    )
    .unwrap();
    m.add_component(
        Component::new(
            "audio1",
            ComponentKind::Audio,
            Node::source("audio1"),
            TimePoint::ZERO,
            TimeDelta::from_seconds(Rational::new(6, 25)),
        )
        .unwrap(),
    )
    .unwrap();
    m.add_constraint("audio1", AllenRelation::Equals, "teaser")
        .unwrap();
    db.add_multimedia(m).unwrap();
}

#[test]
fn full_round_trip() {
    let dir = temp_dir("roundtrip");
    {
        let mut db = MediaDb::open(&dir).unwrap();
        populate(&mut db);
        db.save().unwrap();
    }
    let db = MediaDb::open(&dir).unwrap();

    // Objects, interpretations, derivations, multimedia all restored.
    assert_eq!(db.objects().len(), 6); // video1 audio1 adpcm1 layered1 teaser score_audio
    assert_eq!(db.interpretations().len(), 3);
    assert!(db.multimedia("m").is_some());

    // Descriptors intact, including quality factors and rationals.
    let vd = db.descriptor("video1").unwrap();
    assert_eq!(vd.get_text(keys::QUALITY_FACTOR), Some("VHS quality"));
    assert_eq!(vd.get_rational(keys::FRAME_RATE), Some(Rational::from(25)));
    assert!(vd.get_rational(keys::AVG_DATA_RATE).is_some());

    // Element tables work: time-based retrieval decodes.
    let bytes = db
        .element_bytes_at("video1", TimePoint::from_seconds(Rational::new(1, 5)))
        .unwrap();
    assert!(tbm_codec::dct::decode_frame(&bytes).is_ok());

    // Heterogeneous element descriptors survive.
    let (_, adpcm) = db.stream_of("adpcm1").unwrap();
    assert!(adpcm.entries()[0].descriptor.is_some());
    assert_ne!(adpcm.entries()[0].descriptor, adpcm.entries()[3].descriptor);

    // Layered placements survive: fidelity read still smaller.
    let base = db
        .element_bytes_at_fidelity("layered1", TimePoint::ZERO, Some(1))
        .unwrap();
    let full = db.element_bytes_at("layered1", TimePoint::ZERO).unwrap();
    assert!(base.len() < full.len());

    // Derivations still expand (including over the persisted immediate).
    match db.materialize("teaser").unwrap() {
        MediaValue::Video(v) => assert_eq!(v.len(), 6),
        _ => panic!(),
    }
    match db.materialize("score_audio").unwrap() {
        MediaValue::Audio(a) => assert!(a.buffer.peak() > 1000),
        _ => panic!(),
    }
    assert_eq!(db.derived_from("video1"), vec!["teaser"]);

    // The multimedia object's placements, region and constraint survive.
    let m = &db.multimedia("m").unwrap().object;
    assert_eq!(m.components().len(), 2);
    let teaser = m.component("teaser").unwrap();
    assert_eq!(teaser.region.unwrap().layer, 2);
    assert_eq!(m.constraints().len(), 1);
    m.validate().unwrap();

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn bytes_round_trip_in_memory() {
    // Serialization is store-agnostic: bytes round-trip over a MemBlobStore
    // database too (the store is supplied separately).
    let dir = temp_dir("membytes");
    let mut db = MediaDb::open(&dir).unwrap();
    populate(&mut db);
    let bytes = db.catalog_to_bytes().unwrap();
    let store2 = tbm_blob::FileBlobStore::open(&dir).unwrap();
    let db2 = MediaDb::catalog_from_bytes(store2, &bytes).unwrap();
    assert_eq!(db2.objects().len(), db.objects().len());
    assert_eq!(db2.catalog_to_bytes().unwrap(), bytes); // stable re-encode
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn corrupt_catalogs_rejected_not_panicked() {
    let dir = temp_dir("corrupt");
    {
        let mut db = MediaDb::open(&dir).unwrap();
        populate(&mut db);
        db.save().unwrap();
    }
    let path = dir.join(CATALOG_FILE);
    let good = std::fs::read(&path).unwrap();
    // Truncations at every prefix length must error, never panic.
    for cut in (0..good.len()).step_by(97) {
        let store = tbm_blob::FileBlobStore::open(&dir).unwrap();
        let r = MediaDb::catalog_from_bytes(store, &good[..cut]);
        assert!(r.is_err(), "prefix {cut} unexpectedly parsed");
    }
    // Bad magic.
    let mut bad = good.clone();
    bad[0] = b'X';
    let store = tbm_blob::FileBlobStore::open(&dir).unwrap();
    assert!(MediaDb::catalog_from_bytes(store, &bad).is_err());
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn continuous_immediates_refuse_to_persist() {
    let dir = temp_dir("refuse");
    let mut db = MediaDb::open(&dir).unwrap();
    db.register_value(
        "bulk",
        MediaValue::Audio(tbm_derive::AudioClip::new(
            tbm_media::AudioBuffer::silence(2, 100),
            44_100,
        )),
    )
    .unwrap();
    assert!(matches!(
        db.catalog_to_bytes(),
        Err(DbError::UnsupportedEncoding { .. })
    ));
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn open_empty_directory_gives_empty_db() {
    let dir = temp_dir("empty");
    let db = MediaDb::open(&dir).unwrap();
    assert!(db.objects().is_empty());
    assert!(db.interpretations().is_empty());
    std::fs::remove_dir_all(&dir).unwrap();
}
