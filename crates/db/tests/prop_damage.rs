//! Property tests: a damaged `catalog.tbm` must **never panic** — every
//! truncation or bit-flip either loads cleanly, salvages a valid record
//! prefix, or yields a typed [`DbError`]. The whole-file footer means a
//! strict load must *detect* any damage rather than silently returning a
//! wrong catalog.

use proptest::prelude::*;
use std::sync::OnceLock;
use tbm_blob::MemBlobStore;
use tbm_codec::dct::DctParams;
use tbm_core::{QualityFactor, VideoQuality};
use tbm_db::{DbError, MediaDb};
use tbm_derive::{MediaValue, MusicClip, Node, Op};
use tbm_interp::capture;
use tbm_media::gen::{major_scale, AudioSignal, VideoPattern};
use tbm_time::TimeSystem;

/// One good catalog, built once: an AV interpretation (element tables with
/// checksums), an immediate, and a derived object — every section populated
/// except multimedia.
fn good_catalog() -> &'static [u8] {
    static BYTES: OnceLock<Vec<u8>> = OnceLock::new();
    BYTES.get_or_init(|| {
        let mut db = MediaDb::new();
        let frames = tbm_media::gen::render_frames(VideoPattern::MovingBar, 0, 4, 32, 24);
        let audio = AudioSignal::Sine {
            hz: 440.0,
            amplitude: 9000,
        }
        .generate(0, 4 * 1764, 44_100, 2);
        let cap = capture::capture_av_interleaved(
            db.store_mut(),
            &frames,
            &audio,
            1764,
            TimeSystem::PAL,
            DctParams::default(),
            Some(QualityFactor::Video(VideoQuality::Vhs)),
        )
        .unwrap();
        db.register_interpretation(cap.interpretation).unwrap();
        db.register_value(
            "score",
            MediaValue::Music(MusicClip::new(major_scale(0, 60, 1, 480, 400), 480, 120)),
        )
        .unwrap();
        db.create_derived(
            "clip",
            Node::derive(Op::VideoReverse, vec![Node::source("video1")]),
        )
        .unwrap();
        db.catalog_to_bytes().unwrap()
    })
}

fn len() -> usize {
    good_catalog().len()
}

/// Salvage invariants that must hold for *any* input bytes.
fn check_salvage(bytes: &[u8]) {
    let (db, report) = MediaDb::catalog_salvage_from_bytes(MemBlobStore::new(), bytes);
    assert_eq!(db.interpretations().len(), report.interpretations.recovered);
    assert_eq!(db.derivations().len(), report.derivations.recovered);
    // No dangling references survive salvage.
    for o in db.objects() {
        match &o.origin {
            tbm_db::Origin::Interpreted {
                interpretation,
                stream,
            } => {
                let interp = db
                    .interpretation(*interpretation)
                    .expect("no dangling interp");
                assert!(interp.stream(stream).is_ok());
            }
            tbm_db::Origin::Derived { derivation } => {
                assert!(db.derivation(*derivation).is_some());
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn truncation_never_panics(cut in 0usize..1_000_000) {
        let good = good_catalog();
        let cut = cut % (len() + 1);
        let r = MediaDb::catalog_from_bytes(MemBlobStore::new(), &good[..cut]);
        if cut == len() {
            prop_assert!(r.is_ok());
        } else {
            // A proper prefix always lost the footer: strict load must
            // refuse with a typed error, never panic, never succeed.
            prop_assert!(matches!(r, Err(DbError::CorruptCatalog { .. })), "cut {cut}");
        }
        check_salvage(&good[..cut]);
    }

    #[test]
    fn bit_flips_always_detected(pos in 0usize..1_000_000, bit in 0u8..8) {
        let pos = pos % len();
        let mut bad = good_catalog().to_vec();
        bad[pos] ^= 1 << bit;
        let r = MediaDb::catalog_from_bytes(MemBlobStore::new(), &bad);
        prop_assert!(r.is_err(), "flip at {pos} bit {bit} silently accepted");
        check_salvage(&bad);
    }

    #[test]
    fn shotgun_damage_never_panics(
        cut in 0usize..1_000_000,
        flips in prop::collection::vec((0usize..1_000_000, 0u8..8), 0..8),
    ) {
        let good = good_catalog();
        let cut = cut % (len() + 1);
        let mut bytes = good[..cut].to_vec();
        for (pos, bit) in flips {
            if !bytes.is_empty() {
                let p = pos % bytes.len();
                bytes[p] ^= 1 << bit;
            }
        }
        // Strict load: clean, or a typed error — never a panic.
        let _ = MediaDb::catalog_from_bytes(MemBlobStore::new(), &bytes);
        check_salvage(&bytes);
    }

    #[test]
    fn salvage_of_clean_catalog_is_lossless(cases in 0u8..1) {
        let _ = cases;
        let (db, report) = MediaDb::catalog_salvage_from_bytes(
            MemBlobStore::new(),
            good_catalog(),
        );
        prop_assert!(report.is_clean(), "{report:?}");
        prop_assert_eq!(report.lost(), 0);
        prop_assert_eq!(db.objects().len(), 3); // video1 audio1 clip
    }
}
