//! End-to-end database tests: registration, the §1.2 queries,
//! non-destructive editing, provenance and materialization.

use tbm_codec::dct::DctParams;
use tbm_core::{keys, AudioQuality, QualityFactor, VideoQuality};
use tbm_db::{DbError, MediaDb};
use tbm_derive::{EditCut, MediaValue, MusicClip, Node, Op};
use tbm_interp::capture;
use tbm_media::gen::{major_scale, AudioSignal, VideoPattern};
use tbm_media::{AudioBuffer, Frame};
use tbm_time::{Rational, TimeDelta, TimePoint, TimeSystem};

const W: u32 = 48;
const H: u32 = 32;
const SPF: usize = 1764; // CD samples per PAL frame

fn frames(seed: u64, n: usize) -> Vec<Frame> {
    (0..n as u64)
        .map(|i| VideoPattern::MovingBar.render(seed * 1000 + i, W, H))
        .collect()
}

fn tone(frames: usize) -> AudioBuffer {
    AudioSignal::Sine {
        hz: 440.0,
        amplitude: 9000,
    }
    .generate(0, frames, 44100, 2)
}

/// Captures a small AV movie into the db, with descriptors enriched for the
/// query tests, under stream names `video1`/`audio1` (renamed per call).
fn capture_movie(
    db: &mut MediaDb,
    n: usize,
    quality: VideoQuality,
    lang: &str,
) -> (String, String) {
    static mut COUNTER: u32 = 0;
    // Unique names via interpretation count.
    let idx = db.interpretations().len();
    let _ = unsafe { COUNTER }; // not used; names derive from idx
    let cap = capture::capture_av_interleaved(
        db.store_mut(),
        &frames(idx as u64, n),
        &tone(n * SPF),
        SPF,
        TimeSystem::PAL,
        tbm_codec::quality::video_params(quality),
        Some(QualityFactor::Video(quality)),
    )
    .unwrap();
    // Rebuild interpretation with unique names and a language tag.
    let mut interp = tbm_interp::Interpretation::new(cap.blob);
    for (name, stream) in cap.interpretation.streams() {
        let mut s = stream.clone();
        if name == "audio1" {
            let mut d = s.descriptor().clone();
            d.set(keys::LANGUAGE, lang);
            s = tbm_interp::StreamInterp::new(d, s.system(), s.entries().to_vec()).unwrap();
        }
        let unique = format!("{name}_{idx}");
        interp.add_stream(&unique, s).unwrap();
    }
    db.register_interpretation(interp).unwrap();
    (format!("video1_{idx}"), format!("audio1_{idx}"))
}

#[test]
fn registration_and_lookup() {
    let mut db = MediaDb::new();
    let (v, a) = capture_movie(&mut db, 4, VideoQuality::Vhs, "en");
    assert_eq!(db.objects().len(), 2);
    assert!(db.object(&v).is_ok());
    assert!(db.object(&a).is_ok());
    assert!(matches!(
        db.object("ghost"),
        Err(DbError::NoSuchObject { .. })
    ));
    // Duplicate names rejected.
    let mut interp = tbm_interp::Interpretation::new(db.interpretations()[0].blob());
    interp
        .add_stream(&v, db.interpretations()[0].stream(&v).unwrap().clone())
        .unwrap();
    assert!(matches!(
        db.register_interpretation(interp),
        Err(DbError::DuplicateObject { .. })
    ));
}

#[test]
fn query_sound_track_by_language() {
    // The paper's motivating example: "a digital movie with audio tracks in
    // different languages … select a specific sound track."
    let mut db = MediaDb::new();
    let (_, a_en) = capture_movie(&mut db, 3, VideoQuality::Vhs, "en");
    let (_, a_de) = capture_movie(&mut db, 3, VideoQuality::Vhs, "de");
    let (_, a_fr) = capture_movie(&mut db, 3, VideoQuality::Vhs, "fr");
    assert_eq!(db.audio_tracks_by_language("de"), vec![a_de.as_str()]);
    assert_eq!(db.audio_tracks_by_language("en"), vec![a_en.as_str()]);
    assert_eq!(db.audio_tracks_by_language("fr"), vec![a_fr.as_str()]);
    assert!(db.audio_tracks_by_language("jp").is_empty());
}

#[test]
fn query_by_quality_and_duration() {
    let mut db = MediaDb::new();
    let (v_vhs, _) = capture_movie(&mut db, 3, VideoQuality::Vhs, "en");
    let (v_bc, _) = capture_movie(&mut db, 6, VideoQuality::Broadcast, "en");
    // Quality ladder query.
    let at_least_vhs = db.videos_with_quality_at_least(VideoQuality::Vhs);
    assert!(at_least_vhs.contains(&v_vhs.as_str()));
    assert!(at_least_vhs.contains(&v_bc.as_str()));
    let at_least_bc = db.videos_with_quality_at_least(VideoQuality::Broadcast);
    assert_eq!(at_least_bc, vec![v_bc.as_str()]);
    // Audio quality: captures are CD quality.
    assert_eq!(db.audio_with_quality_at_least(AudioQuality::Cd).len(), 2);
    assert!(db
        .audio_with_quality_at_least(AudioQuality::Studio)
        .is_empty());
    // Duration: 6 PAL frames = 0.24 s; 3 frames = 0.12 s.
    let long = db.objects_with_duration_at_least(TimeDelta::from_seconds(Rational::new(20, 100)));
    assert!(long.contains(&v_bc.as_str()));
    assert!(!long.contains(&v_vhs.as_str()));
}

#[test]
fn query_by_kind_and_category() {
    let mut db = MediaDb::new();
    let (v, a) = capture_movie(&mut db, 3, VideoQuality::Vhs, "en");
    assert_eq!(
        db.objects_of_kind(tbm_core::MediaKind::Video),
        vec![v.as_str()]
    );
    assert_eq!(
        db.objects_of_kind(tbm_core::MediaKind::Audio),
        vec![a.as_str()]
    );
    assert!(db.objects_of_kind(tbm_core::MediaKind::Music).is_empty());
    // Category queries hit the Figure 1 taxonomy via descriptors.
    assert_eq!(db.objects_in_category("uniform"), vec![a.as_str()]);
    assert_eq!(
        db.objects_in_category("constant frequency"),
        vec![v.as_str()]
    );
    assert!(db.objects_in_category("event-based").is_empty());
    // Substring of a category name must not match ("continuous" is not
    // "non-continuous").
    assert!(db.objects_in_category("frequency").is_empty());
}

#[test]
fn time_based_retrieval_decodes() {
    let mut db = MediaDb::new();
    let (v, a) = capture_movie(&mut db, 5, VideoQuality::Broadcast, "en");
    // Frame at t = 0.1 s (frame 2 at 25 fps).
    let bytes = db
        .element_bytes_at(&v, TimePoint::from_seconds(Rational::new(1, 10)))
        .unwrap();
    let f = tbm_codec::dct::decode_frame(&bytes).unwrap();
    assert_eq!((f.width(), f.height()), (W, H));
    // Audio chunk at the same time decodes as PCM.
    let abytes = db
        .element_bytes_at(&a, TimePoint::from_seconds(Rational::new(1, 10)))
        .unwrap();
    assert_eq!(abytes.len(), SPF * 4);
    // Out of range.
    assert!(matches!(
        db.element_bytes_at(&v, TimePoint::from_secs(99)),
        Err(DbError::NothingAtTime { .. })
    ));
}

#[test]
fn fidelity_retrieval_reads_base_layer() {
    let mut db = MediaDb::new();
    let (blob, interp) = capture::capture_video_scalable(
        db.store_mut(),
        &frames(9, 3),
        TimeSystem::PAL,
        DctParams::default(),
    )
    .unwrap();
    let _ = blob;
    db.register_interpretation(interp).unwrap();
    let full = db.element_bytes_at("video1", TimePoint::ZERO).unwrap();
    let base = db
        .element_bytes_at_fidelity("video1", TimePoint::ZERO, Some(1))
        .unwrap();
    assert!(base.len() < full.len());
    // Scalable streams also materialize (full fidelity).
    let v = db.materialize("video1").unwrap();
    assert_eq!(v.type_name(), "video");
}

#[test]
fn non_destructive_edit_and_provenance() {
    let mut db = MediaDb::new();
    let (v, _) = capture_movie(&mut db, 10, VideoQuality::Vhs, "en");
    let blob_len_before = db.store().total_bytes();
    // Edit: keep frames [2, 6) — stored as a derivation object only.
    let edit = Node::derive(
        Op::VideoEdit {
            cuts: vec![EditCut {
                input: 0,
                from: 2,
                to: 6,
            }],
        },
        vec![Node::source(&v)],
    );
    db.create_derived("teaser", edit).unwrap();
    // No BLOB bytes were written: non-destructive.
    assert_eq!(db.store().total_bytes(), blob_len_before);
    // Provenance is queryable.
    let prov = db.provenance("teaser").unwrap().unwrap();
    assert_eq!(prov.sources(), vec![v.as_str()]);
    assert!(db.provenance(&v).unwrap().is_none());
    assert_eq!(db.derived_from(&v), vec!["teaser"]);
    // Derivation storage is tiny compared to the source stream.
    let deriv_bytes = db.derivation_storage_bytes("teaser").unwrap();
    let source_bytes = db.stored_bytes(&v).unwrap();
    assert!(
        source_bytes > deriv_bytes * 20,
        "{source_bytes} vs {deriv_bytes}"
    );
    // The edit materializes to 4 frames.
    match db.materialize("teaser").unwrap() {
        MediaValue::Video(clip) => assert_eq!(clip.len(), 4),
        other => panic!("expected video, got {}", other.type_name()),
    }
}

#[test]
fn chained_derivations_and_transitive_provenance() {
    let mut db = MediaDb::new();
    let (v, _) = capture_movie(&mut db, 10, VideoQuality::Vhs, "en");
    db.create_derived(
        "cut",
        Node::derive(
            Op::VideoEdit {
                cuts: vec![EditCut {
                    input: 0,
                    from: 0,
                    to: 8,
                }],
            },
            vec![Node::source(&v)],
        ),
    )
    .unwrap();
    db.create_derived(
        "reversed",
        Node::derive(Op::VideoReverse, vec![Node::source("cut")]),
    )
    .unwrap();
    // Transitive provenance: reversed derives (indirectly) from v.
    let derived = db.derived_from(&v);
    assert!(derived.contains(&"cut"));
    assert!(derived.contains(&"reversed"));
    match db.materialize("reversed").unwrap() {
        MediaValue::Video(clip) => assert_eq!(clip.len(), 8),
        _ => panic!(),
    }
}

#[test]
fn removal_respects_provenance() {
    let mut db = MediaDb::new();
    let (v, _) = capture_movie(&mut db, 6, VideoQuality::Vhs, "en");
    db.create_derived(
        "cut",
        Node::derive(
            Op::VideoEdit {
                cuts: vec![EditCut {
                    input: 0,
                    from: 0,
                    to: 4,
                }],
            },
            vec![Node::source(&v)],
        ),
    )
    .unwrap();
    db.create_derived(
        "rev",
        Node::derive(Op::VideoReverse, vec![Node::source("cut")]),
    )
    .unwrap();
    // Non-derived objects are permanent.
    assert!(matches!(
        db.remove_derived(&v),
        Err(DbError::NotDerived { .. })
    ));
    // `cut` has a dependent.
    assert!(matches!(
        db.remove_derived("cut"),
        Err(DbError::HasDependents { .. })
    ));
    // Leaf first, then the intermediate.
    db.remove_derived("rev").unwrap();
    db.remove_derived("cut").unwrap();
    assert!(db.object("cut").is_err());
    assert!(db.object(&v).is_ok());
    assert!(matches!(
        db.remove_derived("ghost"),
        Err(DbError::NoSuchObject { .. })
    ));
}

#[test]
fn derivation_requires_registered_inputs() {
    let mut db = MediaDb::new();
    let err = db
        .create_derived(
            "orphan",
            Node::derive(Op::VideoReverse, vec![Node::source("nope")]),
        )
        .unwrap_err();
    assert!(matches!(err, DbError::UnknownDerivationInput { .. }));
}

#[test]
fn symbolic_values_and_type_changing_derivation() {
    let mut db = MediaDb::new();
    db.register_value(
        "score",
        MediaValue::Music(MusicClip::new(major_scale(0, 60, 1, 480, 400), 480, 120)),
    )
    .unwrap();
    db.create_derived(
        "score_audio",
        Node::derive(
            Op::MidiSynthesize {
                sample_rate: 22050,
                tempo_bpm: 0,
                gain_num: 256,
            },
            vec![Node::source("score")],
        ),
    )
    .unwrap();
    match db.materialize("score_audio").unwrap() {
        MediaValue::Audio(a) => {
            assert_eq!(a.sample_rate, 22050);
            assert!(a.buffer.peak() > 1000);
        }
        _ => panic!(),
    }
    // The symbolic object is small; its synthesized expansion is large.
    let sym = db.stored_bytes("score").unwrap();
    let deriv = db.derivation_storage_bytes("score_audio").unwrap();
    let expanded = db.materialize("score_audio").unwrap().approx_bytes();
    assert!(expanded > (sym + deriv) * 100);
}

#[test]
fn adpcm_and_interframe_materialize() {
    let mut db = MediaDb::new();
    let (_, interp) =
        capture::capture_audio_adpcm(db.store_mut(), &tone(8192), 44100, 1024).unwrap();
    db.register_interpretation(interp).unwrap();
    match db.materialize("audio1").unwrap() {
        MediaValue::Audio(a) => assert_eq!(a.buffer.frames(), 8192),
        _ => panic!(),
    }

    let (_, interp2) = capture::capture_video_interframe(
        db.store_mut(),
        &frames(3, 8),
        TimeSystem::PAL,
        tbm_codec::interframe::GopParams::default(),
        None,
    )
    .unwrap();
    // Rename to avoid collision with audio1's sibling naming.
    let mut renamed = tbm_interp::Interpretation::new(interp2.blob());
    renamed
        .add_stream("gopvid", interp2.stream("video1").unwrap().clone())
        .unwrap();
    db.register_interpretation(renamed).unwrap();
    match db.materialize("gopvid").unwrap() {
        MediaValue::Video(v) => {
            assert_eq!(v.len(), 8);
            assert_eq!(v.geometry(), Some((W, H)));
        }
        _ => panic!(),
    }
}

#[test]
fn multimedia_objects_register_and_validate() {
    use tbm_compose::{Component, ComponentKind, MultimediaObject};
    let mut db = MediaDb::new();
    let (v, a) = capture_movie(&mut db, 5, VideoQuality::Vhs, "en");
    let mut m = MultimediaObject::new("m");
    m.add_component(
        Component::new(
            "v",
            ComponentKind::Video,
            Node::source(&v),
            TimePoint::ZERO,
            TimeDelta::from_secs(1),
        )
        .unwrap(),
    )
    .unwrap();
    m.add_component(
        Component::new(
            "a",
            ComponentKind::Audio,
            Node::source(&a),
            TimePoint::ZERO,
            TimeDelta::from_secs(1),
        )
        .unwrap(),
    )
    .unwrap();
    m.add_constraint("a", tbm_time::AllenRelation::Equals, "v")
        .unwrap();
    let id = db.add_multimedia(m).unwrap();
    assert_eq!(id.raw(), 0);
    assert!(db.multimedia("m").is_some());
    assert!(db.multimedia("ghost").is_none());
    // A violated constraint is rejected at registration.
    let mut bad = MultimediaObject::new("bad");
    bad.add_component(
        Component::new(
            "x",
            ComponentKind::Video,
            Node::source(&v),
            TimePoint::ZERO,
            TimeDelta::from_secs(1),
        )
        .unwrap(),
    )
    .unwrap();
    bad.add_component(
        Component::new(
            "y",
            ComponentKind::Video,
            Node::source(&v),
            TimePoint::from_secs(5),
            TimeDelta::from_secs(1),
        )
        .unwrap(),
    )
    .unwrap();
    bad.add_constraint("x", tbm_time::AllenRelation::Equals, "y")
        .unwrap();
    assert!(matches!(db.add_multimedia(bad), Err(DbError::Compose(_))));
}

#[test]
fn descriptors_follow_fig2_shape() {
    let mut db = MediaDb::new();
    let (v, a) = capture_movie(&mut db, 4, VideoQuality::Vhs, "en");
    let vd = db.descriptor(&v).unwrap();
    assert_eq!(vd.get_text(keys::QUALITY_FACTOR), Some("VHS quality"));
    assert_eq!(vd.get_int(keys::FRAME_WIDTH), Some(W as i64));
    assert!(db.average_data_rate(&v).is_some());
    let ad = db.descriptor(&a).unwrap();
    assert_eq!(ad.get_int(keys::SAMPLE_RATE), Some(44100));
    assert_eq!(ad.get_text(keys::LANGUAGE), Some("en"));
    // Derived objects have no stored descriptor.
    db.create_derived(
        "rev",
        Node::derive(Op::VideoReverse, vec![Node::source(&v)]),
    )
    .unwrap();
    assert!(db.descriptor("rev").is_none());
}
