//! Cost model for fetching and decoding media elements.

use tbm_time::{Rational, TimeDelta};

/// A simple two-stage cost model: transfer from storage at a fixed
/// bandwidth, then decode at a fixed throughput, plus a fixed per-element
/// overhead (seek/dispatch). All costs are exact rationals so simulations
/// are reproducible.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CostModel {
    /// Storage/transfer bandwidth in bytes per second.
    pub bandwidth: u64,
    /// Decode throughput in bytes per second (0 = free decoding).
    pub decode_rate: u64,
    /// Fixed overhead per element, in microseconds.
    pub overhead_us: u64,
}

impl CostModel {
    /// A model with only transfer bandwidth.
    pub fn bandwidth_only(bytes_per_sec: u64) -> CostModel {
        CostModel {
            bandwidth: bytes_per_sec.max(1),
            decode_rate: 0,
            overhead_us: 0,
        }
    }

    /// Builder: sets decode throughput.
    pub fn with_decode_rate(mut self, bytes_per_sec: u64) -> CostModel {
        self.decode_rate = bytes_per_sec;
        self
    }

    /// Builder: sets fixed per-element overhead in microseconds.
    pub fn with_overhead_us(mut self, us: u64) -> CostModel {
        self.overhead_us = us;
        self
    }

    /// Time to make one element of `bytes` bytes ready for presentation.
    pub fn element_cost(&self, bytes: u64) -> TimeDelta {
        let mut secs = Rational::new(bytes as i64, self.bandwidth.max(1) as i64);
        if self.decode_rate > 0 {
            secs += Rational::new(bytes as i64, self.decode_rate as i64);
        }
        secs += Rational::new(self.overhead_us as i64, 1_000_000);
        TimeDelta::from_seconds(secs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_cost_scales_linearly() {
        let m = CostModel::bandwidth_only(1_000_000);
        assert_eq!(
            m.element_cost(500_000),
            TimeDelta::from_seconds(Rational::new(1, 2))
        );
        assert_eq!(m.element_cost(0), TimeDelta::ZERO);
    }

    #[test]
    fn decode_and_overhead_add() {
        let m = CostModel::bandwidth_only(1_000_000)
            .with_decode_rate(2_000_000)
            .with_overhead_us(100);
        // 1 MB: 1 s transfer + 0.5 s decode + 0.0001 s overhead.
        let c = m.element_cost(1_000_000).seconds();
        assert_eq!(c, Rational::new(15_001, 10_000));
    }

    #[test]
    fn zero_bandwidth_clamped() {
        let m = CostModel::bandwidth_only(0);
        assert!(m.element_cost(10).seconds() > Rational::ZERO);
    }
}
