//! # tbm-player — playback simulation
//!
//! The paper defers performance to the implementation ("satisfaction of
//! real-time constraints … is a performance and implementation issue rather
//! than a data modeling issue") but the *model* must expose the timing that
//! playback needs, and it observes that real-time deadlines for media are
//! soft: "the deadlines are not hard. Divergences … can be tolerated; for
//! example playback 'jitter' can be removed by the application just prior
//! to presentation."
//!
//! This crate closes the loop with a deterministic playback simulator:
//! element schedules come straight from interpretation tables
//! ([`schedule_from_interp`]), a [`CostModel`] models storage bandwidth and
//! decode throughput, and [`PlaybackSim`] reports deadline misses, lateness
//! and jitter ([`PlaybackStats`]). Multi-stream playback measures
//! audio/video sync skew ([`sync_skew`]); scalable streams can be played
//! base-layer-only to fit reduced bandwidth — the §2.2 scalability scenario.
//!
//! Everything is simulated in exact rational time: runs are reproducible
//! and independent of host speed.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod activity;
mod cost;
mod degrade;
mod schedule;
mod sim;
mod sync;

pub use activity::{Activity, Pipeline};
pub use cost::CostModel;
pub use degrade::{DegradationPolicy, ElementFate, ResilientPlayer, ResilientReport};
pub use schedule::{
    demanded_rate, schedule_at_rate, schedule_from_interp, schedule_reverse, schedule_uniform,
    total_bytes, ElementJob,
};
pub use sim::{PlaybackSim, PlaybackStats};
pub use sync::{sync_skew, SyncReport};
