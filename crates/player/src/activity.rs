//! Activities: database operations as flow-processing stages.
//!
//! The paper's conclusion sketches the architecture the model leads to:
//!
//! > *"The notion of timed streams introduced in this paper leads to a
//! > perspective where database operations are viewed as extended
//! > activities that produce, consume and transform flows of data. A
//! > database architecture based on activities and their possible
//! > interconnection is explored in \[5\]."*
//!
//! This module implements that perspective analytically: an [`Activity`] is
//! a stage with a processing capacity (measured on its *input* flow) and an
//! expansion ratio (output bytes per input byte — a decoder expands, an
//! encoder contracts, a filter is 1:1). A [`Pipeline`] chains activities
//! from a producer (storage) to the presentation boundary and answers the
//! provisioning questions the paper raises under "resource allocation":
//! what presentation rate can this chain sustain, and which stage is the
//! bottleneck?

use std::fmt;
use tbm_time::Rational;

/// One flow-processing stage.
#[derive(Debug, Clone, PartialEq)]
pub struct Activity {
    /// The stage's name (for reports).
    pub name: String,
    /// Maximum bytes/second the stage can accept on its input.
    pub capacity: Rational,
    /// Output bytes per input byte (> 0). Decoders expand (e.g. a 44:1
    /// video decoder has ratio 44); encoders contract; copies are 1.
    pub ratio: Rational,
}

impl Activity {
    /// A stage with the given input capacity (bytes/second) and ratio.
    pub fn new(name: &str, capacity: Rational, ratio: Rational) -> Option<Activity> {
        if capacity.signum() <= 0 || ratio.signum() <= 0 {
            return None;
        }
        Some(Activity {
            name: name.to_owned(),
            capacity,
            ratio,
        })
    }

    /// A producer (storage read, network receive): capacity, 1:1.
    pub fn producer(name: &str, bytes_per_sec: u64) -> Activity {
        Activity::new(name, Rational::from(bytes_per_sec as i64), Rational::ONE)
            .expect("positive capacity")
    }

    /// A transformer with input-side throughput and an expansion ratio
    /// `out_bytes : in_bytes`.
    pub fn transformer(name: &str, input_bytes_per_sec: u64, out: u64, inp: u64) -> Activity {
        Activity::new(
            name,
            Rational::from(input_bytes_per_sec as i64),
            Rational::new(out.max(1) as i64, inp.max(1) as i64),
        )
        .expect("positive parameters")
    }
}

impl fmt::Display for Activity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} (≤{} B/s in, ×{})",
            self.name, self.capacity, self.ratio
        )
    }
}

/// A linear chain of activities from producer to presentation boundary.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Pipeline {
    stages: Vec<Activity>,
}

impl Pipeline {
    /// An empty pipeline.
    pub fn new() -> Pipeline {
        Pipeline::default()
    }

    /// Appends a stage, builder style. Flow runs in insertion order.
    pub fn then(mut self, stage: Activity) -> Pipeline {
        self.stages.push(stage);
        self
    }

    /// The stages, in flow order.
    pub fn stages(&self) -> &[Activity] {
        &self.stages
    }

    /// The end-to-end expansion ratio (presentation bytes per stored byte).
    pub fn total_ratio(&self) -> Rational {
        self.stages
            .iter()
            .fold(Rational::ONE, |acc, s| acc * s.ratio)
    }

    /// Each stage's capacity expressed at the *presentation* boundary: its
    /// input capacity times all downstream ratios (including its own).
    pub fn presentation_capacities(&self) -> Vec<Rational> {
        let n = self.stages.len();
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            let downstream: Rational = self.stages[i..]
                .iter()
                .fold(Rational::ONE, |acc, s| acc * s.ratio);
            out.push(self.stages[i].capacity * downstream);
        }
        out
    }

    /// The maximum presentation-side rate the chain sustains in steady
    /// state (`None` for an empty pipeline).
    pub fn steady_state_rate(&self) -> Option<Rational> {
        self.presentation_capacities().into_iter().min()
    }

    /// The limiting stage: `(index, name, presentation-side capacity)`.
    pub fn bottleneck(&self) -> Option<(usize, &str, Rational)> {
        let caps = self.presentation_capacities();
        let (i, cap) = caps
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.cmp(b.1))
            .map(|(i, c)| (i, *c))?;
        Some((i, self.stages[i].name.as_str(), cap))
    }

    /// Whether the chain can feed a presentation demanding `rate`
    /// presentation-bytes/second.
    pub fn sustains(&self, rate: Rational) -> bool {
        self.steady_state_rate()
            .map(|cap| cap >= rate)
            .unwrap_or(false)
    }

    /// Utilization of each stage at presentation demand `rate` (fractions
    /// of capacity; > 1 means overload).
    pub fn utilization(&self, rate: Rational) -> Vec<(String, f64)> {
        self.presentation_capacities()
            .into_iter()
            .zip(&self.stages)
            .map(|(cap, s)| (s.name.clone(), (rate / cap).to_f64()))
            .collect()
    }
}

impl fmt::Display for Pipeline {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, s) in self.stages.iter().enumerate() {
            if i > 0 {
                write!(f, " → ")?;
            }
            write!(f, "{}", s.name)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The Fig. 2 playback chain: storage at 1 MB/s feeding a VHS-quality
    /// video decoder that expands ≈0.35 MB/s of bitstream to ≈22 MB/s of
    /// frames, then a presentation sink.
    fn fig2_chain(storage_bps: u64) -> Pipeline {
        Pipeline::new()
            .then(Activity::producer("storage", storage_bps))
            // decoder: accepts up to 2 MB/s of bitstream, 63:1 expansion
            .then(Activity::transformer("video decoder", 2_000_000, 63, 1))
            // presentation: raw frames at up to 30 MB/s, 1:1
            .then(Activity::producer("presentation", 30_000_000))
    }

    #[test]
    fn steady_state_is_min_over_presentation_capacities() {
        let p = fig2_chain(1_000_000);
        // storage: 1 MB/s × 63 = 63 MB/s at presentation; decoder:
        // 2 MB/s × 63 = 126 MB/s; presentation: 30 MB/s. Min = 30 MB/s.
        assert_eq!(p.steady_state_rate(), Some(Rational::from(30_000_000)));
        let (i, name, _) = p.bottleneck().unwrap();
        assert_eq!((i, name), (2, "presentation"));
    }

    #[test]
    fn starved_storage_becomes_the_bottleneck() {
        let p = fig2_chain(100_000); // 100 kB/s storage
                                     // 100 kB/s × 63 = 6.3 MB/s at presentation.
        assert_eq!(p.steady_state_rate(), Some(Rational::from(6_300_000)));
        assert_eq!(p.bottleneck().unwrap().1, "storage");
        // Raw PAL 640×480 demands 640*480*3*25 = 23.04 MB/s: not sustained.
        let demand = Rational::from(23_040_000);
        assert!(!p.sustains(demand));
        assert!(fig2_chain(1_000_000).sustains(demand));
    }

    #[test]
    fn total_ratio_composes() {
        let p = Pipeline::new()
            .then(Activity::producer("disk", 10))
            .then(Activity::transformer("adpcm decode", 100, 4, 1))
            .then(Activity::transformer("downmix", 1000, 1, 2));
        assert_eq!(p.total_ratio(), Rational::from(2)); // 4 × 1/2
    }

    #[test]
    fn utilization_reports_overload() {
        let p = fig2_chain(100_000);
        let u = p.utilization(Rational::from(23_040_000));
        // storage over 100 %; presentation under.
        assert!(u[0].1 > 1.0, "{u:?}");
        assert!(u[2].1 < 1.0, "{u:?}");
        // All stage names present.
        let names: Vec<&str> = u.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["storage", "video decoder", "presentation"]);
    }

    #[test]
    fn empty_and_invalid() {
        let p = Pipeline::new();
        assert_eq!(p.steady_state_rate(), None);
        assert!(p.bottleneck().is_none());
        assert!(!p.sustains(Rational::ONE));
        assert!(Activity::new("x", Rational::ZERO, Rational::ONE).is_none());
        assert!(Activity::new("x", Rational::ONE, Rational::ZERO).is_none());
    }

    #[test]
    fn display_forms() {
        let p = fig2_chain(1);
        assert_eq!(p.to_string(), "storage → video decoder → presentation");
        let a = Activity::transformer("dec", 100, 4, 1);
        assert!(a.to_string().contains("dec"));
    }

    #[test]
    fn contraction_chain_models_recording() {
        // Recording: capture produces raw frames; encoder contracts 63:1;
        // storage writes the bitstream. Presentation boundary here is the
        // stored flow.
        let p = Pipeline::new()
            .then(Activity::producer("capture", 23_040_000))
            .then(Activity::transformer("encoder", 25_000_000, 1, 63))
            .then(Activity::producer("storage write", 500_000));
        // capture side: 23.04 MB/s / 63 ≈ 365 kB/s of bitstream;
        // encoder: 25/63 ≈ 397 kB/s; storage: 500 kB/s → bottleneck is capture.
        let (_, name, cap) = p.bottleneck().unwrap();
        assert_eq!(name, "capture");
        assert_eq!(cap, Rational::new(23_040_000, 63));
        assert!(p.sustains(Rational::from(300_000)));
        assert!(!p.sustains(Rational::from(400_000)));
    }
}
