//! The playback pipeline simulation.

use crate::{CostModel, ElementJob};
use tbm_obs::{micros, Category, SpanId, Tracer};
use tbm_time::{Rational, TimeDelta, TimePoint};

/// A deterministic single-pipeline playback simulator.
///
/// Elements are fetched and decoded sequentially through the [`CostModel`];
/// element `i` becomes *ready* at `ready(i-1) + cost(i)`. Playback begins
/// once `startup_elements` are buffered (the classic startup-latency /
/// underrun trade-off); from then on the clock demands element `i` at
/// `t_play + deadline(i)`. An element that is not ready at its demand time
/// is a *deadline miss*, presented late by its *lateness*.
#[derive(Debug, Clone, Copy)]
pub struct PlaybackSim {
    /// The fetch/decode cost model.
    pub cost: CostModel,
    /// Elements buffered before the presentation clock starts.
    pub startup_elements: usize,
}

impl PlaybackSim {
    /// A simulator with the given cost model and a one-element startup
    /// buffer.
    pub fn new(cost: CostModel) -> PlaybackSim {
        PlaybackSim {
            cost,
            startup_elements: 1,
        }
    }

    /// Builder: sets the startup buffer depth.
    ///
    /// A depth of `0` is clamped to `1`: the presentation clock can only
    /// start once *something* is buffered, so a zero-element buffer is not a
    /// meaningful configuration. The clamp keeps `with_startup(0)`
    /// equivalent to `with_startup(1)` rather than panicking on the
    /// `ready[startup_elements - 1]` lookup inside
    /// [`PlaybackSim::run_with_penalties`].
    pub fn with_startup(mut self, elements: usize) -> PlaybackSim {
        self.startup_elements = elements.max(1);
        self
    }

    /// Runs the simulation over a deadline-ordered schedule.
    pub fn run(&self, jobs: &[ElementJob]) -> PlaybackStats {
        self.run_with_penalties(jobs, &[])
    }

    /// Runs the simulation with a per-element service-time penalty added on
    /// top of the cost model — how fault recovery (retry backoff, injected
    /// latency) is charged against the pipeline. `penalties` may be shorter
    /// than `jobs`; missing entries cost nothing.
    pub fn run_with_penalties(
        &self,
        jobs: &[ElementJob],
        penalties: &[TimeDelta],
    ) -> PlaybackStats {
        self.run_traced(jobs, penalties, &Tracer::disabled(), None)
    }

    /// [`PlaybackSim::run_with_penalties`] with tracing: each element gets a
    /// `player.element` span covering its fetch/decode interval, and every
    /// deadline miss an instant `present.miss` event, all on the simulated
    /// clock. A disabled tracer makes this identical to the untraced run.
    pub fn run_traced(
        &self,
        jobs: &[ElementJob],
        penalties: &[TimeDelta],
        tracer: &Tracer,
        session: Option<u64>,
    ) -> PlaybackStats {
        let mut stats = PlaybackStats::default();
        // Guard before any division or `ready[..]` indexing: an empty
        // schedule is a valid input (e.g. a stream with no entries) and must
        // yield fully zeroed stats, not a divide-by-zero panic below.
        if jobs.is_empty() {
            return stats;
        }
        // Fetch pipeline: ready times.
        let mut ready = Vec::with_capacity(jobs.len());
        let mut spans: Vec<SpanId> = Vec::with_capacity(jobs.len());
        let mut t = TimePoint::ZERO;
        for (i, j) in jobs.iter().enumerate() {
            let fetch_start = t;
            t += self.cost.element_cost(j.bytes);
            if let Some(p) = penalties.get(i) {
                t += *p;
            }
            ready.push(t);
            let span = tracer.begin_span(
                "player.element",
                Category::Decode,
                fetch_start,
                SpanId::NONE,
                session,
            );
            tracer.attr(span, "index", i);
            tracer.attr(span, "bytes", j.bytes);
            if let Some(p) = penalties.get(i) {
                tracer.attr(span, "penalty_us", micros(p.seconds()));
            }
            tracer.end_span(span, t);
            spans.push(span);
        }
        // Presentation clock starts when the startup buffer is full.
        let k = self.startup_elements.min(jobs.len()) - 1;
        let t_play = ready[k] - jobs[0].deadline.since_origin();
        stats.startup_latency = ready[k].since_origin();
        stats.elements = jobs.len();

        let mut sum_late = Rational::ZERO;
        let mut sum_late_sq = 0f64;
        for (i, (j, &r)) in jobs.iter().zip(&ready).enumerate() {
            let scheduled = t_play + j.deadline.since_origin();
            let actual = scheduled.max(r);
            let lateness = actual - scheduled;
            tracer.attr(spans[i], "lateness_us", micros(lateness.seconds()));
            if lateness > TimeDelta::ZERO {
                stats.misses += 1;
                stats.max_lateness = stats.max_lateness.max(lateness);
                sum_late += lateness.seconds();
                tracer.event(
                    "present.miss",
                    Category::Present,
                    actual,
                    spans[i],
                    session,
                    vec![
                        ("index", i.into()),
                        ("lateness_us", micros(lateness.seconds()).into()),
                    ],
                );
            }
            let late_f = lateness.seconds().to_f64();
            sum_late_sq += late_f * late_f;
        }
        // Two means, two denominators — documented on the fields: the same
        // lateness sum averaged over *all* elements (how late is playback
        // overall) and over *missed* elements only (how bad is a glitch).
        stats.mean_lateness = TimeDelta::from_seconds(sum_late / Rational::from(jobs.len() as i64));
        stats.mean_miss_lateness = if stats.misses == 0 {
            TimeDelta::ZERO
        } else {
            TimeDelta::from_seconds(sum_late / Rational::from(stats.misses as i64))
        };
        stats.jitter_rms_secs = (sum_late_sq / jobs.len() as f64).sqrt();
        stats
    }
}

/// The outcome of a playback simulation.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PlaybackStats {
    /// Elements presented.
    pub elements: usize,
    /// Elements presented after their deadline.
    pub misses: usize,
    /// Worst lateness observed.
    pub max_lateness: TimeDelta,
    /// Mean lateness over **all** elements — on-time elements contribute 0
    /// to the sum but *do* count in the denominator. This answers "how late
    /// is playback on average"; for "how bad is a typical glitch" see
    /// [`PlaybackStats::mean_miss_lateness`].
    pub mean_lateness: TimeDelta,
    /// Mean lateness over **missed** elements only (denominator =
    /// [`PlaybackStats::misses`]); [`TimeDelta::ZERO`] when nothing missed.
    /// Always ≥ [`PlaybackStats::mean_lateness`].
    pub mean_miss_lateness: TimeDelta,
    /// RMS of lateness in seconds — the "jitter" the paper says the
    /// application smooths just before presentation.
    pub jitter_rms_secs: f64,
    /// Time from pressing play to the first presented element.
    pub startup_latency: TimeDelta,
    /// Elements that needed retries but were presented intact.
    pub recovered: usize,
    /// Elements presented in degraded form (repeated predecessor or
    /// base-layer-only after a fault).
    pub degraded: usize,
    /// Elements not presented at all (fault with no recovery path).
    pub dropped: usize,
}

impl PlaybackStats {
    /// Fraction of elements missing their deadline.
    pub fn miss_rate(&self) -> f64 {
        if self.elements == 0 {
            0.0
        } else {
            self.misses as f64 / self.elements as f64
        }
    }

    /// `true` when playback was glitch-free.
    pub fn clean(&self) -> bool {
        self.misses == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule_uniform;
    use tbm_time::TimeSystem;

    /// PAL video at 100 kB/frame demands 2.5 MB/s.
    fn jobs() -> Vec<ElementJob> {
        schedule_uniform(100, 100_000, TimeSystem::PAL)
    }

    #[test]
    fn ample_bandwidth_is_clean() {
        let sim = PlaybackSim::new(CostModel::bandwidth_only(10_000_000));
        let stats = sim.run(&jobs());
        assert_eq!(stats.elements, 100);
        assert!(stats.clean(), "{stats:?}");
        assert_eq!(stats.max_lateness, TimeDelta::ZERO);
        assert_eq!(stats.miss_rate(), 0.0);
    }

    #[test]
    fn exact_bandwidth_is_clean() {
        // 2.5 MB/s demand at exactly 2.5 MB/s: each fetch takes exactly one
        // period; with one element buffered the pipeline just keeps up.
        let sim = PlaybackSim::new(CostModel::bandwidth_only(2_500_000));
        let stats = sim.run(&jobs());
        assert!(stats.clean(), "{stats:?}");
    }

    #[test]
    fn insufficient_bandwidth_misses_increasingly() {
        let sim = PlaybackSim::new(CostModel::bandwidth_only(2_000_000)); // 80 %
        let stats = sim.run(&jobs());
        assert!(stats.misses > 50, "{stats:?}");
        assert!(stats.max_lateness > TimeDelta::ZERO);
        assert!(stats.jitter_rms_secs > 0.0);
        // Lateness grows over the run: the pipeline falls 20 % behind per
        // element; by element 99 lateness ≈ 99 × (0.05 − 0.04) s ≈ 0.99 s.
        let max = stats.max_lateness.seconds().to_f64();
        assert!((0.8..1.2).contains(&max), "max lateness {max}");
    }

    #[test]
    fn deeper_startup_buffer_absorbs_jitter() {
        // Slightly undersized bandwidth: a deep buffer trades startup
        // latency for fewer misses.
        let tight = CostModel::bandwidth_only(2_400_000);
        let shallow = PlaybackSim::new(tight).run(&jobs());
        let deep = PlaybackSim::new(tight).with_startup(20).run(&jobs());
        assert!(deep.misses < shallow.misses, "{shallow:?} vs {deep:?}");
        assert!(deep.startup_latency > shallow.startup_latency);
    }

    #[test]
    fn overhead_alone_can_break_playback() {
        // 41 ms per-element overhead exceeds the 40 ms PAL period.
        let sim =
            PlaybackSim::new(CostModel::bandwidth_only(1_000_000_000).with_overhead_us(41_000));
        let stats = sim.run(&jobs());
        assert!(!stats.clean());
    }

    #[test]
    fn empty_schedule_is_trivially_clean() {
        let sim = PlaybackSim::new(CostModel::bandwidth_only(1));
        let stats = sim.run(&[]);
        assert_eq!(stats.elements, 0);
        assert!(stats.clean());
    }

    #[test]
    fn empty_schedule_returns_zeroed_stats_not_division_by_zero() {
        // Regression guard: `run_with_penalties` divides by `jobs.len()`
        // computing `mean_lateness`, and indexes `ready[startup - 1]`. Both
        // are reached only past the empty-schedule guard; this test pins the
        // guard across every entry point and penalty shape.
        let sim = PlaybackSim::new(CostModel::bandwidth_only(1)).with_startup(8);
        let zeroed = PlaybackStats::default();
        assert_eq!(sim.run(&[]), zeroed);
        assert_eq!(sim.run_with_penalties(&[], &[]), zeroed);
        // Penalties longer than the (empty) schedule must not resurrect it.
        let penalties = vec![TimeDelta::from_millis(100); 4];
        assert_eq!(sim.run_with_penalties(&[], &penalties), zeroed);
        assert_eq!(
            sim.run_traced(&[], &penalties, &tbm_obs::Tracer::disabled(), None),
            zeroed
        );
        assert_eq!(zeroed.mean_lateness, TimeDelta::ZERO);
        assert_eq!(zeroed.miss_rate(), 0.0);
    }

    #[test]
    fn traced_run_matches_untraced_and_records_spans() {
        let sim = PlaybackSim::new(CostModel::bandwidth_only(2_000_000)); // 80 %
        let jobs = jobs();
        let tracer = tbm_obs::Tracer::new();
        let traced = sim.run_traced(&jobs, &[], &tracer, Some(9));
        assert_eq!(traced, sim.run(&jobs), "tracing must not change timing");
        let snap = tracer.snapshot();
        let spans = snap
            .records
            .iter()
            .filter(|r| r.name == "player.element")
            .count();
        let misses = snap
            .records
            .iter()
            .filter(|r| r.name == "present.miss")
            .count();
        assert_eq!(spans, jobs.len());
        assert_eq!(misses, traced.misses);
        assert!(snap.records.iter().all(|r| r.session == Some(9)));
    }

    #[test]
    fn mean_lateness_semantics_pinned() {
        // 80 % bandwidth: every element after the buffered first one is
        // late. Pin the two means to their definitions: same lateness sum,
        // divided by all elements vs by misses only.
        let sim = PlaybackSim::new(CostModel::bandwidth_only(2_000_000));
        let stats = sim.run(&jobs());
        assert!(
            stats.misses > 0 && stats.misses < stats.elements,
            "{stats:?}"
        );
        let sum_over_all = stats.mean_lateness.seconds() * Rational::from(stats.elements as i64);
        let sum_over_misses =
            stats.mean_miss_lateness.seconds() * Rational::from(stats.misses as i64);
        assert_eq!(sum_over_all, sum_over_misses);
        assert!(stats.mean_miss_lateness > stats.mean_lateness);

        // Clean playback: both means are exactly zero.
        let clean = PlaybackSim::new(CostModel::bandwidth_only(10_000_000)).run(&jobs());
        assert_eq!(clean.mean_lateness, TimeDelta::ZERO);
        assert_eq!(clean.mean_miss_lateness, TimeDelta::ZERO);
    }

    #[test]
    fn penalties_delay_the_pipeline() {
        // Exact bandwidth: each fetch takes exactly one period, so there is
        // no slack to absorb a penalty.
        let sim = PlaybackSim::new(CostModel::bandwidth_only(2_500_000));
        let jobs = jobs();
        assert!(sim.run(&jobs).clean());
        // A 100 ms penalty on element 50 ripples into misses downstream.
        let mut penalties = vec![TimeDelta::ZERO; jobs.len()];
        penalties[50] = TimeDelta::from_millis(100);
        let stats = sim.run_with_penalties(&jobs, &penalties);
        assert!(!stats.clean(), "{stats:?}");
        assert!(stats.max_lateness >= TimeDelta::from_millis(60));
        // Short penalty slices are allowed.
        assert!(sim.run_with_penalties(&jobs, &[]).clean());
    }

    #[test]
    fn zero_startup_clamps_to_one_element() {
        // The documented clamp: a zero-depth buffer is not meaningful (the
        // clock cannot start before anything is buffered), so 0 behaves
        // exactly like 1 — and does not panic.
        let cost = CostModel::bandwidth_only(2_400_000);
        let zero = PlaybackSim::new(cost).with_startup(0);
        assert_eq!(zero.startup_elements, 1);
        let one = PlaybackSim::new(cost).with_startup(1);
        assert_eq!(zero.run(&jobs()), one.run(&jobs()));
        assert_eq!(zero.run(&[]), one.run(&[]));
    }

    #[test]
    fn determinism() {
        let sim = PlaybackSim::new(CostModel::bandwidth_only(2_300_000)).with_startup(5);
        assert_eq!(sim.run(&jobs()), sim.run(&jobs()));
    }
}
