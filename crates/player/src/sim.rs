//! The playback pipeline simulation.

use crate::{CostModel, ElementJob};
use tbm_time::{Rational, TimeDelta, TimePoint};

/// A deterministic single-pipeline playback simulator.
///
/// Elements are fetched and decoded sequentially through the [`CostModel`];
/// element `i` becomes *ready* at `ready(i-1) + cost(i)`. Playback begins
/// once `startup_elements` are buffered (the classic startup-latency /
/// underrun trade-off); from then on the clock demands element `i` at
/// `t_play + deadline(i)`. An element that is not ready at its demand time
/// is a *deadline miss*, presented late by its *lateness*.
#[derive(Debug, Clone, Copy)]
pub struct PlaybackSim {
    /// The fetch/decode cost model.
    pub cost: CostModel,
    /// Elements buffered before the presentation clock starts.
    pub startup_elements: usize,
}

impl PlaybackSim {
    /// A simulator with the given cost model and a one-element startup
    /// buffer.
    pub fn new(cost: CostModel) -> PlaybackSim {
        PlaybackSim {
            cost,
            startup_elements: 1,
        }
    }

    /// Builder: sets the startup buffer depth.
    pub fn with_startup(mut self, elements: usize) -> PlaybackSim {
        self.startup_elements = elements.max(1);
        self
    }

    /// Runs the simulation over a deadline-ordered schedule.
    pub fn run(&self, jobs: &[ElementJob]) -> PlaybackStats {
        let mut stats = PlaybackStats::default();
        if jobs.is_empty() {
            return stats;
        }
        // Fetch pipeline: ready times.
        let mut ready = Vec::with_capacity(jobs.len());
        let mut t = TimePoint::ZERO;
        for j in jobs {
            t += self.cost.element_cost(j.bytes);
            ready.push(t);
        }
        // Presentation clock starts when the startup buffer is full.
        let k = self.startup_elements.min(jobs.len()) - 1;
        let t_play = ready[k] - jobs[0].deadline.since_origin();
        stats.startup_latency = ready[k].since_origin();
        stats.elements = jobs.len();

        let mut sum_late = Rational::ZERO;
        let mut sum_late_sq = 0f64;
        for (j, &r) in jobs.iter().zip(&ready) {
            let scheduled = t_play + j.deadline.since_origin();
            let actual = scheduled.max(r);
            let lateness = actual - scheduled;
            if lateness > TimeDelta::ZERO {
                stats.misses += 1;
                stats.max_lateness = stats.max_lateness.max(lateness);
                sum_late += lateness.seconds();
            }
            let late_f = lateness.seconds().to_f64();
            sum_late_sq += late_f * late_f;
        }
        stats.mean_lateness = TimeDelta::from_seconds(
            sum_late / Rational::from(jobs.len() as i64),
        );
        stats.jitter_rms_secs = (sum_late_sq / jobs.len() as f64).sqrt();
        stats
    }
}

/// The outcome of a playback simulation.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PlaybackStats {
    /// Elements presented.
    pub elements: usize,
    /// Elements presented after their deadline.
    pub misses: usize,
    /// Worst lateness observed.
    pub max_lateness: TimeDelta,
    /// Mean lateness across all elements (on-time elements contribute 0).
    pub mean_lateness: TimeDelta,
    /// RMS of lateness in seconds — the "jitter" the paper says the
    /// application smooths just before presentation.
    pub jitter_rms_secs: f64,
    /// Time from pressing play to the first presented element.
    pub startup_latency: TimeDelta,
}

impl PlaybackStats {
    /// Fraction of elements missing their deadline.
    pub fn miss_rate(&self) -> f64 {
        if self.elements == 0 {
            0.0
        } else {
            self.misses as f64 / self.elements as f64
        }
    }

    /// `true` when playback was glitch-free.
    pub fn clean(&self) -> bool {
        self.misses == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule_uniform;
    use tbm_time::TimeSystem;

    /// PAL video at 100 kB/frame demands 2.5 MB/s.
    fn jobs() -> Vec<ElementJob> {
        schedule_uniform(100, 100_000, TimeSystem::PAL)
    }

    #[test]
    fn ample_bandwidth_is_clean() {
        let sim = PlaybackSim::new(CostModel::bandwidth_only(10_000_000));
        let stats = sim.run(&jobs());
        assert_eq!(stats.elements, 100);
        assert!(stats.clean(), "{stats:?}");
        assert_eq!(stats.max_lateness, TimeDelta::ZERO);
        assert_eq!(stats.miss_rate(), 0.0);
    }

    #[test]
    fn exact_bandwidth_is_clean() {
        // 2.5 MB/s demand at exactly 2.5 MB/s: each fetch takes exactly one
        // period; with one element buffered the pipeline just keeps up.
        let sim = PlaybackSim::new(CostModel::bandwidth_only(2_500_000));
        let stats = sim.run(&jobs());
        assert!(stats.clean(), "{stats:?}");
    }

    #[test]
    fn insufficient_bandwidth_misses_increasingly() {
        let sim = PlaybackSim::new(CostModel::bandwidth_only(2_000_000)); // 80 %
        let stats = sim.run(&jobs());
        assert!(stats.misses > 50, "{stats:?}");
        assert!(stats.max_lateness > TimeDelta::ZERO);
        assert!(stats.jitter_rms_secs > 0.0);
        // Lateness grows over the run: the pipeline falls 20 % behind per
        // element; by element 99 lateness ≈ 99 × (0.05 − 0.04) s ≈ 0.99 s.
        let max = stats.max_lateness.seconds().to_f64();
        assert!((0.8..1.2).contains(&max), "max lateness {max}");
    }

    #[test]
    fn deeper_startup_buffer_absorbs_jitter() {
        // Slightly undersized bandwidth: a deep buffer trades startup
        // latency for fewer misses.
        let tight = CostModel::bandwidth_only(2_400_000);
        let shallow = PlaybackSim::new(tight).run(&jobs());
        let deep = PlaybackSim::new(tight).with_startup(20).run(&jobs());
        assert!(deep.misses < shallow.misses, "{shallow:?} vs {deep:?}");
        assert!(deep.startup_latency > shallow.startup_latency);
    }

    #[test]
    fn overhead_alone_can_break_playback() {
        // 41 ms per-element overhead exceeds the 40 ms PAL period.
        let sim = PlaybackSim::new(
            CostModel::bandwidth_only(1_000_000_000).with_overhead_us(41_000),
        );
        let stats = sim.run(&jobs());
        assert!(!stats.clean());
    }

    #[test]
    fn empty_schedule_is_trivially_clean() {
        let sim = PlaybackSim::new(CostModel::bandwidth_only(1));
        let stats = sim.run(&[]);
        assert_eq!(stats.elements, 0);
        assert!(stats.clean());
    }

    #[test]
    fn determinism() {
        let sim = PlaybackSim::new(CostModel::bandwidth_only(2_300_000)).with_startup(5);
        assert_eq!(sim.run(&jobs()), sim.run(&jobs()));
    }
}
