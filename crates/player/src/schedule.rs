//! Element schedules: presentation deadlines derived from interpretations.

use tbm_interp::StreamInterp;
use tbm_time::{Rational, TimeDelta, TimePoint, TimeSystem};

/// One element to present: its deadline (relative to stream start) and the
/// bytes that must be fetched and decoded by then.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ElementJob {
    /// Presentation deadline relative to playback start.
    pub deadline: TimePoint,
    /// Bytes to fetch+decode.
    pub bytes: u64,
    /// Element number within its stream (for reporting).
    pub index: usize,
}

/// Builds the playback schedule of a stream interpretation.
///
/// `layers` limits each element to its first `n` placement layers — this is
/// scalable playback: "bandwidth can be saved … by ignoring parts of the
/// storage unit". `None` plays all layers.
pub fn schedule_from_interp(stream: &StreamInterp, layers: Option<usize>) -> Vec<ElementJob> {
    let origin = stream
        .entries()
        .first()
        .map(|e| e.start)
        .unwrap_or_default();
    let system = stream.system();
    stream
        .entries()
        .iter()
        .enumerate()
        .map(|(index, e)| {
            let bytes = match layers {
                Some(n) => e
                    .placement
                    .prefix_len(n.clamp(1, e.placement.layer_count())),
                None => e.size,
            };
            ElementJob {
                deadline: TimePoint::ZERO + system.ticks_to_delta(e.start - origin),
                bytes,
                index,
            }
        })
        .collect()
}

/// Builds the schedule for playback at a non-unit rate (`num/den` × normal
/// speed): deadlines compress or stretch, element sizes are unchanged — so
/// 2× playback doubles the demanded data rate, which is why the paper notes
/// that *independently decodable* frames (JPEG-style) make "playback in
/// reverse or at variable rates" easy while interframe coding does not.
///
/// Returns `None` for non-positive rates.
pub fn schedule_at_rate(
    stream: &StreamInterp,
    layers: Option<usize>,
    rate_num: u32,
    rate_den: u32,
) -> Option<Vec<ElementJob>> {
    if rate_num == 0 || rate_den == 0 {
        return None;
    }
    let scale = Rational::new(rate_den as i64, rate_num as i64); // deadline multiplier
    Some(
        schedule_from_interp(stream, layers)
            .into_iter()
            .map(|j| ElementJob {
                deadline: TimePoint::from_seconds(j.deadline.seconds() * scale),
                ..j
            })
            .collect(),
    )
}

/// Builds the reverse-playback schedule: the last element presents first.
///
/// For streams whose elements are all keys (intraframe video, PCM audio)
/// the element set is unchanged. For interframe streams, presenting element
/// `i` requires decoding from its preceding key, so each job's `bytes`
/// grows to cover the whole key-to-element span — quantifying the paper's
/// §2.1 observation that independently compressed frames make reverse
/// playback easier.
pub fn schedule_reverse(stream: &StreamInterp, layers: Option<usize>) -> Vec<ElementJob> {
    let forward = schedule_from_interp(stream, layers);
    let n = forward.len();
    let mut out = Vec::with_capacity(n);
    for (pos, orig) in forward.iter().rev().enumerate() {
        // Decode cost: all bytes from the element's key through the element.
        let key = stream.key_before(orig.index).unwrap_or(orig.index);
        let bytes: u64 = (key..=orig.index)
            .map(|i| {
                let e = &stream.entries()[i];
                match layers {
                    Some(l) => e
                        .placement
                        .prefix_len(l.clamp(1, e.placement.layer_count())),
                    None => e.size,
                }
            })
            .sum();
        out.push(ElementJob {
            deadline: forward[pos].deadline, // same cadence, reversed content
            bytes,
            index: orig.index,
        });
    }
    out
}

/// Builds a uniform synthetic schedule: `count` elements of `bytes` bytes at
/// frequency `system` (workload generator for benchmarks).
pub fn schedule_uniform(count: usize, bytes: u64, system: TimeSystem) -> Vec<ElementJob> {
    (0..count)
        .map(|i| ElementJob {
            deadline: system.tick_to_seconds(i as i64),
            bytes,
            index: i,
        })
        .collect()
}

/// Total bytes of a schedule.
pub fn total_bytes(jobs: &[ElementJob]) -> u64 {
    jobs.iter().map(|j| j.bytes).sum()
}

/// The average data rate a schedule demands, in bytes/second.
pub fn demanded_rate(jobs: &[ElementJob], system: TimeSystem) -> Option<Rational> {
    let last = jobs.last()?;
    let span = (last.deadline + TimeDelta::from_seconds(system.period().seconds()))
        .since_origin()
        .seconds();
    if span.is_zero() {
        return None;
    }
    Some(Rational::from(total_bytes(jobs) as i64) / span)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tbm_blob::ByteSpan;
    use tbm_core::{MediaDescriptor, MediaKind};
    use tbm_interp::ElementEntry;

    fn stream(sizes: &[u64]) -> StreamInterp {
        let mut at = 0u64;
        let entries = sizes
            .iter()
            .enumerate()
            .map(|(i, &z)| {
                let e = ElementEntry::simple(10 + i as i64, 1, ByteSpan::new(at, z));
                at += z;
                e
            })
            .collect();
        StreamInterp::new(
            MediaDescriptor::new(MediaKind::Video),
            TimeSystem::PAL,
            entries,
        )
        .unwrap()
    }

    #[test]
    fn deadlines_are_relative_to_first_element() {
        let s = stream(&[100, 200, 300]);
        let jobs = schedule_from_interp(&s, None);
        assert_eq!(jobs.len(), 3);
        assert_eq!(jobs[0].deadline, TimePoint::ZERO);
        assert_eq!(
            jobs[1].deadline,
            TimePoint::from_seconds(Rational::new(1, 25))
        );
        assert_eq!(jobs[2].bytes, 300);
        assert_eq!(total_bytes(&jobs), 600);
    }

    #[test]
    fn layered_schedule_takes_prefix() {
        let e = ElementEntry::simple(0, 1, ByteSpan::new(0, 10))
            .with_layers(vec![ByteSpan::new(0, 10), ByteSpan::new(10, 30)])
            .unwrap();
        let s = StreamInterp::new(
            MediaDescriptor::new(MediaKind::Video),
            TimeSystem::PAL,
            vec![e],
        )
        .unwrap();
        let full = schedule_from_interp(&s, None);
        let base = schedule_from_interp(&s, Some(1));
        assert_eq!(full[0].bytes, 40);
        assert_eq!(base[0].bytes, 10);
        // Clamp: asking for more layers than exist is the full read.
        let over = schedule_from_interp(&s, Some(9));
        assert_eq!(over[0].bytes, 40);
    }

    #[test]
    fn rate_scaling_compresses_deadlines() {
        let s = stream(&[100, 100, 100, 100]);
        let normal = schedule_from_interp(&s, None);
        let double = schedule_at_rate(&s, None, 2, 1).unwrap();
        let half = schedule_at_rate(&s, None, 1, 2).unwrap();
        for i in 0..4 {
            assert_eq!(
                double[i].deadline.seconds() * Rational::from(2),
                normal[i].deadline.seconds()
            );
            assert_eq!(
                half[i].deadline.seconds(),
                normal[i].deadline.seconds() * Rational::from(2)
            );
            // Bytes unchanged: 2x playback = 2x data rate.
            assert_eq!(double[i].bytes, normal[i].bytes);
        }
        assert!(schedule_at_rate(&s, None, 0, 1).is_none());
        assert!(schedule_at_rate(&s, None, 1, 0).is_none());
    }

    #[test]
    fn reverse_schedule_all_keys_is_symmetric() {
        // Intraframe streams (every element a key): reverse playback costs
        // the same bytes as forward.
        let s = stream(&[100, 200, 300]);
        let rev = schedule_reverse(&s, None);
        assert_eq!(rev.len(), 3);
        assert_eq!(rev[0].index, 2);
        assert_eq!(rev[0].bytes, 300);
        assert_eq!(rev[2].index, 0);
        assert_eq!(rev[2].bytes, 100);
        // Deadlines keep the forward cadence.
        assert_eq!(rev[0].deadline, TimePoint::ZERO);
    }

    #[test]
    fn reverse_schedule_interframe_pays_key_seek() {
        // Keys at 0 and 2 only: presenting element 1 in reverse requires
        // decoding from element 0.
        let mut entries = Vec::new();
        let mut at = 0u64;
        for (i, (size, key)) in [(500u64, true), (100, false), (400, true), (100, false)]
            .iter()
            .enumerate()
        {
            let mut e = ElementEntry::simple(10 + i as i64, 1, ByteSpan::new(at, *size));
            e.is_key = *key;
            at += size;
            entries.push(e);
        }
        let s = StreamInterp::new(
            MediaDescriptor::new(MediaKind::Video),
            TimeSystem::PAL,
            entries,
        )
        .unwrap();
        let rev = schedule_reverse(&s, None);
        // Element 3 (non-key): bytes = key 2 + element 3.
        assert_eq!(rev[0].index, 3);
        assert_eq!(rev[0].bytes, 400 + 100);
        // Element 1 (non-key): bytes = key 0 + element 1.
        assert_eq!(rev[2].index, 1);
        assert_eq!(rev[2].bytes, 500 + 100);
        // Keys cost only themselves.
        assert_eq!(rev[1].bytes, 400);
        assert_eq!(rev[3].bytes, 500);
        // Total reverse cost strictly exceeds forward cost — the paper's
        // point about interframe coding.
        let fwd: u64 = schedule_from_interp(&s, None).iter().map(|j| j.bytes).sum();
        let rv: u64 = rev.iter().map(|j| j.bytes).sum();
        assert!(rv > fwd);
    }

    #[test]
    fn uniform_schedule() {
        let jobs = schedule_uniform(25, 4000, TimeSystem::PAL);
        assert_eq!(jobs.len(), 25);
        assert_eq!(
            jobs[24].deadline,
            TimePoint::from_seconds(Rational::new(24, 25))
        );
        // Demanded rate: 25 × 4000 bytes over exactly 1 s.
        assert_eq!(
            demanded_rate(&jobs, TimeSystem::PAL),
            Some(Rational::from(100_000))
        );
    }

    #[test]
    fn empty_schedule() {
        assert!(schedule_uniform(0, 10, TimeSystem::PAL).is_empty());
        assert_eq!(demanded_rate(&[], TimeSystem::PAL), None);
    }
}
