//! Inter-stream synchronization measurement.
//!
//! "It is often the case … that audio elements must be synchronized with
//! visual elements" (§2.2). When two streams share one fetch pipeline,
//! contention shifts their actual presentation times; [`sync_skew`] merges
//! the two schedules deadline-first (the player's service order), simulates
//! the shared pipeline, and reports how far simultaneous elements drift
//! apart.

use crate::{CostModel, ElementJob};
use tbm_time::{TimeDelta, TimePoint};

/// The result of a two-stream sync simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SyncReport {
    /// Sync points compared (pairs of near-simultaneous elements).
    pub points: usize,
    /// Worst absolute skew between the streams at a sync point.
    pub max_skew: TimeDelta,
    /// Mean absolute skew.
    pub mean_skew_secs: f64,
    /// Whether every element of both streams met its deadline.
    pub clean: bool,
}

/// Simulates playing streams `a` and `b` through one shared pipeline and
/// measures presentation skew at sync points: for each element of `a`, the
/// latest element of `b` with deadline ≤ its own.
///
/// Interleaving both streams in one BLOB (Fig. 2) exists precisely "to
/// simplify synchronization of streams during playback"; this measurement
/// is how the E10 experiment quantifies that.
pub fn sync_skew(cost: CostModel, a: &[ElementJob], b: &[ElementJob]) -> SyncReport {
    // Merge by deadline: the service order of a sequential player.
    #[derive(Clone, Copy)]
    struct Tagged {
        job: ElementJob,
        stream_a: bool,
    }
    let mut merged: Vec<Tagged> = a
        .iter()
        .map(|&job| Tagged {
            job,
            stream_a: true,
        })
        .chain(b.iter().map(|&job| Tagged {
            job,
            stream_a: false,
        }))
        .collect();
    merged.sort_by_key(|x| x.job.deadline);

    // Shared sequential pipeline.
    let mut t = TimePoint::ZERO;
    let mut ready_a: Vec<(TimePoint, TimePoint)> = Vec::new(); // (deadline, ready)
    let mut ready_b: Vec<(TimePoint, TimePoint)> = Vec::new();
    for m in &merged {
        t += cost.element_cost(m.job.bytes);
        if m.stream_a {
            ready_a.push((m.job.deadline, t));
        } else {
            ready_b.push((m.job.deadline, t));
        }
    }
    if ready_a.is_empty() || ready_b.is_empty() {
        return SyncReport {
            points: 0,
            max_skew: TimeDelta::ZERO,
            mean_skew_secs: 0.0,
            clean: true,
        };
    }
    // Presentation clock: start when the first element of each is ready.
    let t_play = {
        let first = ready_a[0].1.max(ready_b[0].1);
        first - ready_a[0].0.since_origin().min(ready_b[0].0.since_origin())
    };
    let actual = |deadline: TimePoint, ready: TimePoint| -> TimePoint {
        (t_play + deadline.since_origin()).max(ready)
    };
    let mut clean = true;
    for &(d, r) in ready_a.iter().chain(&ready_b) {
        if actual(d, r) > t_play + d.since_origin() {
            clean = false;
        }
    }
    // Sync points: each a-element against the most recent b-element.
    let mut points = 0usize;
    let mut max_skew = TimeDelta::ZERO;
    let mut sum = 0f64;
    let mut bi = 0usize;
    for &(da, ra) in &ready_a {
        while bi + 1 < ready_b.len() && ready_b[bi + 1].0 <= da {
            bi += 1;
        }
        let (db, rb) = ready_b[bi];
        if db > da {
            continue; // no b element yet
        }
        let ta = actual(da, ra);
        let tb = actual(db, rb);
        // Nominal offset between the two deadlines; skew is the divergence
        // beyond it.
        let nominal = da - db;
        let skew = ((ta - tb) - nominal).abs();
        points += 1;
        max_skew = max_skew.max(skew);
        sum += skew.seconds().to_f64();
    }
    SyncReport {
        points,
        max_skew,
        mean_skew_secs: if points == 0 {
            0.0
        } else {
            sum / points as f64
        },
        clean,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule_uniform;
    use tbm_time::TimeSystem;

    fn av_schedules(frame_bytes: u64) -> (Vec<ElementJob>, Vec<ElementJob>) {
        // 25 fps video + per-frame audio chunks (Fig. 2 shape).
        let video = schedule_uniform(50, frame_bytes, TimeSystem::PAL);
        let audio = schedule_uniform(50, 7056, TimeSystem::PAL);
        (video, audio)
    }

    #[test]
    fn ample_bandwidth_keeps_streams_locked() {
        let (v, a) = av_schedules(20_000);
        let report = sync_skew(CostModel::bandwidth_only(50_000_000), &v, &a);
        assert!(report.clean);
        assert_eq!(report.points, 50);
        assert_eq!(report.max_skew, TimeDelta::ZERO);
        assert_eq!(report.mean_skew_secs, 0.0);
    }

    #[test]
    fn starved_pipeline_skews() {
        // Demand: 25 × (20000 + 7056) ≈ 676 kB/s; give 60 %.
        let (v, a) = av_schedules(20_000);
        let report = sync_skew(CostModel::bandwidth_only(400_000), &v, &a);
        assert!(!report.clean);
        assert!(report.max_skew > TimeDelta::ZERO, "{report:?}");
        assert!(report.mean_skew_secs > 0.0);
    }

    #[test]
    fn empty_streams_are_trivially_synced() {
        let report = sync_skew(CostModel::bandwidth_only(1), &[], &[]);
        assert_eq!(report.points, 0);
        assert!(report.clean);
    }

    #[test]
    fn determinism() {
        let (v, a) = av_schedules(30_000);
        let m = CostModel::bandwidth_only(500_000);
        assert_eq!(sync_skew(m, &v, &a), sync_skew(m, &v, &a));
    }
}
