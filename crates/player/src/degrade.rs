//! Graceful degradation: playing a stream through a faulty store.
//!
//! The paper's real-time constraints are soft — "divergences … can be
//! tolerated" — and real streaming systems exploit exactly that: when an
//! element cannot be fetched intact and on time, *something* is presented
//! anyway. [`ResilientPlayer`] closes the loop between the fault-injection
//! layer (`tbm_blob::FaultyBlobStore`), the checksum layer
//! (`StreamInterp::verify_element`-style per-layer CRCs) and the playback
//! simulator:
//!
//! 1. each element is read through a [`RetryPolicy`] — transient I/O errors
//!    are retried with backoff, which is charged to the pipeline as a
//!    service-time penalty, never hidden;
//! 2. the bytes are verified against the interpretation's per-layer
//!    checksums — silent corruption is *detected* here, not downstream in a
//!    codec panic;
//! 3. a fault that survives retries walks the [`DegradationPolicy`] ladder:
//!    drop scalable enhancement layers (§2.2 — "bandwidth can be saved …
//!    by ignoring parts of the storage unit"), repeat the last good
//!    element, or skip.
//!
//! Every element's fate is recorded in an [`ElementFate`] and aggregated
//! into [`PlaybackStats`]' `recovered`/`degraded`/`dropped` counts, so a
//! fault storm is fully accounted for, deterministically.

use crate::{schedule_from_interp, ElementJob, PlaybackSim, PlaybackStats};
use tbm_blob::{BlobStore, ByteSpan, ReadCtx, RetryPolicy};
use tbm_core::{crc32, BlobId};
use tbm_interp::StreamInterp;
use tbm_obs::{Category, SpanId, Tracer};
use tbm_time::TimeDelta;

/// What to present when an element cannot be fetched intact.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DegradationPolicy {
    /// Present the last good element again (a freeze-frame). Falls back to
    /// dropping when no good element has been presented yet.
    RepeatLast,
    /// Present nothing for this element (a skip).
    Skip,
    /// For layered elements, fall back to the verified base layers — the
    /// scalable-stream degradation of §2.2. Unlayered elements (or a corrupt
    /// base layer) fall back to [`DegradationPolicy::RepeatLast`].
    DropLayers,
}

/// How one element fared during resilient playback.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ElementFate {
    /// Fetched and verified on the first attempt.
    Intact,
    /// Fetched intact after `attempts` tries (> 1).
    Recovered {
        /// Total read attempts, including the successful one.
        attempts: u32,
    },
    /// Presented with only the first `layers` placement layers.
    BaseLayers {
        /// Verified layers presented.
        layers: usize,
    },
    /// The previous good element was presented in its place.
    Repeated,
    /// Nothing was presented.
    Dropped,
}

/// Outcome of [`ResilientPlayer::play`].
#[derive(Debug, Clone, PartialEq)]
pub struct ResilientReport {
    /// Pipeline timing statistics, with `recovered`/`degraded`/`dropped`
    /// filled in from the fates.
    pub stats: PlaybackStats,
    /// Per-element fates, in schedule order.
    pub fates: Vec<ElementFate>,
    /// Faults detected (checksum mismatches + exhausted retries). Every
    /// injected non-latency fault on a scheduled span shows up here or as a
    /// retry inside a `Recovered` fate.
    pub faults_detected: usize,
    /// Elements whose reads triggered a cross-tier repair in the store
    /// (a tier failed verification and was healed from a verifying tier).
    /// Always zero over single-backend stores; repairs are invisible to the
    /// fates — the bytes presented were verified.
    pub repaired: usize,
}

impl ResilientReport {
    /// `true` when every element was presented intact on the first try.
    pub fn unscathed(&self) -> bool {
        self.fates.iter().all(|f| *f == ElementFate::Intact)
    }
}

/// Plays a stream through a (possibly faulty) store with retries, checksum
/// verification and graceful degradation.
#[derive(Debug, Clone, Copy)]
pub struct ResilientPlayer {
    /// The timing simulator.
    pub sim: PlaybackSim,
    /// Retry policy for transient read errors.
    pub retry: RetryPolicy,
    /// What to do when retries and checksums cannot save an element.
    pub policy: DegradationPolicy,
}

impl ResilientPlayer {
    /// A player with the given simulator, 3 retries and the
    /// [`DegradationPolicy::DropLayers`] ladder.
    pub fn new(sim: PlaybackSim) -> ResilientPlayer {
        ResilientPlayer {
            sim,
            retry: RetryPolicy::new(3),
            policy: DegradationPolicy::DropLayers,
        }
    }

    /// Builder: sets the retry policy.
    pub fn with_retry(mut self, retry: RetryPolicy) -> ResilientPlayer {
        self.retry = retry;
        self
    }

    /// Builder: sets the degradation policy.
    pub fn with_policy(mut self, policy: DegradationPolicy) -> ResilientPlayer {
        self.policy = policy;
        self
    }

    /// Reads and verifies one placement layer, retrying transient errors.
    /// Returns the attempts made and backoff spent, and whether the layer
    /// came back intact.
    fn fetch_layer<S: BlobStore + ?Sized>(
        &self,
        store: &S,
        blob: BlobId,
        span: ByteSpan,
        checksum: Option<u32>,
    ) -> LayerFetch {
        let (result, report) = self.retry.run(|attempt| {
            let mut buf = vec![0u8; span.len as usize];
            let ctx = ReadCtx {
                attempt,
                deadline_slack_us: None,
                expected_crc: checksum,
            };
            store
                .read_into_ctx(blob, span, &mut buf, &ctx)
                .map(|()| buf)
        });
        let intact = match result {
            Ok(bytes) => match checksum {
                Some(sum) => crc32(&bytes) == sum,
                None => true, // no checksum recorded: trust the read
            },
            Err(_) => false,
        };
        LayerFetch {
            intact,
            attempts: report.attempts,
            backoff_us: report.backoff_spent_us,
        }
    }

    /// Plays `stream` out of `blob` in `store`, returning timing stats and
    /// per-element fates. Deterministic for a deterministic store: the same
    /// seeded fault plan yields the identical report.
    pub fn play<S: BlobStore + ?Sized>(
        &self,
        store: &S,
        blob: BlobId,
        stream: &StreamInterp,
    ) -> ResilientReport {
        self.play_traced(store, blob, stream, &Tracer::disabled())
    }

    /// [`ResilientPlayer::play`] with tracing: the pipeline's per-element
    /// spans and deadline misses go to `tracer` (see
    /// [`PlaybackSim::run_traced`]), and every degradation decision — a
    /// fate other than intact — becomes an instant `degrade` event stamped
    /// with the element's scheduled deadline. A disabled tracer makes this
    /// identical to the untraced run.
    pub fn play_traced<S: BlobStore + ?Sized>(
        &self,
        store: &S,
        blob: BlobId,
        stream: &StreamInterp,
        tracer: &Tracer,
    ) -> ResilientReport {
        store.drain_cost_hint_us(); // start from a clean hint accumulator
        store.drain_repairs();
        let schedule = schedule_from_interp(stream, None);
        let mut jobs: Vec<ElementJob> = Vec::with_capacity(schedule.len());
        let mut penalties: Vec<TimeDelta> = Vec::with_capacity(schedule.len());
        let mut fates: Vec<ElementFate> = Vec::with_capacity(schedule.len());
        let mut faults_detected = 0usize;
        let mut repaired = 0usize;
        let mut have_good = false;

        for job in &schedule {
            let entry = stream
                .entries()
                .get(job.index)
                .expect("schedule indexes the stream");
            let layers = entry.placement.layers();
            let sums = &entry.checksums;

            // Fetch every layer, stopping at the first bad one.
            let mut bytes_fetched = 0u64;
            let mut backoff_us = 0u64;
            let mut attempts_max = 1u32;
            let mut intact_layers = 0usize;
            for (li, &span) in layers.iter().enumerate() {
                let f = self.fetch_layer(store, blob, span, sums.get(li).copied());
                bytes_fetched += span.len;
                backoff_us += f.backoff_us;
                attempts_max = attempts_max.max(f.attempts);
                if !f.intact {
                    faults_detected += 1;
                    break;
                }
                intact_layers += 1;
            }

            let fate = if intact_layers == layers.len() {
                if attempts_max > 1 {
                    ElementFate::Recovered {
                        attempts: attempts_max,
                    }
                } else {
                    ElementFate::Intact
                }
            } else {
                match self.policy {
                    DegradationPolicy::DropLayers if intact_layers > 0 => ElementFate::BaseLayers {
                        layers: intact_layers,
                    },
                    DegradationPolicy::DropLayers | DegradationPolicy::RepeatLast => {
                        if have_good {
                            ElementFate::Repeated
                        } else {
                            ElementFate::Dropped
                        }
                    }
                    DegradationPolicy::Skip => ElementFate::Dropped,
                }
            };
            if matches!(
                fate,
                ElementFate::Intact
                    | ElementFate::Recovered { .. }
                    | ElementFate::BaseLayers { .. }
            ) {
                have_good = true;
            }
            if fate != ElementFate::Intact {
                let label = match fate {
                    ElementFate::Intact => unreachable!(),
                    ElementFate::Recovered { .. } => "recovered",
                    ElementFate::BaseLayers { .. } => "base-layers",
                    ElementFate::Repeated => "repeated",
                    ElementFate::Dropped => "dropped",
                };
                tracer.event(
                    "degrade",
                    Category::Present,
                    job.deadline,
                    SpanId::NONE,
                    None,
                    vec![
                        ("index", job.index.into()),
                        ("fate", label.into()),
                        ("attempts", attempts_max.into()),
                        ("backoff_us", backoff_us.into()),
                        ("intact_layers", intact_layers.into()),
                    ],
                );
            }

            // Service cost: the bytes actually pulled off storage (including
            // extra attempts' re-reads), plus backoff and any latency hints,
            // as a penalty. A repeated element re-presents cached bytes.
            let extra_reads = (attempts_max - 1) as u64 * bytes_fetched.min(job.bytes);
            jobs.push(ElementJob {
                bytes: bytes_fetched + extra_reads,
                ..*job
            });
            let hint_us = store.drain_cost_hint_us();
            if store.drain_repairs() > 0 {
                repaired += 1;
            }
            penalties.push(TimeDelta::from_micros((backoff_us + hint_us) as i64));
            fates.push(fate);
        }

        let mut stats = self.sim.run_traced(&jobs, &penalties, tracer, None);
        for fate in &fates {
            match fate {
                ElementFate::Intact => {}
                ElementFate::Recovered { .. } => stats.recovered += 1,
                ElementFate::BaseLayers { .. } | ElementFate::Repeated => stats.degraded += 1,
                ElementFate::Dropped => stats.dropped += 1,
            }
        }
        ResilientReport {
            stats,
            fates,
            faults_detected,
            repaired,
        }
    }
}

struct LayerFetch {
    intact: bool,
    attempts: u32,
    backoff_us: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CostModel;
    use tbm_blob::{FaultPlan, FaultyBlobStore, MemBlobStore};
    use tbm_core::{MediaDescriptor, MediaKind};
    use tbm_interp::ElementEntry;
    use tbm_time::TimeSystem;

    /// A 60-element intraframe stream with checksums, 2 kB per element.
    fn stream_and_store() -> (MemBlobStore, BlobId, StreamInterp) {
        let mut store = MemBlobStore::new();
        let blob = store.create().unwrap();
        let mut entries = Vec::new();
        for i in 0..60u32 {
            let data = vec![(i % 251) as u8; 2048];
            let span = store.append(blob, &data).unwrap();
            entries.push(
                ElementEntry::simple(i as i64, 1, span)
                    .with_checksums(vec![crc32(&data)])
                    .unwrap(),
            );
        }
        let si = StreamInterp::new(
            MediaDescriptor::new(MediaKind::Video),
            TimeSystem::PAL,
            entries,
        )
        .unwrap();
        (store, blob, si)
    }

    fn player() -> ResilientPlayer {
        ResilientPlayer::new(PlaybackSim::new(CostModel::bandwidth_only(10_000_000)))
    }

    #[test]
    fn clean_store_plays_unscathed() {
        let (store, blob, si) = stream_and_store();
        let report = player().play(&store, blob, &si);
        assert!(report.unscathed());
        assert_eq!(report.faults_detected, 0);
        assert_eq!(report.stats.elements, 60);
        assert_eq!(
            (
                report.stats.recovered,
                report.stats.degraded,
                report.stats.dropped
            ),
            (0, 0, 0)
        );
    }

    #[test]
    fn transient_faults_recover_via_retries() {
        let (store, blob, si) = stream_and_store();
        let faulty = FaultyBlobStore::new(store, FaultPlan::new(21).with_transient(0.3));
        let report = player().play(&faulty, blob, &si);
        assert!(report.stats.recovered > 0, "{:?}", report.stats);
        assert_eq!(report.stats.dropped, 0);
        assert_eq!(report.stats.degraded, 0);
        // Retries hide the fault from presentation but not from the counts.
        assert!(faulty.stats().transient_errors > 0);
    }

    #[test]
    fn corruption_detected_and_repeated() {
        let (store, blob, si) = stream_and_store();
        let faulty = FaultyBlobStore::new(store, FaultPlan::new(5).with_corruption(0.15));
        let report = player()
            .with_policy(DegradationPolicy::RepeatLast)
            .play(&faulty, blob, &si);
        let injected = faulty.stats().corrupted_reads as usize;
        assert!(injected > 0);
        // No transient faults configured, so every corrupt span was read
        // exactly once and every corruption was caught by a checksum.
        assert_eq!(report.faults_detected, injected);
        assert_eq!(
            report.stats.degraded + report.stats.dropped,
            report.faults_detected
        );
        assert!(report
            .fates
            .iter()
            .any(|f| matches!(f, ElementFate::Repeated)));
    }

    #[test]
    fn skip_policy_drops() {
        let (store, blob, si) = stream_and_store();
        let faulty = FaultyBlobStore::new(store, FaultPlan::new(5).with_corruption(0.15));
        let report = player()
            .with_policy(DegradationPolicy::Skip)
            .play(&faulty, blob, &si);
        assert!(report.stats.dropped > 0);
        assert_eq!(report.stats.dropped, report.faults_detected);
    }

    #[test]
    fn layered_stream_degrades_to_base() {
        // Two-layer elements; corrupt only some enhancement layers by using
        // a low corruption rate — base layers that stay intact let
        // DropLayers present a verified base.
        let mut store = MemBlobStore::new();
        let blob = store.create().unwrap();
        let mut entries = Vec::new();
        for i in 0..60u32 {
            let base = vec![i as u8; 1024];
            let enh = vec![0xEEu8; 1024];
            let bspan = store.append(blob, &base).unwrap();
            let espan = store.append(blob, &enh).unwrap();
            entries.push(
                ElementEntry::simple(i as i64, 1, bspan)
                    .with_layers(vec![bspan, espan])
                    .unwrap()
                    .with_checksums(vec![crc32(&base), crc32(&enh)])
                    .unwrap(),
            );
        }
        let si = StreamInterp::new(
            MediaDescriptor::new(MediaKind::Video),
            TimeSystem::PAL,
            entries,
        )
        .unwrap();
        let faulty = FaultyBlobStore::new(store, FaultPlan::new(33).with_corruption(0.10));
        let report = player().play(&faulty, blob, &si);
        assert!(report.faults_detected > 0);
        let base_only = report
            .fates
            .iter()
            .filter(|f| matches!(f, ElementFate::BaseLayers { layers: 1 }))
            .count();
        assert!(base_only > 0, "{:?}", report.fates);
        assert!(report.stats.degraded >= base_only);
    }

    #[test]
    fn truncation_walks_the_ladder() {
        let (store, blob, si) = stream_and_store();
        let faulty = FaultyBlobStore::new(store, FaultPlan::new(77).with_truncation(0.1));
        let report = player().play(&faulty, blob, &si);
        // Unlayered elements with a truncated read: DropLayers falls back to
        // repeat-last.
        assert!(report.stats.degraded > 0, "{:?}", report.stats);
        assert_eq!(
            report.faults_detected,
            faulty.stats().truncated_reads as usize
        );
    }

    #[test]
    fn latency_hints_slow_the_pipeline() {
        let (store, blob, si) = stream_and_store();
        // Tight bandwidth so added latency turns into lateness: 2 kB per
        // 40 ms period needs 51.2 kB/s.
        let tight = ResilientPlayer::new(PlaybackSim::new(CostModel::bandwidth_only(51_200)));
        let clean = tight.play(&store, blob, &si);
        let faulty = FaultyBlobStore::new(store, FaultPlan::new(3).with_latency(1.0, 30_000));
        let slowed = tight.play(&faulty, blob, &si);
        assert!(slowed.stats.misses > clean.stats.misses);
        assert!(faulty.stats().latency_events > 0);
    }

    #[test]
    fn traced_play_records_degradation_decisions() {
        let (store, blob, si) = stream_and_store();
        let faulty = FaultyBlobStore::new(store, FaultPlan::new(5).with_corruption(0.15));
        let tracer = Tracer::new();
        let report = player()
            .with_policy(DegradationPolicy::RepeatLast)
            .play_traced(&faulty, blob, &si, &tracer);
        assert_eq!(
            report,
            player()
                .with_policy(DegradationPolicy::RepeatLast)
                .play(&faulty, blob, &si),
            "tracing must not change the outcome"
        );
        let snap = tracer.snapshot();
        let degrades: Vec<_> = snap
            .records
            .iter()
            .filter(|r| r.name == "degrade")
            .collect();
        assert_eq!(
            degrades.len(),
            report
                .fates
                .iter()
                .filter(|f| **f != ElementFate::Intact)
                .count()
        );
        assert!(degrades
            .iter()
            .any(|r| r.attr("fate").and_then(|v| v.as_str()) == Some("repeated")));
        let spans = snap
            .records
            .iter()
            .filter(|r| r.name == "player.element")
            .count();
        assert_eq!(spans, report.stats.elements);
    }

    #[test]
    fn same_seed_identical_report() {
        let plan = FaultPlan::new(4242)
            .with_transient(0.1)
            .with_corruption(0.05)
            .with_truncation(0.02)
            .with_latency(0.1, 500);
        let run = || {
            let (store, blob, si) = stream_and_store();
            let faulty = FaultyBlobStore::new(store, plan);
            player().play(&faulty, blob, &si)
        };
        assert_eq!(run(), run());
    }
}
