//! Color models and conversions.
//!
//! Three conversions matter to the paper's examples:
//!
//! * **RGB → YUV** (Fig. 2): "The RGB values are then converted to YUV" before
//!   chroma subsampling and compression. We use BT.601 integer arithmetic.
//! * **YUV → RGB**: the inverse, needed when decoding for presentation.
//! * **RGB → CMYK** (Table 1, *color separation*): "Since the mapping from
//!   RGB into the CMYK color model is not unique, additional information must
//!   be provided as parameters … defined in separation tables which account
//!   for physical characteristics of inks and papers." [`SeparationTable`]
//!   carries those parameters (black generation and undercolor removal).

/// An 8-bit-per-channel RGB pixel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Rgb {
    /// Red intensity.
    pub r: u8,
    /// Green intensity.
    pub g: u8,
    /// Blue intensity.
    pub b: u8,
}

/// An 8-bit YUV pixel (luminance Y plus chrominance U, V; U/V biased by 128).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Yuv {
    /// Luminance.
    pub y: u8,
    /// Blue-difference chrominance (biased: 128 = neutral).
    pub u: u8,
    /// Red-difference chrominance (biased: 128 = neutral).
    pub v: u8,
}

/// An 8-bit-per-channel CMYK pixel (ink coverages).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Cmyk {
    /// Cyan.
    pub c: u8,
    /// Magenta.
    pub m: u8,
    /// Yellow.
    pub y: u8,
    /// Black (key).
    pub k: u8,
}

impl Rgb {
    /// Constructs a pixel.
    pub const fn new(r: u8, g: u8, b: u8) -> Rgb {
        Rgb { r, g, b }
    }

    /// BT.601 luma, rounded.
    pub fn luma(self) -> u8 {
        // y = 0.299 r + 0.587 g + 0.114 b, in 16.16 fixed point.
        let y = 19595 * self.r as u32 + 38470 * self.g as u32 + 7471 * self.b as u32;
        ((y + 32768) >> 16) as u8
    }
}

impl Yuv {
    /// Constructs a pixel.
    pub const fn new(y: u8, u: u8, v: u8) -> Yuv {
        Yuv { y, u, v }
    }
}

/// RGB → YUV, BT.601 full-range integer approximation.
pub fn rgb_to_yuv(p: Rgb) -> Yuv {
    let r = p.r as i32;
    let g = p.g as i32;
    let b = p.b as i32;
    // 8.8 fixed-point coefficients.
    let y = (77 * r + 150 * g + 29 * b + 128) >> 8;
    let u = ((-43 * r - 85 * g + 128 * b + 128) >> 8) + 128;
    let v = ((128 * r - 107 * g - 21 * b + 128) >> 8) + 128;
    Yuv {
        y: y.clamp(0, 255) as u8,
        u: u.clamp(0, 255) as u8,
        v: v.clamp(0, 255) as u8,
    }
}

/// YUV → RGB, inverse BT.601 full-range integer approximation.
pub fn yuv_to_rgb(p: Yuv) -> Rgb {
    let y = p.y as i32;
    let u = p.u as i32 - 128;
    let v = p.v as i32 - 128;
    let r = y + ((359 * v + 128) >> 8);
    let g = y - ((88 * u + 183 * v + 128) >> 8);
    let b = y + ((454 * u + 128) >> 8);
    Rgb {
        r: r.clamp(0, 255) as u8,
        g: g.clamp(0, 255) as u8,
        b: b.clamp(0, 255) as u8,
    }
}

/// Parameters for RGB → CMYK separation — the paper's "separation tables
/// which account for physical characteristics of inks and papers".
///
/// * `black_generation` ∈ [0, 256]: how much of the gray component moves into
///   the black (K) channel (256 = full black replacement).
/// * `undercolor_removal` ∈ [0, 256]: how much of the generated black is
///   removed back out of C/M/Y.
/// * `ink_limit` ∈ [0, 1020]: maximum total ink coverage (sum of C+M+Y+K).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeparationTable {
    /// Black-generation amount in 0..=256.
    pub black_generation: u16,
    /// Undercolor-removal amount in 0..=256.
    pub undercolor_removal: u16,
    /// Total ink limit in 0..=1020.
    pub ink_limit: u16,
}

impl SeparationTable {
    /// A neutral default: full black generation and removal, generous ink
    /// limit (typical for coated stock).
    pub fn coated_stock() -> SeparationTable {
        SeparationTable {
            black_generation: 256,
            undercolor_removal: 256,
            ink_limit: 820,
        }
    }

    /// Newsprint: restrained black generation and tight ink limit.
    pub fn newsprint() -> SeparationTable {
        SeparationTable {
            black_generation: 200,
            undercolor_removal: 180,
            ink_limit: 620,
        }
    }
}

/// RGB → CMYK using a separation table (Table 1's *color separation*
/// derivation, per pixel).
pub fn separate(p: Rgb, table: &SeparationTable) -> Cmyk {
    // Naive complements.
    let c0 = 255 - p.r as u32;
    let m0 = 255 - p.g as u32;
    let y0 = 255 - p.b as u32;
    // Gray component.
    let gray = c0.min(m0).min(y0);
    // Black generation.
    let k = (gray * table.black_generation as u32) >> 8;
    // Undercolor removal.
    let ucr = (k * table.undercolor_removal as u32) >> 8;
    let mut c = c0.saturating_sub(ucr);
    let mut m = m0.saturating_sub(ucr);
    let mut y = y0.saturating_sub(ucr);
    let mut k = k;
    // Ink limiting: scale down proportionally if the total exceeds the limit.
    let total = c + m + y + k;
    if total > table.ink_limit as u32 && total > 0 {
        let scale = (table.ink_limit as u32 * 256) / total; // 8.8 fixed point
        c = (c * scale) >> 8;
        m = (m * scale) >> 8;
        y = (y * scale) >> 8;
        k = (k * scale) >> 8;
    }
    Cmyk {
        c: c.min(255) as u8,
        m: m.min(255) as u8,
        y: y.min(255) as u8,
        k: k.min(255) as u8,
    }
}

/// Approximate CMYK → RGB (for previewing separations).
pub fn unseparate(p: Cmyk) -> Rgb {
    let k = p.k as u32;
    let f = |ink: u8| -> u8 {
        let covered = ink as u32 + k;
        255u32.saturating_sub(covered).min(255) as u8
    };
    Rgb {
        r: f(p.c),
        g: f(p.m),
        b: f(p.y),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primaries_map_to_expected_yuv_regions() {
        let white = rgb_to_yuv(Rgb::new(255, 255, 255));
        assert!(white.y >= 254);
        assert!((white.u as i32 - 128).abs() <= 2);
        assert!((white.v as i32 - 128).abs() <= 2);

        let black = rgb_to_yuv(Rgb::new(0, 0, 0));
        assert!(black.y <= 1);

        let red = rgb_to_yuv(Rgb::new(255, 0, 0));
        assert!(red.v > 200, "red has strong V: {red:?}");
        let blue = rgb_to_yuv(Rgb::new(0, 0, 255));
        assert!(blue.u > 200, "blue has strong U: {blue:?}");
    }

    #[test]
    fn rgb_yuv_roundtrip_within_tolerance() {
        // Integer BT.601 round trip is not exact; it must stay within a few
        // codes for all corners and a sweep of grays.
        let mut worst = 0i32;
        let samples = [
            Rgb::new(0, 0, 0),
            Rgb::new(255, 255, 255),
            Rgb::new(255, 0, 0),
            Rgb::new(0, 255, 0),
            Rgb::new(0, 0, 255),
            Rgb::new(12, 200, 99),
            Rgb::new(130, 130, 130),
        ];
        for p in samples {
            let q = yuv_to_rgb(rgb_to_yuv(p));
            worst = worst
                .max((p.r as i32 - q.r as i32).abs())
                .max((p.g as i32 - q.g as i32).abs())
                .max((p.b as i32 - q.b as i32).abs());
        }
        assert!(worst <= 3, "round-trip error {worst} too large");
    }

    #[test]
    fn grays_roundtrip_closely() {
        for g in (0..=255u16).step_by(5) {
            let p = Rgb::new(g as u8, g as u8, g as u8);
            let q = yuv_to_rgb(rgb_to_yuv(p));
            assert!((p.r as i32 - q.r as i32).abs() <= 2, "gray {g}");
        }
    }

    #[test]
    fn luma_matches_conversion() {
        for p in [Rgb::new(10, 20, 30), Rgb::new(200, 100, 50)] {
            let y1 = p.luma() as i32;
            let y2 = rgb_to_yuv(p).y as i32;
            assert!((y1 - y2).abs() <= 1);
        }
    }

    #[test]
    fn separation_moves_gray_into_black() {
        let table = SeparationTable::coated_stock();
        let gray = separate(Rgb::new(100, 100, 100), &table);
        // Full UCR: the gray component lands entirely in K.
        assert_eq!(gray.k, 155);
        assert_eq!((gray.c, gray.m, gray.y), (0, 0, 0));
    }

    #[test]
    fn separation_depends_on_table() {
        // The paper: the RGB→CMYK mapping "is not unique" — different
        // separation tables give different inks for the same pixel.
        let p = Rgb::new(40, 90, 160);
        let a = separate(p, &SeparationTable::coated_stock());
        let b = separate(p, &SeparationTable::newsprint());
        assert_ne!(a, b);
    }

    #[test]
    fn ink_limit_enforced() {
        let table = SeparationTable {
            black_generation: 0, // leave gray in CMY to maximize ink
            undercolor_removal: 0,
            ink_limit: 300,
        };
        let dark = separate(Rgb::new(0, 0, 0), &table);
        let total = dark.c as u32 + dark.m as u32 + dark.y as u32 + dark.k as u32;
        assert!(total <= 300, "total ink {total} exceeds limit");
    }

    #[test]
    fn pure_colors_have_expected_inks() {
        let table = SeparationTable::coated_stock();
        let red = separate(Rgb::new(255, 0, 0), &table);
        assert_eq!(red.c, 0);
        assert!(red.m > 200 && red.y > 200);
        let white = separate(Rgb::new(255, 255, 255), &table);
        assert_eq!((white.c, white.m, white.y, white.k), (0, 0, 0, 0));
    }

    #[test]
    fn unseparate_previews_reasonably() {
        let table = SeparationTable::coated_stock();
        for p in [
            Rgb::new(255, 0, 0),
            Rgb::new(128, 128, 128),
            Rgb::new(0, 80, 160),
        ] {
            let q = unseparate(separate(p, &table));
            // Coarse: preview within 40 codes per channel.
            assert!((p.r as i32 - q.r as i32).abs() <= 40, "{p:?} -> {q:?}");
            assert!((p.g as i32 - q.g as i32).abs() <= 40, "{p:?} -> {q:?}");
            assert!((p.b as i32 - q.b as i32).abs() <= 40, "{p:?} -> {q:?}");
        }
    }
}
