//! # tbm-media — concrete media elements
//!
//! The data model of `tbm-core` is media-independent; this crate supplies the
//! concrete media the paper discusses, together with synthetic *capture* —
//! the substitute for the digitization hardware the paper's examples assume
//! (see DESIGN.md's substitution record):
//!
//! * [`color`] — RGB, YUV and CMYK color models with exact integer
//!   conversions, including the CMYK separation used by the paper's
//!   color-separation derivation (Table 1).
//! * [`Frame`] — raster video frames/images in several pixel formats,
//!   including the chroma-subsampled "YUV 8:2:2" layout of the Fig. 2
//!   walk-through (Y at 8 bpp, U and V averaged over 2×2 blocks → 12 bpp).
//! * [`AudioBuffer`] — interleaved 16-bit PCM with gain/mix/normalization
//!   primitives.
//! * [`midi`] — MIDI-like musical events ("Start Note X" / "Stop Note Y",
//!   §3.3) and note lists, the paper's event-based medium.
//! * [`animation`] — symbolic movement specifications, the paper's
//!   non-continuous medium ("at times when the animated object is at rest
//!   there are no associated media elements").
//! * [`gen`] — deterministic signal and test-pattern generators standing in
//!   for capture hardware.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod animation;
mod audio;
pub mod color;
mod frame;
pub mod gen;
pub mod midi;

pub use audio::AudioBuffer;
pub use frame::{Frame, PixelFormat};
