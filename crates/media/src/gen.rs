//! Deterministic synthetic capture.
//!
//! The paper's examples start from digitization hardware: a PAL camera, a
//! CD-audio sampler, a MIDI keyboard. This module is the reproduction's
//! stand-in (see DESIGN.md's substitution record): deterministic generators
//! that produce video frames, PCM audio and note material with the same
//! structural properties — frame geometry, sample rates, temporal texture —
//! so the interpretation/derivation/composition layers above exercise the
//! identical code paths. Determinism (a seeded [`Lcg`], no ambient entropy)
//! keeps every experiment reproducible bit-for-bit.

use crate::color::Rgb;
use crate::midi::Note;
use crate::{AudioBuffer, Frame, PixelFormat};

/// A small deterministic linear congruential generator (Numerical Recipes
/// constants). Used instead of a `rand` dependency so library output is
/// reproducible from a seed alone.
#[derive(Debug, Clone)]
pub struct Lcg {
    state: u64,
}

impl Lcg {
    /// Seeds the generator.
    pub fn new(seed: u64) -> Lcg {
        Lcg {
            state: seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407),
        }
    }

    /// Next 32 random bits.
    pub fn next_u32(&mut self) -> u32 {
        self.state = self
            .state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (self.state >> 32) as u32
    }

    /// Uniform value in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u32) -> u32 {
        debug_assert!(bound > 0);
        // Multiply-shift range reduction.
        ((self.next_u32() as u64 * bound as u64) >> 32) as u32
    }

    /// Uniform `i16` sample in `[-amplitude, amplitude]`.
    pub fn sample(&mut self, amplitude: i16) -> i16 {
        let span = amplitude as i32 * 2 + 1;
        (self.below(span as u32) as i32 - amplitude as i32) as i16
    }
}

// ---------------------------------------------------------------------------
// Video patterns
// ---------------------------------------------------------------------------

/// Built-in synthetic video scenes.
///
/// Each variant renders frame `index` of a scene deterministically. The
/// scenes differ enough that transitions between them (fades, wipes) are
/// visually and numerically detectable in tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VideoPattern {
    /// A bright vertical bar sweeping left→right over a dark background,
    /// one pixel per frame, wrapping.
    MovingBar,
    /// A horizontal gradient whose hue shifts with the frame index.
    ShiftingGradient,
    /// A checkerboard whose phase flips every `u32` frames.
    Checkerboard(u32),
    /// Seeded per-pixel noise (models high-entropy content that defeats
    /// compression).
    Noise(u64),
    /// A single flat color.
    Solid(u8, u8, u8),
}

impl VideoPattern {
    /// Renders frame `index` at the given geometry, in RGB24.
    pub fn render(self, index: u64, width: u32, height: u32) -> Frame {
        let mut f = Frame::black(width, height, PixelFormat::Rgb24);
        match self {
            VideoPattern::MovingBar => {
                let bar = (index % width.max(1) as u64) as u32;
                let bar_w = (width / 16).max(1);
                for y in 0..height {
                    for x in 0..width {
                        let on = (x + width).wrapping_sub(bar) % width < bar_w;
                        let c = if on {
                            Rgb::new(230, 230, 60)
                        } else {
                            Rgb::new(20, 24, (40 + (y % 64)) as u8)
                        };
                        f.set_rgb(x, y, c);
                    }
                }
            }
            VideoPattern::ShiftingGradient => {
                let phase = (index * 3 % 256) as u32;
                for y in 0..height {
                    for x in 0..width {
                        let g = (x * 255 / width.max(1) + phase) % 256;
                        f.set_rgb(
                            x,
                            y,
                            Rgb::new(g as u8, (255 - g) as u8, (y * 255 / height.max(1)) as u8),
                        );
                    }
                }
            }
            VideoPattern::Checkerboard(period) => {
                let flip = (index / period.max(1) as u64) % 2 == 1;
                let cell = (width / 8).max(1);
                for y in 0..height {
                    for x in 0..width {
                        let mut on = ((x / cell) + (y / cell)).is_multiple_of(2);
                        if flip {
                            on = !on;
                        }
                        let c = if on {
                            Rgb::new(235, 235, 235)
                        } else {
                            Rgb::new(25, 25, 25)
                        };
                        f.set_rgb(x, y, c);
                    }
                }
            }
            VideoPattern::Noise(seed) => {
                let mut rng = Lcg::new(seed ^ index.wrapping_mul(0x9E3779B97F4A7C15));
                for y in 0..height {
                    for x in 0..width {
                        let v = rng.next_u32();
                        f.set_rgb(x, y, Rgb::new(v as u8, (v >> 8) as u8, (v >> 16) as u8));
                    }
                }
            }
            VideoPattern::Solid(r, g, b) => {
                for y in 0..height {
                    for x in 0..width {
                        f.set_rgb(x, y, Rgb::new(r, g, b));
                    }
                }
            }
        }
        f
    }
}

/// Renders `count` RGB24 frames of a pattern starting at `first_index`.
pub fn render_frames(
    pattern: VideoPattern,
    first_index: u64,
    count: usize,
    width: u32,
    height: u32,
) -> Vec<Frame> {
    (0..count as u64)
        .map(|i| pattern.render(first_index + i, width, height))
        .collect()
}

// ---------------------------------------------------------------------------
// Audio signals
// ---------------------------------------------------------------------------

/// Built-in synthetic audio signals.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AudioSignal {
    /// A pure sine at `hz` with peak `amplitude`.
    Sine {
        /// Frequency in hertz.
        hz: f64,
        /// Peak amplitude (≤ `i16::MAX`).
        amplitude: i16,
    },
    /// Seeded uniform white noise with peak `amplitude`.
    Noise {
        /// PRNG seed.
        seed: u64,
        /// Peak amplitude.
        amplitude: i16,
    },
    /// A linear chirp from `from_hz` to `to_hz` over `sweep_frames` frames.
    Chirp {
        /// Start frequency in hertz.
        from_hz: f64,
        /// End frequency in hertz.
        to_hz: f64,
        /// Frames over which the sweep completes.
        sweep_frames: u64,
        /// Peak amplitude.
        amplitude: i16,
    },
    /// Digital silence.
    Silence,
}

impl AudioSignal {
    /// Generates `frames` sample-frames at `sample_rate`, starting at frame
    /// `first_frame`, across `channels` identical channels.
    pub fn generate(
        self,
        first_frame: u64,
        frames: usize,
        sample_rate: u32,
        channels: u16,
    ) -> AudioBuffer {
        let mut buf = AudioBuffer::silence(channels, frames);
        match self {
            AudioSignal::Silence => {}
            AudioSignal::Sine { hz, amplitude } => {
                for i in 0..frames {
                    let t = (first_frame + i as u64) as f64 / sample_rate as f64;
                    let v = (amplitude as f64 * (2.0 * std::f64::consts::PI * hz * t).sin()) as i16;
                    for c in 0..channels {
                        buf.set_sample(i, c, v);
                    }
                }
            }
            AudioSignal::Noise { seed, amplitude } => {
                let mut rng = Lcg::new(seed ^ first_frame);
                for i in 0..frames {
                    for c in 0..channels {
                        buf.set_sample(i, c, rng.sample(amplitude));
                    }
                }
            }
            AudioSignal::Chirp {
                from_hz,
                to_hz,
                sweep_frames,
                amplitude,
            } => {
                let n = sweep_frames.max(1) as f64;
                for i in 0..frames {
                    let k = (first_frame + i as u64) as f64;
                    let frac = (k / n).min(1.0);
                    let hz = from_hz + (to_hz - from_hz) * frac;
                    // Phase integral of a linear sweep: f0·t + (f1−f0)·t²/(2T)
                    let t = k / sample_rate as f64;
                    let phase =
                        2.0 * std::f64::consts::PI * (from_hz * t + (hz - from_hz) * t / 2.0);
                    let v = (amplitude as f64 * phase.sin()) as i16;
                    for c in 0..channels {
                        buf.set_sample(i, c, v);
                    }
                }
            }
        }
        buf
    }
}

// ---------------------------------------------------------------------------
// Note material
// ---------------------------------------------------------------------------

/// An ascending major scale starting at `root`, one note per `step_ticks`,
/// each lasting `dur_ticks`: `(note, start, duration)` triples ready for
/// `notes_to_events` or a music stream.
pub fn major_scale(
    channel: u8,
    root: u8,
    octaves: u8,
    step_ticks: i64,
    dur_ticks: i64,
) -> Vec<(Note, i64, i64)> {
    const STEPS: [u8; 7] = [0, 2, 4, 5, 7, 9, 11];
    let mut out = Vec::new();
    let mut at = 0i64;
    for oct in 0..octaves {
        for s in STEPS {
            let key = root.saturating_add(oct * 12).saturating_add(s);
            out.push((Note::new(channel, key.min(127), 96), at, dur_ticks));
            at += step_ticks;
        }
    }
    // Final tonic.
    let key = root.saturating_add(octaves * 12).min(127);
    out.push((Note::new(channel, key, 96), at, dur_ticks));
    out
}

/// A I–IV–V–I chord progression in the major key of `root`; each chord is
/// three overlapping notes (the paper's "a chord would then require
/// overlapping elements").
pub fn chord_progression(channel: u8, root: u8, chord_ticks: i64) -> Vec<(Note, i64, i64)> {
    let triad = |base: u8| [base, base + 4, base + 7];
    let degrees = [0u8, 5, 7, 0]; // I, IV, V, I
    let mut out = Vec::new();
    for (i, d) in degrees.into_iter().enumerate() {
        let at = i as i64 * chord_ticks;
        for key in triad(root + d) {
            out.push((Note::new(channel, key.min(127), 80), at, chord_ticks));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lcg_is_deterministic_and_bounded() {
        let mut a = Lcg::new(42);
        let mut b = Lcg::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u32(), b.next_u32());
        }
        let mut c = Lcg::new(7);
        for _ in 0..1000 {
            assert!(c.below(10) < 10);
            let s = c.sample(100);
            assert!((-100..=100).contains(&s));
        }
    }

    #[test]
    fn patterns_are_deterministic() {
        for p in [
            VideoPattern::MovingBar,
            VideoPattern::ShiftingGradient,
            VideoPattern::Checkerboard(5),
            VideoPattern::Noise(9),
            VideoPattern::Solid(1, 2, 3),
        ] {
            assert_eq!(p.render(17, 32, 24), p.render(17, 32, 24));
        }
    }

    #[test]
    fn moving_bar_moves() {
        let f0 = VideoPattern::MovingBar.render(0, 64, 16);
        let f1 = VideoPattern::MovingBar.render(10, 64, 16);
        assert!(f0.mean_abs_diff(&f1).unwrap() > 0.5);
        // Consecutive frames differ only slightly (good for interframe coding).
        let f0b = VideoPattern::MovingBar.render(1, 64, 16);
        assert!(f0.mean_abs_diff(&f0b).unwrap() < f0.mean_abs_diff(&f1).unwrap());
    }

    #[test]
    fn render_frames_sequences_indices() {
        let v = render_frames(VideoPattern::ShiftingGradient, 5, 3, 16, 8);
        assert_eq!(v.len(), 3);
        assert_eq!(v[0], VideoPattern::ShiftingGradient.render(5, 16, 8));
        assert_eq!(v[2], VideoPattern::ShiftingGradient.render(7, 16, 8));
    }

    #[test]
    fn sine_has_expected_rms() {
        // RMS of a sine is amplitude/√2.
        let buf = AudioSignal::Sine {
            hz: 440.0,
            amplitude: 10000,
        }
        .generate(0, 44100, 44100, 1);
        let rms = buf.rms();
        assert!((rms - 10000.0 / 2f64.sqrt()).abs() < 60.0, "rms = {rms}");
    }

    #[test]
    fn sine_is_phase_continuous_across_blocks() {
        let s = AudioSignal::Sine {
            hz: 1000.0,
            amplitude: 8000,
        };
        let whole = s.generate(0, 2000, 44100, 1);
        let mut first = s.generate(0, 1000, 44100, 1);
        let second = s.generate(1000, 1000, 44100, 1);
        assert!(first.append(&second));
        assert_eq!(whole, first);
    }

    #[test]
    fn silence_is_silent_and_noise_is_not() {
        let s = AudioSignal::Silence.generate(0, 100, 44100, 2);
        assert_eq!(s.peak(), 0);
        let n = AudioSignal::Noise {
            seed: 3,
            amplitude: 500,
        }
        .generate(0, 1000, 44100, 2);
        assert!(n.peak() > 0 && n.peak() <= 500);
    }

    #[test]
    fn chirp_frequency_rises() {
        let c = AudioSignal::Chirp {
            from_hz: 100.0,
            to_hz: 2000.0,
            sweep_frames: 44100,
            amplitude: 9000,
        };
        let early = c.generate(0, 4410, 44100, 1);
        let late = c.generate(39690, 4410, 44100, 1);
        // Count zero crossings as a frequency proxy.
        let zc = |b: &AudioBuffer| {
            b.samples()
                .windows(2)
                .filter(|w| (w[0] < 0) != (w[1] < 0))
                .count()
        };
        assert!(
            zc(&late) > zc(&early) * 3,
            "{} vs {}",
            zc(&late),
            zc(&early)
        );
    }

    #[test]
    fn major_scale_shape() {
        let scale = major_scale(0, 60, 1, 480, 400);
        assert_eq!(scale.len(), 8);
        assert_eq!(scale[0].0.key, 60);
        assert_eq!(scale[7].0.key, 72);
        // Strictly ascending pitches, strictly increasing starts.
        assert!(scale.windows(2).all(|w| w[0].0.key < w[1].0.key));
        assert!(scale.windows(2).all(|w| w[0].1 < w[1].1));
    }

    #[test]
    fn chords_overlap() {
        let prog = chord_progression(0, 60, 960);
        assert_eq!(prog.len(), 12);
        // Three notes share each start time.
        let first_chord: Vec<_> = prog.iter().filter(|(_, at, _)| *at == 0).collect();
        assert_eq!(first_chord.len(), 3);
    }
}
