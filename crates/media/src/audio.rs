//! PCM audio buffers.
//!
//! An [`AudioBuffer`] holds interleaved 16-bit samples — the element content
//! of PCM audio streams. In the strict model every *sample* is a stream
//! element; in practice (and in the paper's Fig. 2 interleaving example)
//! audio travels in blocks, e.g. "1764 sample pairs" per PAL video frame.
//! An `AudioBuffer` is such a block: it implements
//! [`tbm_core::StreamElement`] so it can be a timed-stream element whose
//! duration is its sample-frame count.

use tbm_core::StreamElement;

/// Interleaved 16-bit PCM: `channels` samples per sample-frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AudioBuffer {
    channels: u16,
    samples: Vec<i16>, // length divisible by channels
}

impl AudioBuffer {
    /// Creates a silent buffer of `frames` sample-frames.
    pub fn silence(channels: u16, frames: usize) -> AudioBuffer {
        assert!(channels >= 1, "at least one channel");
        AudioBuffer {
            channels,
            samples: vec![0i16; frames * channels as usize],
        }
    }

    /// Wraps interleaved samples; the length must divide evenly by
    /// `channels`.
    pub fn from_samples(channels: u16, samples: Vec<i16>) -> Option<AudioBuffer> {
        if channels >= 1 && samples.len().is_multiple_of(channels as usize) {
            Some(AudioBuffer { channels, samples })
        } else {
            None
        }
    }

    /// Number of channels.
    pub fn channels(&self) -> u16 {
        self.channels
    }

    /// Number of sample-frames (samples per channel).
    pub fn frames(&self) -> usize {
        self.samples.len() / self.channels as usize
    }

    /// The interleaved samples.
    pub fn samples(&self) -> &[i16] {
        &self.samples
    }

    /// Mutable access to the interleaved samples.
    pub fn samples_mut(&mut self) -> &mut [i16] {
        &mut self.samples
    }

    /// One sample: frame index × channel index.
    pub fn sample(&self, frame: usize, channel: u16) -> i16 {
        self.samples[frame * self.channels as usize + channel as usize]
    }

    /// Sets one sample.
    pub fn set_sample(&mut self, frame: usize, channel: u16, value: i16) {
        self.samples[frame * self.channels as usize + channel as usize] = value;
    }

    /// The peak absolute amplitude (0 for an empty buffer).
    pub fn peak(&self) -> i16 {
        self.samples
            .iter()
            .map(|s| s.unsigned_abs())
            .max()
            .map(|p| p.min(i16::MAX as u16) as i16)
            .unwrap_or(0)
    }

    /// Root-mean-square amplitude.
    pub fn rms(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        let sum: f64 = self.samples.iter().map(|&s| (s as f64) * (s as f64)).sum();
        (sum / self.samples.len() as f64).sqrt()
    }

    /// Applies a rational gain `num/den` with saturation.
    pub fn apply_gain(&mut self, num: i32, den: i32) {
        assert!(den > 0, "gain denominator must be positive");
        for s in &mut self.samples {
            let v = (*s as i64 * num as i64) / den as i64;
            *s = v.clamp(i16::MIN as i64, i16::MAX as i64) as i16;
        }
    }

    /// Mixes `other` into `self` sample-by-sample with saturation; the
    /// shorter buffer is treated as silence-padded. Channel counts must
    /// match.
    pub fn mix_in(&mut self, other: &AudioBuffer) -> bool {
        if self.channels != other.channels {
            return false;
        }
        if other.samples.len() > self.samples.len() {
            self.samples.resize(other.samples.len(), 0);
        }
        for (dst, &src) in self.samples.iter_mut().zip(&other.samples) {
            *dst = (*dst as i32 + src as i32).clamp(i16::MIN as i32, i16::MAX as i32) as i16;
        }
        true
    }

    /// Concatenates another buffer (channel counts must match).
    pub fn append(&mut self, other: &AudioBuffer) -> bool {
        if self.channels != other.channels {
            return false;
        }
        self.samples.extend_from_slice(&other.samples);
        true
    }

    /// A sub-range of sample-frames `[from, to)`, clamped to bounds.
    pub fn slice_frames(&self, from: usize, to: usize) -> AudioBuffer {
        let n = self.frames();
        let from = from.min(n);
        let to = to.clamp(from, n);
        let c = self.channels as usize;
        AudioBuffer {
            channels: self.channels,
            samples: self.samples[from * c..to * c].to_vec(),
        }
    }

    /// Serializes to little-endian bytes (the PCM wire/BLOB format).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.samples.len() * 2);
        for &s in &self.samples {
            out.extend_from_slice(&s.to_le_bytes());
        }
        out
    }

    /// Deserializes from little-endian bytes.
    pub fn from_bytes(channels: u16, bytes: &[u8]) -> Option<AudioBuffer> {
        if !bytes.len().is_multiple_of(2) {
            return None;
        }
        let samples: Vec<i16> = bytes
            .chunks_exact(2)
            .map(|c| i16::from_le_bytes([c[0], c[1]]))
            .collect();
        AudioBuffer::from_samples(channels, samples)
    }
}

impl StreamElement for AudioBuffer {
    fn byte_size(&self) -> u64 {
        (self.samples.len() * 2) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry() {
        let b = AudioBuffer::silence(2, 1764);
        assert_eq!(b.channels(), 2);
        assert_eq!(b.frames(), 1764);
        // The Fig. 2 audio block: 1764 stereo sample pairs = 7056 bytes.
        assert_eq!(b.byte_size(), 7056);
    }

    #[test]
    fn from_samples_validates_interleaving() {
        assert!(AudioBuffer::from_samples(2, vec![1, 2, 3]).is_none());
        assert!(AudioBuffer::from_samples(2, vec![1, 2, 3, 4]).is_some());
        assert!(AudioBuffer::from_samples(0, vec![]).is_none());
    }

    #[test]
    fn sample_addressing() {
        let mut b = AudioBuffer::silence(2, 4);
        b.set_sample(1, 0, 100);
        b.set_sample(1, 1, -100);
        assert_eq!(b.sample(1, 0), 100);
        assert_eq!(b.sample(1, 1), -100);
        assert_eq!(b.samples()[2], 100);
        assert_eq!(b.samples()[3], -100);
    }

    #[test]
    fn peak_and_rms() {
        let b = AudioBuffer::from_samples(1, vec![0, 3, -4, 0]).unwrap();
        assert_eq!(b.peak(), 4);
        assert!((b.rms() - (25.0f64 / 4.0).sqrt()).abs() < 1e-12);
        assert_eq!(AudioBuffer::silence(1, 0).peak(), 0);
        assert_eq!(AudioBuffer::silence(1, 0).rms(), 0.0);
    }

    #[test]
    fn peak_handles_i16_min() {
        let b = AudioBuffer::from_samples(1, vec![i16::MIN]).unwrap();
        assert_eq!(b.peak(), i16::MAX); // clamped magnitude
    }

    #[test]
    fn gain_scales_and_saturates() {
        let mut b = AudioBuffer::from_samples(1, vec![100, -100, 30000]).unwrap();
        b.apply_gain(2, 1);
        assert_eq!(b.samples(), &[200, -200, i16::MAX]);
        b.apply_gain(1, 2);
        assert_eq!(b.samples()[0], 100);
    }

    #[test]
    fn mix_saturates_and_pads() {
        let mut a = AudioBuffer::from_samples(1, vec![30000, 10]).unwrap();
        let b = AudioBuffer::from_samples(1, vec![30000, 10, 7]).unwrap();
        assert!(a.mix_in(&b));
        assert_eq!(a.samples(), &[i16::MAX, 20, 7]);
        let c = AudioBuffer::silence(2, 1);
        assert!(!a.mix_in(&c));
    }

    #[test]
    fn append_and_slice() {
        let mut a = AudioBuffer::from_samples(2, vec![1, 2, 3, 4]).unwrap();
        let b = AudioBuffer::from_samples(2, vec![5, 6]).unwrap();
        assert!(a.append(&b));
        assert_eq!(a.frames(), 3);
        let s = a.slice_frames(1, 3);
        assert_eq!(s.samples(), &[3, 4, 5, 6]);
        // Clamped out-of-range slice.
        assert_eq!(a.slice_frames(5, 9).frames(), 0);
    }

    #[test]
    fn byte_roundtrip() {
        let a = AudioBuffer::from_samples(2, vec![0, -1, i16::MAX, i16::MIN]).unwrap();
        let bytes = a.to_bytes();
        assert_eq!(bytes.len(), 8);
        let back = AudioBuffer::from_bytes(2, &bytes).unwrap();
        assert_eq!(a, back);
        assert!(AudioBuffer::from_bytes(2, &bytes[..3]).is_none());
    }
}
