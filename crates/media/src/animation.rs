//! Symbolic animation: movement specifications.
//!
//! The paper (§3.3) describes animation as a *non-continuous* medium:
//! "consider animation represented by sequences of elements specifying
//! movement. At times when the animated object is at rest there are no
//! associated media elements." A [`MoveSpec`] is such an element — it names
//! an object and where it travels during the element's duration. Rendering
//! animation to video is a *type-changing derivation* (§4.2, "the synthesis
//! of a video object via rendering an animation sequence") implemented in
//! `tbm-derive`.

use tbm_core::{ElementDescriptor, StreamElement};

/// A 2-D point in abstract scene coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Point {
    /// Horizontal coordinate.
    pub x: i32,
    /// Vertical coordinate.
    pub y: i32,
}

impl Point {
    /// Creates a point.
    pub const fn new(x: i32, y: i32) -> Point {
        Point { x, y }
    }

    /// Linear interpolation between `self` and `to` at `num/den`.
    pub fn lerp(self, to: Point, num: i64, den: i64) -> Point {
        debug_assert!(den > 0);
        let f = |a: i32, b: i32| -> i32 { (a as i64 + (b as i64 - a as i64) * num / den) as i32 };
        Point::new(f(self.x, to.x), f(self.y, to.y))
    }
}

/// A movement element: object `object_id` travels `from → to` over the
/// element's duration, drawn as a `size`-pixel square of the given color.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MoveSpec {
    /// The scene object being moved.
    pub object_id: u32,
    /// Start position.
    pub from: Point,
    /// End position.
    pub to: Point,
    /// Square sprite edge length in pixels.
    pub size: u32,
    /// Sprite color as packed RGB (0xRRGGBB).
    pub color: u32,
}

impl MoveSpec {
    /// Creates a movement spec.
    pub fn new(object_id: u32, from: Point, to: Point, size: u32, color: u32) -> MoveSpec {
        MoveSpec {
            object_id,
            from,
            to,
            size,
            color,
        }
    }

    /// Position at progress `num/den` through the movement.
    pub fn position_at(self, num: i64, den: i64) -> Point {
        self.from.lerp(self.to, num, den)
    }

    /// `true` if the element specifies no actual motion.
    pub fn is_stationary(self) -> bool {
        self.from == self.to
    }
}

impl StreamElement for MoveSpec {
    fn byte_size(&self) -> u64 {
        // object(4) + from(8) + to(8) + size(4) + color(4)
        28
    }

    fn descriptor_token(&self) -> u64 {
        self.object_id as u64 + 1
    }

    fn element_descriptor(&self) -> ElementDescriptor {
        ElementDescriptor::from_pairs([("object", self.object_id as i64)])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lerp_endpoints_and_midpoint() {
        let a = Point::new(0, 0);
        let b = Point::new(100, -50);
        assert_eq!(a.lerp(b, 0, 10), a);
        assert_eq!(a.lerp(b, 10, 10), b);
        assert_eq!(a.lerp(b, 5, 10), Point::new(50, -25));
    }

    #[test]
    fn movement_position() {
        let m = MoveSpec::new(1, Point::new(10, 10), Point::new(30, 10), 4, 0xFF0000);
        assert_eq!(m.position_at(0, 4), Point::new(10, 10));
        assert_eq!(m.position_at(1, 4), Point::new(15, 10));
        assert_eq!(m.position_at(4, 4), Point::new(30, 10));
        assert!(!m.is_stationary());
        assert!(MoveSpec::new(1, a(), a(), 4, 0).is_stationary());
        fn a() -> Point {
            Point::new(5, 5)
        }
    }

    #[test]
    fn element_descriptor_tracks_object() {
        let m1 = MoveSpec::new(1, Point::default(), Point::default(), 2, 0);
        let m2 = MoveSpec::new(2, Point::default(), Point::default(), 2, 0);
        assert_ne!(m1.descriptor_token(), m2.descriptor_token());
        assert_eq!(m1.byte_size(), 28);
    }
}
