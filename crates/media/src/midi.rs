//! MIDI-like musical events and note lists.
//!
//! The paper's §3.3 gives MIDI as *the* example of event-based streams:
//! "elements are musical events of the form 'Start Note X' and 'Stop Note
//! Y'" with `dᵢ = 0`. [`MidiEvent`] is that element; [`Note`] is the
//! overlapping-element representation of the *music* medium ("a chord would
//! then require overlapping elements"); and [`notes_to_events`] converts
//! between the two, which is also how the MIDI-synthesis derivation walks
//! its input.

use tbm_core::{ElementDescriptor, StreamElement};

/// A MIDI-like channel event. Serialized size is a constant 3 bytes,
/// matching MIDI channel-message wire format.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MidiEvent {
    /// Start sounding `key` on `channel` at `velocity`.
    NoteOn {
        /// Channel 0–15.
        channel: u8,
        /// MIDI key number (60 = middle C).
        key: u8,
        /// Strike velocity 1–127 (0 is reserved: it means NoteOff).
        velocity: u8,
    },
    /// Stop sounding `key` on `channel`.
    NoteOff {
        /// Channel 0–15.
        channel: u8,
        /// MIDI key number.
        key: u8,
    },
    /// Select an instrument (program) on `channel` — the "MIDI channel
    /// mappings and instrument parameters" of the synthesis derivation.
    ProgramChange {
        /// Channel 0–15.
        channel: u8,
        /// Program number 0–127.
        program: u8,
    },
}

impl MidiEvent {
    /// The event's channel.
    pub fn channel(self) -> u8 {
        match self {
            MidiEvent::NoteOn { channel, .. }
            | MidiEvent::NoteOff { channel, .. }
            | MidiEvent::ProgramChange { channel, .. } => channel,
        }
    }

    /// Serializes to the 3-byte wire form.
    pub fn to_bytes(self) -> [u8; 3] {
        match self {
            MidiEvent::NoteOn {
                channel,
                key,
                velocity,
            } => [0x90 | (channel & 0x0f), key & 0x7f, velocity & 0x7f],
            MidiEvent::NoteOff { channel, key } => [0x80 | (channel & 0x0f), key & 0x7f, 0],
            MidiEvent::ProgramChange { channel, program } => {
                [0xC0 | (channel & 0x0f), program & 0x7f, 0]
            }
        }
    }

    /// Parses the 3-byte wire form.
    pub fn from_bytes(bytes: [u8; 3]) -> Option<MidiEvent> {
        let channel = bytes[0] & 0x0f;
        match bytes[0] & 0xf0 {
            0x90 if bytes[2] > 0 => Some(MidiEvent::NoteOn {
                channel,
                key: bytes[1],
                velocity: bytes[2],
            }),
            // Velocity-0 NoteOn is NoteOff, per MIDI convention.
            0x90 | 0x80 => Some(MidiEvent::NoteOff {
                channel,
                key: bytes[1],
            }),
            0xC0 => Some(MidiEvent::ProgramChange {
                channel,
                program: bytes[1],
            }),
            _ => None,
        }
    }
}

impl StreamElement for MidiEvent {
    fn byte_size(&self) -> u64 {
        3
    }

    fn descriptor_token(&self) -> u64 {
        // Event kind is the element descriptor (the "form" of the element).
        match self {
            MidiEvent::NoteOn { .. } => 1,
            MidiEvent::NoteOff { .. } => 2,
            MidiEvent::ProgramChange { .. } => 3,
        }
    }

    fn element_descriptor(&self) -> ElementDescriptor {
        let kind = match self {
            MidiEvent::NoteOn { .. } => "note-on",
            MidiEvent::NoteOff { .. } => "note-off",
            MidiEvent::ProgramChange { .. } => "program-change",
        };
        ElementDescriptor::from_pairs([("event", kind)])
    }
}

/// A sounded note: the element of the *music* medium, with a positive
/// duration (chords are overlapping notes; rests are gaps).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Note {
    /// Channel 0–15.
    pub channel: u8,
    /// MIDI key number (60 = middle C; A440 is key 69).
    pub key: u8,
    /// Strike velocity 1–127.
    pub velocity: u8,
}

impl Note {
    /// Creates a note.
    pub fn new(channel: u8, key: u8, velocity: u8) -> Note {
        Note {
            channel,
            key,
            velocity,
        }
    }

    /// Equal-tempered frequency of the key, in hertz (A4 = key 69 = 440 Hz).
    pub fn frequency_hz(self) -> f64 {
        440.0 * 2f64.powf((self.key as f64 - 69.0) / 12.0)
    }
}

impl StreamElement for Note {
    fn byte_size(&self) -> u64 {
        3
    }
}

/// Converts timed notes `(note, start, duration)` into the event-based
/// representation: a NoteOn at `start`, a NoteOff at `start + duration`,
/// all sorted by time (ties: NoteOff first, so re-struck notes retrigger).
pub fn notes_to_events(notes: &[(Note, i64, i64)]) -> Vec<(MidiEvent, i64)> {
    let mut events: Vec<(MidiEvent, i64, u8)> = Vec::with_capacity(notes.len() * 2);
    for &(note, start, duration) in notes {
        events.push((
            MidiEvent::NoteOn {
                channel: note.channel,
                key: note.key,
                velocity: note.velocity,
            },
            start,
            1,
        ));
        events.push((
            MidiEvent::NoteOff {
                channel: note.channel,
                key: note.key,
            },
            start + duration,
            0,
        ));
    }
    events.sort_by_key(|&(_, at, order)| (at, order));
    events.into_iter().map(|(e, at, _)| (e, at)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_roundtrip() {
        let events = [
            MidiEvent::NoteOn {
                channel: 3,
                key: 60,
                velocity: 100,
            },
            MidiEvent::NoteOff {
                channel: 3,
                key: 60,
            },
            MidiEvent::ProgramChange {
                channel: 9,
                program: 40,
            },
        ];
        for e in events {
            assert_eq!(MidiEvent::from_bytes(e.to_bytes()), Some(e));
            assert_eq!(e.byte_size(), 3);
        }
    }

    #[test]
    fn velocity_zero_noteon_is_noteoff() {
        let parsed = MidiEvent::from_bytes([0x90, 64, 0]);
        assert_eq!(
            parsed,
            Some(MidiEvent::NoteOff {
                channel: 0,
                key: 64
            })
        );
    }

    #[test]
    fn unknown_status_rejected() {
        assert_eq!(MidiEvent::from_bytes([0x00, 0, 0]), None);
        assert_eq!(MidiEvent::from_bytes([0xF0, 0, 0]), None);
    }

    #[test]
    fn descriptor_tokens_distinguish_event_kinds() {
        let on = MidiEvent::NoteOn {
            channel: 0,
            key: 60,
            velocity: 64,
        };
        let off = MidiEvent::NoteOff {
            channel: 0,
            key: 60,
        };
        assert_ne!(on.descriptor_token(), off.descriptor_token());
        assert_eq!(
            on.element_descriptor(),
            ElementDescriptor::from_pairs([("event", "note-on")])
        );
    }

    #[test]
    fn note_frequencies() {
        assert!((Note::new(0, 69, 100).frequency_hz() - 440.0).abs() < 1e-9);
        assert!((Note::new(0, 57, 100).frequency_hz() - 220.0).abs() < 1e-9);
        // Middle C ≈ 261.63 Hz.
        let c4 = Note::new(0, 60, 100).frequency_hz();
        assert!((c4 - 261.6256).abs() < 0.001);
    }

    #[test]
    fn notes_to_events_sorted_with_offs_first() {
        let notes = [
            (Note::new(0, 60, 100), 0, 480),
            (Note::new(0, 60, 100), 480, 480), // re-struck immediately
            (Note::new(0, 64, 90), 0, 960),    // chord partner
        ];
        let events = notes_to_events(&notes);
        assert_eq!(events.len(), 6);
        // At tick 480: the NoteOff of the first strike precedes the NoteOn
        // of the second.
        let at_480: Vec<_> = events.iter().filter(|(_, t)| *t == 480).collect();
        assert!(matches!(at_480[0].0, MidiEvent::NoteOff { key: 60, .. }));
        assert!(matches!(at_480[1].0, MidiEvent::NoteOn { key: 60, .. }));
        // Events are globally sorted by time.
        assert!(events.windows(2).all(|w| w[0].1 <= w[1].1));
    }
}
