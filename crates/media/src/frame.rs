//! Raster frames and pixel formats.
//!
//! A [`Frame`] is the media element of video streams and the payload of
//! still images. The formats follow the paper's Fig. 2 walk-through: frames
//! are captured as 24-bit RGB, converted to YUV, and chroma-subsampled to
//! what the paper calls "YUV 8:2:2" — Y kept at 8 bits per pixel, U and V
//! "subsampled (averaged over neighboring pixels)" to 2 bits per pixel each,
//! i.e. one 8-bit U and V sample per 2×2 block, 12 bits per pixel total
//! (conventionally written 4:2:0 today; we keep the conventional name in
//! code and the paper's name in the descriptor strings).

use crate::color::{rgb_to_yuv, yuv_to_rgb, Rgb, Yuv};
use tbm_core::StreamElement;

/// Supported in-memory pixel layouts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PixelFormat {
    /// Interleaved 8-bit RGB (24 bpp).
    Rgb24,
    /// Planar YUV, no subsampling (24 bpp).
    Yuv444,
    /// Planar YUV, chroma averaged over 2×2 blocks (12 bpp) — the paper's
    /// "YUV 8:2:2".
    Yuv420,
    /// Single 8-bit luminance plane (8 bpp).
    Gray8,
}

impl PixelFormat {
    /// Average bits per pixel of the format.
    pub fn bits_per_pixel(self) -> u32 {
        match self {
            PixelFormat::Rgb24 | PixelFormat::Yuv444 => 24,
            PixelFormat::Yuv420 => 12,
            PixelFormat::Gray8 => 8,
        }
    }

    /// The descriptor string for the format, using the paper's nomenclature
    /// where it has one.
    pub fn descriptor_name(self) -> &'static str {
        match self {
            PixelFormat::Rgb24 => "RGB",
            PixelFormat::Yuv444 => "YUV 8:8:8",
            PixelFormat::Yuv420 => "YUV 8:2:2",
            PixelFormat::Gray8 => "grayscale",
        }
    }

    /// Buffer size in bytes for a `width × height` frame.
    pub fn byte_len(self, width: u32, height: u32) -> usize {
        let n = width as usize * height as usize;
        match self {
            PixelFormat::Rgb24 | PixelFormat::Yuv444 => n * 3,
            PixelFormat::Yuv420 => {
                let cw = width.div_ceil(2) as usize;
                let ch = height.div_ceil(2) as usize;
                n + 2 * cw * ch
            }
            PixelFormat::Gray8 => n,
        }
    }
}

/// A raster frame: dimensions, pixel format and the backing bytes.
///
/// Layouts:
/// * `Rgb24` — interleaved `RGBRGB…`, row-major.
/// * `Yuv444` — Y plane, then U plane, then V plane, each `w×h`.
/// * `Yuv420` — Y plane `w×h`, then U and V planes `⌈w/2⌉×⌈h/2⌉`.
/// * `Gray8` — single `w×h` plane.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    width: u32,
    height: u32,
    format: PixelFormat,
    data: Vec<u8>,
}

impl Frame {
    /// A black frame of the given geometry.
    pub fn black(width: u32, height: u32, format: PixelFormat) -> Frame {
        let mut data = vec![0u8; format.byte_len(width, height)];
        // Neutral chroma for YUV formats.
        match format {
            PixelFormat::Yuv444 | PixelFormat::Yuv420 => {
                let y_len = width as usize * height as usize;
                for b in &mut data[y_len..] {
                    *b = 128;
                }
            }
            _ => {}
        }
        Frame {
            width,
            height,
            format,
            data,
        }
    }

    /// A frame filled with one RGB color.
    pub fn filled(width: u32, height: u32, format: PixelFormat, color: Rgb) -> Frame {
        let mut f = Frame::black(width, height, format);
        for y in 0..height {
            for x in 0..width {
                f.set_rgb(x, y, color);
            }
        }
        f
    }

    /// Wraps raw bytes; the length must match the format's requirement.
    pub fn from_raw(width: u32, height: u32, format: PixelFormat, data: Vec<u8>) -> Option<Frame> {
        if data.len() == format.byte_len(width, height) {
            Some(Frame {
                width,
                height,
                format,
                data,
            })
        } else {
            None
        }
    }

    /// Frame width in pixels.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Frame height in pixels.
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Pixel format.
    pub fn format(&self) -> PixelFormat {
        self.format
    }

    /// Raw backing bytes.
    pub fn data(&self) -> &[u8] {
        &self.data
    }

    /// Mutable raw backing bytes.
    pub fn data_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }

    /// Consumes the frame, returning the raw bytes.
    pub fn into_data(self) -> Vec<u8> {
        self.data
    }

    #[inline]
    fn pixel_index(&self, x: u32, y: u32) -> usize {
        debug_assert!(x < self.width && y < self.height);
        (y as usize) * (self.width as usize) + x as usize
    }

    fn chroma_geometry(&self) -> (usize, usize) {
        (
            self.width.div_ceil(2) as usize,
            self.height.div_ceil(2) as usize,
        )
    }

    /// Reads the pixel at `(x, y)` as RGB, converting as needed.
    pub fn get_rgb(&self, x: u32, y: u32) -> Rgb {
        let i = self.pixel_index(x, y);
        let n = self.width as usize * self.height as usize;
        match self.format {
            PixelFormat::Rgb24 => {
                Rgb::new(self.data[3 * i], self.data[3 * i + 1], self.data[3 * i + 2])
            }
            PixelFormat::Yuv444 => yuv_to_rgb(Yuv::new(
                self.data[i],
                self.data[n + i],
                self.data[2 * n + i],
            )),
            PixelFormat::Yuv420 => {
                let (cw, _) = self.chroma_geometry();
                let ci = (y as usize / 2) * cw + (x as usize / 2);
                let c_len = cw * self.height.div_ceil(2) as usize;
                yuv_to_rgb(Yuv::new(
                    self.data[i],
                    self.data[n + ci],
                    self.data[n + c_len + ci],
                ))
            }
            PixelFormat::Gray8 => {
                let g = self.data[i];
                Rgb::new(g, g, g)
            }
        }
    }

    /// Writes the pixel at `(x, y)` from RGB, converting as needed.
    ///
    /// For `Yuv420`, the chroma of the 2×2 block containing the pixel is
    /// overwritten (last write wins) — adequate for synthetic patterns and
    /// compositing; capture conversion uses [`Frame::to_format`], which
    /// averages chroma properly.
    pub fn set_rgb(&mut self, x: u32, y: u32, color: Rgb) {
        let i = self.pixel_index(x, y);
        let n = self.width as usize * self.height as usize;
        match self.format {
            PixelFormat::Rgb24 => {
                self.data[3 * i] = color.r;
                self.data[3 * i + 1] = color.g;
                self.data[3 * i + 2] = color.b;
            }
            PixelFormat::Yuv444 => {
                let p = rgb_to_yuv(color);
                self.data[i] = p.y;
                self.data[n + i] = p.u;
                self.data[2 * n + i] = p.v;
            }
            PixelFormat::Yuv420 => {
                let p = rgb_to_yuv(color);
                self.data[i] = p.y;
                let (cw, _) = self.chroma_geometry();
                let ci = (y as usize / 2) * cw + (x as usize / 2);
                let c_len = cw * self.height.div_ceil(2) as usize;
                self.data[n + ci] = p.u;
                self.data[n + c_len + ci] = p.v;
            }
            PixelFormat::Gray8 => {
                self.data[i] = color.luma();
            }
        }
    }

    /// Converts the frame to `target`, averaging chroma when subsampling
    /// (the paper's "averaged over neighboring pixels").
    pub fn to_format(&self, target: PixelFormat) -> Frame {
        if target == self.format {
            return self.clone();
        }
        match target {
            PixelFormat::Yuv420 => self.to_yuv420(),
            _ => {
                let mut out = Frame::black(self.width, self.height, target);
                for y in 0..self.height {
                    for x in 0..self.width {
                        out.set_rgb(x, y, self.get_rgb(x, y));
                    }
                }
                out
            }
        }
    }

    /// RGB/444/Gray → 4:2:0 with proper 2×2 chroma averaging.
    fn to_yuv420(&self) -> Frame {
        let w = self.width;
        let h = self.height;
        let n = w as usize * h as usize;
        let (cw, ch) = (w.div_ceil(2) as usize, h.div_ceil(2) as usize);
        let mut data = vec![0u8; PixelFormat::Yuv420.byte_len(w, h)];
        // Luma pass.
        for y in 0..h {
            for x in 0..w {
                let p = rgb_to_yuv(self.get_rgb(x, y));
                data[(y as usize) * w as usize + x as usize] = p.y;
            }
        }
        // Chroma pass: average each 2×2 block.
        for by in 0..ch {
            for bx in 0..cw {
                let mut su = 0u32;
                let mut sv = 0u32;
                let mut count = 0u32;
                for dy in 0..2u32 {
                    for dx in 0..2u32 {
                        let x = bx as u32 * 2 + dx;
                        let y = by as u32 * 2 + dy;
                        if x < w && y < h {
                            let p = rgb_to_yuv(self.get_rgb(x, y));
                            su += p.u as u32;
                            sv += p.v as u32;
                            count += 1;
                        }
                    }
                }
                let ci = by * cw + bx;
                data[n + ci] = ((su + count / 2) / count) as u8;
                data[n + cw * ch + ci] = ((sv + count / 2) / count) as u8;
            }
        }
        Frame {
            width: w,
            height: h,
            format: PixelFormat::Yuv420,
            data,
        }
    }

    /// Blends `self` and `other` (same geometry/format): result =
    /// `self·(1−α) + other·α` with `α = alpha_num/alpha_den`. This is the
    /// kernel of the fade transition derivation.
    pub fn blend(&self, other: &Frame, alpha_num: u32, alpha_den: u32) -> Option<Frame> {
        if self.width != other.width
            || self.height != other.height
            || self.format != other.format
            || alpha_den == 0
            || alpha_num > alpha_den
        {
            return None;
        }
        let mut data = Vec::with_capacity(self.data.len());
        let a = alpha_num as u64;
        let d = alpha_den as u64;
        for (&p, &q) in self.data.iter().zip(&other.data) {
            let v = (p as u64 * (d - a) + q as u64 * a + d / 2) / d;
            data.push(v.min(255) as u8);
        }
        Some(Frame {
            width: self.width,
            height: self.height,
            format: self.format,
            data,
        })
    }

    /// Peak signal-to-noise ratio in decibels against a reference frame of
    /// identical shape — the conventional fidelity measure behind the
    /// paper's descriptive quality factors. `None` on shape mismatch;
    /// `f64::INFINITY` for identical frames.
    pub fn psnr(&self, other: &Frame) -> Option<f64> {
        if self.width != other.width
            || self.height != other.height
            || self.format != other.format
            || self.data.is_empty()
        {
            return None;
        }
        let sq_sum: u64 = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(&a, &b)| {
                let d = a as i64 - b as i64;
                (d * d) as u64
            })
            .sum();
        if sq_sum == 0 {
            return Some(f64::INFINITY);
        }
        let mse = sq_sum as f64 / self.data.len() as f64;
        Some(10.0 * (255.0f64 * 255.0 / mse).log10())
    }

    /// Mean absolute per-byte difference against another frame of identical
    /// shape — the distortion measure used by codec and derivation tests.
    pub fn mean_abs_diff(&self, other: &Frame) -> Option<f64> {
        if self.width != other.width
            || self.height != other.height
            || self.format != other.format
            || self.data.is_empty()
        {
            return None;
        }
        let sum: u64 = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(&a, &b)| (a as i64 - b as i64).unsigned_abs())
            .sum();
        Some(sum as f64 / self.data.len() as f64)
    }
}

impl StreamElement for Frame {
    fn byte_size(&self) -> u64 {
        self.data.len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig2_geometry_byte_costs() {
        // 640×480 RGB24 = 921600 bytes (22 Mbyte/s at 25 fps — the paper's
        // "about 22 Mbyte/sec" source rate).
        assert_eq!(PixelFormat::Rgb24.byte_len(640, 480), 921_600);
        // After "YUV 8:2:2": 12 bpp = 460800 bytes.
        assert_eq!(PixelFormat::Yuv420.byte_len(640, 480), 460_800);
        assert_eq!(PixelFormat::Yuv420.bits_per_pixel(), 12);
        assert_eq!(PixelFormat::Yuv420.descriptor_name(), "YUV 8:2:2");
    }

    #[test]
    fn odd_dimensions_round_up_chroma() {
        assert_eq!(PixelFormat::Yuv420.byte_len(3, 3), 9 + 2 * 4);
    }

    #[test]
    fn rgb_set_get_roundtrip_exact() {
        let mut f = Frame::black(8, 8, PixelFormat::Rgb24);
        f.set_rgb(3, 4, Rgb::new(10, 200, 30));
        assert_eq!(f.get_rgb(3, 4), Rgb::new(10, 200, 30));
        assert_eq!(f.get_rgb(0, 0), Rgb::new(0, 0, 0));
    }

    #[test]
    fn yuv444_set_get_roundtrip_close() {
        let mut f = Frame::black(8, 8, PixelFormat::Yuv444);
        let c = Rgb::new(120, 33, 210);
        f.set_rgb(2, 2, c);
        let got = f.get_rgb(2, 2);
        assert!((got.r as i32 - c.r as i32).abs() <= 3);
        assert!((got.g as i32 - c.g as i32).abs() <= 3);
        assert!((got.b as i32 - c.b as i32).abs() <= 3);
    }

    #[test]
    fn black_yuv_frames_decode_to_black() {
        let f = Frame::black(4, 4, PixelFormat::Yuv420);
        let p = f.get_rgb(1, 1);
        assert!(p.r <= 2 && p.g <= 2 && p.b <= 2, "{p:?}");
    }

    #[test]
    fn conversion_to_yuv420_averages_chroma() {
        // Left half red, right half blue; the 2×2 blocks straddling the
        // boundary get averaged chroma.
        let mut f = Frame::black(4, 2, PixelFormat::Rgb24);
        for y in 0..2 {
            for x in 0..2 {
                f.set_rgb(x, y, Rgb::new(255, 0, 0));
            }
            for x in 2..4 {
                f.set_rgb(x, y, Rgb::new(0, 0, 255));
            }
        }
        let g = f.to_format(PixelFormat::Yuv420);
        assert_eq!(g.format(), PixelFormat::Yuv420);
        assert_eq!(g.data().len(), PixelFormat::Yuv420.byte_len(4, 2));
        // Luma is untouched by subsampling.
        let left = g.get_rgb(0, 0);
        assert!(
            left.r > 150 && left.b < 100,
            "left should stay reddish: {left:?}"
        );
    }

    #[test]
    fn uniform_color_survives_420_roundtrip() {
        let c = Rgb::new(90, 160, 40);
        let f = Frame::filled(16, 16, PixelFormat::Rgb24, c);
        let g = f
            .to_format(PixelFormat::Yuv420)
            .to_format(PixelFormat::Rgb24);
        let got = g.get_rgb(8, 8);
        assert!((got.r as i32 - c.r as i32).abs() <= 4, "{got:?}");
        assert!((got.g as i32 - c.g as i32).abs() <= 4, "{got:?}");
        assert!((got.b as i32 - c.b as i32).abs() <= 4, "{got:?}");
    }

    #[test]
    fn grayscale_conversion_uses_luma() {
        let f = Frame::filled(2, 2, PixelFormat::Rgb24, Rgb::new(255, 0, 0));
        let g = f.to_format(PixelFormat::Gray8);
        let expect = Rgb::new(255, 0, 0).luma();
        assert_eq!(g.data()[0], expect);
        assert_eq!(g.byte_size(), 4);
    }

    #[test]
    fn blend_endpoints_and_midpoint() {
        let a = Frame::filled(4, 4, PixelFormat::Rgb24, Rgb::new(0, 0, 0));
        let b = Frame::filled(4, 4, PixelFormat::Rgb24, Rgb::new(200, 100, 50));
        assert_eq!(a.blend(&b, 0, 10).unwrap(), a);
        assert_eq!(a.blend(&b, 10, 10).unwrap(), b);
        let mid = a.blend(&b, 5, 10).unwrap();
        let p = mid.get_rgb(0, 0);
        assert_eq!(p, Rgb::new(100, 50, 25));
    }

    #[test]
    fn blend_rejects_mismatches() {
        let a = Frame::black(4, 4, PixelFormat::Rgb24);
        let b = Frame::black(4, 5, PixelFormat::Rgb24);
        let c = Frame::black(4, 4, PixelFormat::Gray8);
        assert!(a.blend(&b, 1, 2).is_none());
        assert!(a.blend(&c, 1, 2).is_none());
        assert!(a.blend(&a, 3, 2).is_none()); // alpha > 1
        assert!(a.blend(&a, 1, 0).is_none()); // zero denominator
    }

    #[test]
    fn psnr_behaves() {
        let a = Frame::filled(8, 8, PixelFormat::Rgb24, Rgb::new(100, 100, 100));
        assert_eq!(a.psnr(&a), Some(f64::INFINITY));
        let b = Frame::filled(8, 8, PixelFormat::Rgb24, Rgb::new(101, 100, 100));
        // MSE = 1/3 (one channel off by one) → PSNR ≈ 53 dB.
        let p = a.psnr(&b).unwrap();
        assert!((52.0..54.5).contains(&p), "{p}");
        let c = Frame::filled(8, 8, PixelFormat::Rgb24, Rgb::new(150, 100, 100));
        assert!(a.psnr(&c).unwrap() < p, "bigger error, lower PSNR");
        // Shape mismatch.
        let d = Frame::black(4, 4, PixelFormat::Rgb24);
        assert_eq!(a.psnr(&d), None);
    }

    #[test]
    fn mean_abs_diff_zero_for_identical() {
        let a = Frame::filled(8, 8, PixelFormat::Rgb24, Rgb::new(5, 6, 7));
        assert_eq!(a.mean_abs_diff(&a), Some(0.0));
        let b = Frame::filled(8, 8, PixelFormat::Rgb24, Rgb::new(6, 6, 7));
        let d = a.mean_abs_diff(&b).unwrap();
        assert!(d > 0.0 && d < 1.0);
    }

    #[test]
    fn from_raw_validates_length() {
        assert!(Frame::from_raw(2, 2, PixelFormat::Gray8, vec![0; 4]).is_some());
        assert!(Frame::from_raw(2, 2, PixelFormat::Gray8, vec![0; 5]).is_none());
    }

    #[test]
    fn stream_element_size_is_buffer_len() {
        let f = Frame::black(640, 480, PixelFormat::Yuv420);
        assert_eq!(f.byte_size(), 460_800);
    }
}
