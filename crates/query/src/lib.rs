//! # tbm-query — the telemetry plane and typed query surface
//!
//! A production fleet's telemetry volume dwarfs its media metadata. This
//! crate applies the paper's core move — typed temporal data with
//! operations defined *on the type* — to the system's own observability
//! exhaust, in three layers:
//!
//! 1. **Ingest/compress** ([`SeriesSink`], [`FleetTelemetry`]): per-tick
//!    observations (session lateness by fidelity, storage throughput,
//!    cache hit rate, node load) sampled from the live servers on the
//!    simulated clock, compressed into [`Segment`]s by PMC-Mean constant
//!    and Swing linear filters under a user-chosen [`ErrorBound`], with a
//!    lossless raw fallback. Finished segments ship over each node's
//!    `Link` — charged, lossy, retried — into one [`TelemetryStore`].
//! 2. **Model-native aggregates** ([`TelemetryStore::aggregate`]):
//!    count/min/max/mean/quantile evaluated directly on the segment
//!    models, never on re-materialised samples, with exact error
//!    accounting in every [`AggResult`].
//! 3. **Typed queries** ([`Query`]): `scan(Sessions | Objects | Streams |
//!    Misses | Metrics) → filter(typed predicates) → aggregate`, run
//!    against catalog/session/miss snapshots ([`QueryCtx`]) and the
//!    telemetry store, rendered as a deterministic [`Table`].
//!
//! ## Ask the fleet a question
//!
//! ```
//! use tbm_query::{
//!     Aggregate, ErrorBound, FleetTelemetry, Metric, Predicate, Query, QueryCtx, Source,
//! };
//! use tbm_serve::{Capacity, Fleet, ShardedDb};
//! use tbm_time::{TimeDelta, TimePoint};
//!
//! let catalog = ShardedDb::new(4, 7);
//! let mut fleet = Fleet::new(catalog, 2, Capacity::new(100_000_000));
//! let mut telemetry = FleetTelemetry::new(ErrorBound::percent(1.0), TimeDelta::from_millis(50));
//! for k in 0..20 {
//!     telemetry.tick(&mut fleet, TimePoint::ZERO + TimeDelta::from_millis(50 * k));
//! }
//! telemetry.finish(&mut fleet, TimePoint::ZERO + TimeDelta::from_secs(1));
//! let store = telemetry.store().expect("ticked");
//! let ctx = QueryCtx::from_fleet(&fleet).with_telemetry(store);
//! let answer = Query::scan(Source::Metrics)
//!     .filter(Predicate::MetricIs(Metric::LatenessUs))
//!     .filter(Predicate::Degraded(true))
//!     .aggregate(Aggregate::Quantile(99))
//!     .run(&ctx)
//!     .expect("typed and backed");
//! println!("{}", answer.render());
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod health;
mod model;
mod query;
mod remediate;
mod sampler;
mod sink;
mod store;

pub use health::{
    AlertKind, AlertTransition, BurnPoint, HealthMonitor, Incident, IncidentReport, SloObjective,
    SloRule, BURN_CAP,
};
pub use model::{ErrorBound, Segment, SegmentModel, RAW_SAMPLE_BYTES, SEGMENT_HEADER_BYTES};
pub use query::{
    MissRow, ObjectRow, Predicate, Query, QueryCtx, QueryError, SessionRow, Source, StreamRow,
    Table,
};
pub use remediate::{
    Action, ActionRecord, Outcome, Playbook, PlaybookEntry, Remediator, SuppressReason, Verdict,
};
pub use sampler::FleetTelemetry;
pub use sink::{SeriesSink, MAX_SEGMENT_TICKS, MIN_MODEL_TICKS};
pub use store::{
    AggResult, Aggregate, GroupBy, GroupKey, Metric, Selector, SeriesKey, TelemetryStore,
};
