//! The typed query surface: `scan → filter → aggregate` over fleet state.
//!
//! A [`Query`] names a [`Source`] (which typed row set to scan), a list of
//! [`Predicate`]s over that source's columns, and optionally an
//! [`Aggregate`]. Predicates are *typed*: asking for a codec on the
//! `Misses` source, or a miss cause on `Objects`, is a [`QueryError`] at
//! run time — not a silently empty result.
//!
//! Row sources are snapshots collected into a [`QueryCtx`] (usually via
//! [`QueryCtx::from_fleet`]); the `Metrics` source is different — it is
//! answered *model-natively* by a [`TelemetryStore`] attached with
//! [`QueryCtx::with_telemetry`], so an aggregate like "p99 lateness for
//! degraded sessions on node 2 during the brownout" never touches raw
//! samples, and its answer carries the store's error accounting.
//!
//! Results are a [`Table`]; [`Table::render`] produces a deterministic
//! aligned-text rendering suitable for golden comparisons.

use std::collections::BTreeMap;
use std::fmt;

use tbm_blob::BlobStore;
use tbm_core::MediaKind;
use tbm_db::{ObjectColumns, StreamColumns};
use tbm_obs::{attribute, MissCause};
use tbm_serve::{AdmitDecision, Fleet, SessionState, SHARD_SESSION_STRIDE};
use tbm_time::{Rational, TimePoint};

use crate::store::{Aggregate, GroupBy, GroupKey, Metric, Selector, TelemetryStore};

/// Which typed row set a query scans.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Source {
    /// Live sessions across all shards.
    Sessions,
    /// Catalog objects across all shards.
    Objects,
    /// Stream interpretations across all shards.
    Streams,
    /// Attributed deadline misses from the fleet trace.
    Misses,
    /// Model-compressed telemetry series (needs a [`TelemetryStore`]).
    Metrics,
}

impl fmt::Display for Source {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Source::Sessions => "sessions",
            Source::Objects => "objects",
            Source::Streams => "streams",
            Source::Misses => "misses",
            Source::Metrics => "metrics",
        })
    }
}

/// A typed filter on a source's columns.
#[derive(Debug, Clone, PartialEq)]
pub enum Predicate {
    /// Rows/series belonging to this shard (every source).
    OnShard(u16),
    /// Rows/series hosted by this node (every source).
    OnNode(u16),
    /// Object name contains the needle (`Objects`, `Streams`, `Sessions`).
    NameContains(String),
    /// Media kind equals (`Objects`, `Streams`).
    KindIs(MediaKind),
    /// Declared codec equals (`Objects`, `Streams`).
    CodecIs(String),
    /// Attributed miss cause equals (`Misses`).
    CauseIs(MissCause),
    /// Degraded-fidelity split: sessions admitted degraded, or the
    /// degraded half of a split telemetry series (`Sessions`, `Metrics`).
    Degraded(bool),
    /// Telemetry metric equals (`Metrics`).
    MetricIs(Metric),
    /// Inclusive time window (`Misses`: the miss instant; `Metrics`: the
    /// sample tick).
    During(TimePoint, TimePoint),
}

impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Predicate::OnShard(s) => write!(f, "shard={s}"),
            Predicate::OnNode(n) => write!(f, "node={n}"),
            Predicate::NameContains(n) => write!(f, "name~\"{n}\""),
            Predicate::KindIs(k) => write!(f, "kind={k:?}"),
            Predicate::CodecIs(c) => write!(f, "codec={c}"),
            Predicate::CauseIs(c) => write!(f, "cause={c}"),
            Predicate::Degraded(true) => write!(f, "degraded"),
            Predicate::Degraded(false) => write!(f, "full-fidelity"),
            Predicate::MetricIs(m) => write!(f, "metric={m}"),
            Predicate::During(a, b) => write!(f, "during[{a}, {b}]"),
        }
    }
}

/// A typed-query failure.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryError {
    /// The predicate's column does not exist on the scanned source.
    PredicateNotTyped {
        /// The source being scanned.
        source: Source,
        /// The offending predicate, rendered.
        predicate: String,
    },
    /// A `Metrics` query ran against a context with no telemetry store.
    NoTelemetry,
    /// The grouping column does not exist on the scanned source.
    GroupNotTyped {
        /// The source being scanned.
        source: Source,
        /// The offending grouping, rendered.
        group: String,
    },
    /// `group_by` without an aggregate — grouped listings are not a thing;
    /// group rows are aggregate rows.
    GroupWithoutAggregate,
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::PredicateNotTyped { source, predicate } => {
                write!(f, "predicate {predicate} is not typed for scan({source})")
            }
            QueryError::NoTelemetry => {
                write!(f, "scan(metrics) needs a TelemetryStore on the QueryCtx")
            }
            QueryError::GroupNotTyped { source, group } => {
                write!(f, "group({group}) is not typed for scan({source})")
            }
            QueryError::GroupWithoutAggregate => {
                write!(f, "group_by needs an aggregate to evaluate per group")
            }
        }
    }
}

impl std::error::Error for QueryError {}

// ----------------------------------------------------------------------
// Row snapshots
// ----------------------------------------------------------------------

/// One catalog object with its placement.
#[derive(Debug, Clone, PartialEq)]
pub struct ObjectRow {
    /// Shard the object's name routes to.
    pub shard: u16,
    /// Node hosting that shard at snapshot time.
    pub node: u16,
    /// The typed catalog columns.
    pub columns: ObjectColumns,
}

/// One stream interpretation with its placement.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamRow {
    /// Shard the owning object routes to.
    pub shard: u16,
    /// Node hosting that shard at snapshot time.
    pub node: u16,
    /// The typed catalog columns.
    pub columns: StreamColumns,
}

/// One session with its placement and lifetime statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionRow {
    /// Raw session id (the shard index is its high half).
    pub session: u64,
    /// Shard that owns the session.
    pub shard: u16,
    /// Node hosting that shard at snapshot time.
    pub node: u16,
    /// The object being served.
    pub object: String,
    /// Lifecycle state.
    pub state: SessionState,
    /// `true` when the session was admitted (or later downgraded) to
    /// degraded fidelity.
    pub degraded: bool,
    /// Elements served so far.
    pub elements: u64,
    /// Deadline misses so far.
    pub misses: u64,
    /// Worst lateness so far, µs.
    pub max_lateness_us: i64,
}

/// One attributed deadline miss.
#[derive(Debug, Clone, PartialEq)]
pub struct MissRow {
    /// Raw id of the session that missed.
    pub session: u64,
    /// Shard that owns the session.
    pub shard: u16,
    /// Node hosting that shard at snapshot time.
    pub node: u16,
    /// Element index within the session's schedule.
    pub element: i64,
    /// When the element finally presented.
    pub at: TimePoint,
    /// How late it was, µs.
    pub lateness_us: i64,
    /// The single attributed cause.
    pub cause: MissCause,
}

/// The state a query runs against: typed row snapshots plus (optionally)
/// the telemetry store.
#[derive(Debug, Default)]
pub struct QueryCtx<'a> {
    /// `scan(Objects)` rows.
    pub objects: Vec<ObjectRow>,
    /// `scan(Streams)` rows.
    pub streams: Vec<StreamRow>,
    /// `scan(Sessions)` rows.
    pub sessions: Vec<SessionRow>,
    /// `scan(Misses)` rows.
    pub misses: Vec<MissRow>,
    /// `scan(Metrics)` backing store.
    pub telemetry: Option<&'a TelemetryStore>,
}

impl<'a> QueryCtx<'a> {
    /// An empty context (every scan yields no rows; `Metrics` errors).
    pub fn new() -> QueryCtx<'a> {
        QueryCtx::default()
    }

    /// Snapshots a fleet's catalogs, sessions and attributed misses into
    /// typed rows. Placement (`node` columns) is read at snapshot time, so
    /// rows reflect migrations that already happened.
    pub fn from_fleet<S: BlobStore>(fleet: &Fleet<S>) -> QueryCtx<'a> {
        let mut ctx = QueryCtx::new();
        let placement = fleet.placement();
        for shard in 0..fleet.shard_count() {
            let node = placement.node_of_shard(shard) as u16;
            let shard16 = shard as u16;
            let db = fleet.shard(shard).db();
            ctx.objects
                .extend(db.object_columns().into_iter().map(|columns| ObjectRow {
                    shard: shard16,
                    node,
                    columns,
                }));
            ctx.streams
                .extend(db.stream_columns().into_iter().map(|columns| StreamRow {
                    shard: shard16,
                    node,
                    columns,
                }));
        }
        for s in fleet.sessions() {
            let raw = s.id().raw();
            let shard = (raw / SHARD_SESSION_STRIDE) as usize;
            let stats = s.stats();
            ctx.sessions.push(SessionRow {
                session: raw,
                shard: shard as u16,
                node: placement.node_of_shard(shard) as u16,
                object: s.object().to_owned(),
                state: s.state(),
                degraded: matches!(s.decision(), AdmitDecision::Degraded { .. }),
                elements: stats.elements as u64,
                misses: stats.misses as u64,
                max_lateness_us: micros(stats.max_lateness.seconds()),
            });
        }
        if fleet.shard_count() > 0 {
            let snapshot = fleet.shard(0).tracer().snapshot();
            let report = attribute(&snapshot.records);
            for m in &report.misses {
                let shard = (m.session / SHARD_SESSION_STRIDE) as usize;
                let at = snapshot
                    .records
                    .iter()
                    .find(|r| r.id == m.span)
                    .map(|r| r.end.unwrap_or(r.start))
                    .unwrap_or(TimePoint::ZERO);
                ctx.misses.push(MissRow {
                    session: m.session,
                    shard: shard as u16,
                    node: placement.node_of_shard(shard) as u16,
                    element: m.element,
                    at,
                    lateness_us: m.lateness_us,
                    cause: m.cause,
                });
            }
        }
        ctx
    }

    /// Attaches the telemetry store the `Metrics` source answers from.
    pub fn with_telemetry(mut self, store: &'a TelemetryStore) -> QueryCtx<'a> {
        self.telemetry = Some(store);
        self
    }
}

/// µs from exact seconds, rounded.
fn micros(s: Rational) -> i64 {
    (s * Rational::from(1_000_000)).round()
}

// ----------------------------------------------------------------------
// The query itself
// ----------------------------------------------------------------------

/// A typed query: `scan(source) → filter(...) → group_by(...) →
/// aggregate(...)`.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    source: Source,
    filters: Vec<Predicate>,
    group: Option<GroupBy>,
    aggregate: Option<Aggregate>,
}

impl Query {
    /// Starts a query scanning `source`.
    pub fn scan(source: Source) -> Query {
        Query {
            source,
            filters: Vec::new(),
            group: None,
            aggregate: None,
        }
    }

    /// Adds a predicate (conjunctive: every predicate must hold).
    pub fn filter(mut self, predicate: Predicate) -> Query {
        self.filters.push(predicate);
        self
    }

    /// Evaluates the aggregate once per distinct value of `group` — one
    /// row per group instead of one scalar. Requires
    /// [`aggregate`](Query::aggregate).
    pub fn group_by(mut self, group: GroupBy) -> Query {
        self.group = Some(group);
        self
    }

    /// Reduces the rows to one aggregate value instead of listing them.
    pub fn aggregate(mut self, aggregate: Aggregate) -> Query {
        self.aggregate = Some(aggregate);
        self
    }

    /// The query plan on one line, e.g.
    /// `scan(metrics) → filter(node=2 ∧ degraded) → group(shard) → p99`.
    pub fn describe(&self) -> String {
        let mut out = format!("scan({})", self.source);
        if !self.filters.is_empty() {
            let preds: Vec<String> = self.filters.iter().map(|p| p.to_string()).collect();
            out.push_str(&format!(" → filter({})", preds.join(" ∧ ")));
        }
        if let Some(group) = self.group {
            out.push_str(&format!(" → group({group})"));
        }
        if let Some(agg) = self.aggregate {
            out.push_str(&format!(" → {agg}"));
        }
        out
    }

    /// Runs the query against `ctx`.
    pub fn run(&self, ctx: &QueryCtx<'_>) -> Result<Table, QueryError> {
        self.check_types()?;
        match self.source {
            Source::Metrics => self.run_metrics(ctx),
            Source::Objects => {
                let rows: Vec<&ObjectRow> = ctx
                    .objects
                    .iter()
                    .filter(|r| self.matches_object(r))
                    .collect();
                if self.group.is_some() {
                    return self.grouped_table(
                        rows.iter()
                            .map(|r| {
                                (
                                    self.group_key(r.node, r.shard, None, None),
                                    r.columns.bytes as f64,
                                )
                            })
                            .collect(),
                        "bytes",
                    );
                }
                self.rows_or_aggregate(
                    rows.iter().map(|r| r.columns.bytes as f64).collect(),
                    "bytes",
                    || Table {
                        title: self.describe(),
                        columns: str_vec(&[
                            "object", "shard", "node", "kind", "codec", "elements", "bytes",
                        ]),
                        rows: rows
                            .iter()
                            .map(|r| {
                                vec![
                                    r.columns.name.clone(),
                                    r.shard.to_string(),
                                    r.node.to_string(),
                                    r.columns
                                        .kind
                                        .map_or_else(|| "derived".into(), |k| format!("{k:?}")),
                                    r.columns.codec.clone().unwrap_or_else(|| "-".into()),
                                    r.columns.elements.to_string(),
                                    r.columns.bytes.to_string(),
                                ]
                            })
                            .collect(),
                    },
                )
            }
            Source::Streams => {
                let rows: Vec<&StreamRow> = ctx
                    .streams
                    .iter()
                    .filter(|r| self.matches_stream(r))
                    .collect();
                if self.group.is_some() {
                    return self.grouped_table(
                        rows.iter()
                            .map(|r| {
                                (
                                    self.group_key(r.node, r.shard, None, None),
                                    r.columns.bytes as f64,
                                )
                            })
                            .collect(),
                        "bytes",
                    );
                }
                self.rows_or_aggregate(
                    rows.iter().map(|r| r.columns.bytes as f64).collect(),
                    "bytes",
                    || Table {
                        title: self.describe(),
                        columns: str_vec(&[
                            "object", "shard", "node", "kind", "codec", "elements", "bytes",
                            "ticks",
                        ]),
                        rows: rows
                            .iter()
                            .map(|r| {
                                vec![
                                    r.columns.object.clone(),
                                    r.shard.to_string(),
                                    r.node.to_string(),
                                    format!("{:?}", r.columns.kind),
                                    r.columns.codec.clone().unwrap_or_else(|| "-".into()),
                                    r.columns.elements.to_string(),
                                    r.columns.bytes.to_string(),
                                    r.columns
                                        .tick_span
                                        .map_or_else(|| "-".into(), |(a, b)| format!("{a}..{b}")),
                                ]
                            })
                            .collect(),
                    },
                )
            }
            Source::Sessions => {
                let rows: Vec<&SessionRow> = ctx
                    .sessions
                    .iter()
                    .filter(|r| self.matches_session(r))
                    .collect();
                if self.group.is_some() {
                    return self.grouped_table(
                        rows.iter()
                            .map(|r| {
                                (
                                    self.group_key(r.node, r.shard, Some(r.degraded), None),
                                    r.max_lateness_us as f64,
                                )
                            })
                            .collect(),
                        "max_lateness_us",
                    );
                }
                self.rows_or_aggregate(
                    rows.iter().map(|r| r.max_lateness_us as f64).collect(),
                    "max_lateness_us",
                    || Table {
                        title: self.describe(),
                        columns: str_vec(&[
                            "session",
                            "shard",
                            "node",
                            "object",
                            "state",
                            "fidelity",
                            "elements",
                            "misses",
                            "max_late_us",
                        ]),
                        rows: rows
                            .iter()
                            .map(|r| {
                                vec![
                                    session_label(r.session),
                                    r.shard.to_string(),
                                    r.node.to_string(),
                                    r.object.clone(),
                                    format!("{:?}", r.state),
                                    if r.degraded { "degraded" } else { "full" }.into(),
                                    r.elements.to_string(),
                                    r.misses.to_string(),
                                    r.max_lateness_us.to_string(),
                                ]
                            })
                            .collect(),
                    },
                )
            }
            Source::Misses => {
                let rows: Vec<&MissRow> =
                    ctx.misses.iter().filter(|r| self.matches_miss(r)).collect();
                if self.group.is_some() {
                    return self.grouped_table(
                        rows.iter()
                            .map(|r| {
                                (
                                    self.group_key(r.node, r.shard, None, Some(r.cause)),
                                    r.lateness_us as f64,
                                )
                            })
                            .collect(),
                        "lateness_us",
                    );
                }
                self.rows_or_aggregate(
                    rows.iter().map(|r| r.lateness_us as f64).collect(),
                    "lateness_us",
                    || Table {
                        title: self.describe(),
                        columns: str_vec(&[
                            "at",
                            "session",
                            "shard",
                            "node",
                            "element",
                            "lateness_us",
                            "cause",
                        ]),
                        rows: rows
                            .iter()
                            .map(|r| {
                                vec![
                                    r.at.to_string(),
                                    session_label(r.session),
                                    r.shard.to_string(),
                                    r.node.to_string(),
                                    r.element.to_string(),
                                    r.lateness_us.to_string(),
                                    r.cause.to_string(),
                                ]
                            })
                            .collect(),
                    },
                )
            }
        }
    }

    /// Every predicate must be typed for the scanned source.
    fn check_types(&self) -> Result<(), QueryError> {
        if let Some(group) = self.group {
            if self.aggregate.is_none() {
                return Err(QueryError::GroupWithoutAggregate);
            }
            let ok = match group {
                GroupBy::Node | GroupBy::Shard => true,
                GroupBy::Degraded => matches!(self.source, Source::Sessions | Source::Metrics),
                GroupBy::Cause => self.source == Source::Misses,
            };
            if !ok {
                return Err(QueryError::GroupNotTyped {
                    source: self.source,
                    group: group.to_string(),
                });
            }
        }
        for p in &self.filters {
            let ok = match p {
                Predicate::OnShard(_) | Predicate::OnNode(_) => true,
                Predicate::NameContains(_) => matches!(
                    self.source,
                    Source::Objects | Source::Streams | Source::Sessions
                ),
                Predicate::KindIs(_) | Predicate::CodecIs(_) => {
                    matches!(self.source, Source::Objects | Source::Streams)
                }
                Predicate::CauseIs(_) => self.source == Source::Misses,
                Predicate::Degraded(_) => {
                    matches!(self.source, Source::Sessions | Source::Metrics)
                }
                Predicate::MetricIs(_) => self.source == Source::Metrics,
                Predicate::During(_, _) => {
                    matches!(self.source, Source::Misses | Source::Metrics)
                }
            };
            if !ok {
                return Err(QueryError::PredicateNotTyped {
                    source: self.source,
                    predicate: p.to_string(),
                });
            }
        }
        Ok(())
    }

    fn matches_object(&self, r: &ObjectRow) -> bool {
        self.filters.iter().all(|p| match p {
            Predicate::OnShard(s) => r.shard == *s,
            Predicate::OnNode(n) => r.node == *n,
            Predicate::NameContains(needle) => r.columns.name.contains(needle),
            Predicate::KindIs(k) => r.columns.kind == Some(*k),
            Predicate::CodecIs(c) => r.columns.codec.as_deref() == Some(c.as_str()),
            _ => true,
        })
    }

    fn matches_stream(&self, r: &StreamRow) -> bool {
        self.filters.iter().all(|p| match p {
            Predicate::OnShard(s) => r.shard == *s,
            Predicate::OnNode(n) => r.node == *n,
            Predicate::NameContains(needle) => r.columns.object.contains(needle),
            Predicate::KindIs(k) => r.columns.kind == *k,
            Predicate::CodecIs(c) => r.columns.codec.as_deref() == Some(c.as_str()),
            _ => true,
        })
    }

    fn matches_session(&self, r: &SessionRow) -> bool {
        self.filters.iter().all(|p| match p {
            Predicate::OnShard(s) => r.shard == *s,
            Predicate::OnNode(n) => r.node == *n,
            Predicate::NameContains(needle) => r.object.contains(needle),
            Predicate::Degraded(d) => r.degraded == *d,
            _ => true,
        })
    }

    fn matches_miss(&self, r: &MissRow) -> bool {
        self.filters.iter().all(|p| match p {
            Predicate::OnShard(s) => r.shard == *s,
            Predicate::OnNode(n) => r.node == *n,
            Predicate::CauseIs(c) => r.cause == *c,
            Predicate::During(a, b) => r.at >= *a && r.at <= *b,
            _ => true,
        })
    }

    /// The `Metrics` source: translate predicates to a [`Selector`] and
    /// answer from the store's models.
    fn run_metrics(&self, ctx: &QueryCtx<'_>) -> Result<Table, QueryError> {
        let store = ctx.telemetry.ok_or(QueryError::NoTelemetry)?;
        let mut sel = Selector::all();
        for p in &self.filters {
            match p {
                Predicate::OnShard(s) => sel.shard = Some(*s),
                Predicate::OnNode(n) => sel.node = Some(*n),
                Predicate::MetricIs(m) => sel.metric = Some(*m),
                Predicate::Degraded(d) => sel.degraded = Some(*d),
                Predicate::During(a, b) => {
                    sel.from = Some(*a);
                    sel.to = Some(*b);
                }
                _ => unreachable!("check_types rejected untyped predicates"),
            }
        }
        if let Some(group) = self.group {
            let agg = self.aggregate.expect("check_types requires an aggregate");
            let rows = store
                .aggregate_grouped(&sel, agg, group)
                .into_iter()
                .map(|(k, res)| {
                    vec![
                        k.to_string(),
                        agg.to_string(),
                        fmt_value(res.value),
                        format!("±{}%", fmt_value(res.error_pct)),
                        res.points.to_string(),
                        res.segments.to_string(),
                    ]
                })
                .collect();
            let gcol = group.to_string();
            return Ok(Table {
                title: self.describe(),
                columns: str_vec(&[
                    gcol.as_str(),
                    "aggregate",
                    "value",
                    "error",
                    "points",
                    "segments",
                ]),
                rows,
            });
        }
        if let Some(agg) = self.aggregate {
            let mut row = vec![self.source.to_string(), agg.to_string()];
            match store.aggregate(&sel, agg) {
                Some(res) => row.extend([
                    fmt_value(res.value),
                    format!("±{}%", fmt_value(res.error_pct)),
                    res.points.to_string(),
                    res.segments.to_string(),
                ]),
                None => row.extend([
                    "-".to_string(),
                    "-".to_string(),
                    "0".to_string(),
                    "0".to_string(),
                ]),
            }
            return Ok(Table {
                title: self.describe(),
                columns: str_vec(&[
                    "source",
                    "aggregate",
                    "value",
                    "error",
                    "points",
                    "segments",
                ]),
                rows: vec![row],
            });
        }
        // No aggregate: list the matching series.
        let rows = store
            .keys()
            .filter(|k| sel.matches(k))
            .map(|k| {
                let segs = store.segments(k);
                let points: u64 = segs.iter().map(|s| u64::from(s.count)).sum();
                let bytes: u64 = segs.iter().map(|s| s.encoded_bytes()).sum();
                vec![
                    k.to_string(),
                    segs.len().to_string(),
                    points.to_string(),
                    bytes.to_string(),
                ]
            })
            .collect();
        Ok(Table {
            title: self.describe(),
            columns: str_vec(&["series", "segments", "points", "bytes"]),
            rows,
        })
    }

    /// The grouped-row key for this query's `group_by` column. `degraded`
    /// and `cause` are only consulted for sources `check_types` admits
    /// them on.
    fn group_key(
        &self,
        node: u16,
        shard: u16,
        degraded: Option<bool>,
        cause: Option<MissCause>,
    ) -> GroupKey {
        match self.group.expect("grouped execution path") {
            GroupBy::Node => GroupKey::Node(node),
            GroupBy::Shard => GroupKey::Shard(shard),
            GroupBy::Degraded => GroupKey::Degraded(degraded.expect("check_types typed the group")),
            GroupBy::Cause => GroupKey::Cause(cause.expect("check_types typed the group")),
        }
    }

    /// Buckets `(group, value)` pairs and aggregates each bucket — the
    /// grouped tail shared by every row source.
    fn grouped_table(
        &self,
        pairs: Vec<(GroupKey, f64)>,
        column: &str,
    ) -> Result<Table, QueryError> {
        let agg = self.aggregate.expect("check_types requires an aggregate");
        let group = self.group.expect("grouped execution path");
        let mut buckets: BTreeMap<GroupKey, Vec<f64>> = BTreeMap::new();
        for (k, v) in pairs {
            buckets.entry(k).or_default().push(v);
        }
        let gcol = group.to_string();
        Ok(Table {
            title: self.describe(),
            columns: str_vec(&[gcol.as_str(), "column", "aggregate", "value", "rows"]),
            rows: buckets
                .into_iter()
                .map(|(k, mut vals)| {
                    let value = aggregate_values(&mut vals, agg);
                    vec![
                        k.to_string(),
                        column.to_string(),
                        agg.to_string(),
                        value.map_or_else(|| "-".to_string(), fmt_value),
                        vals.len().to_string(),
                    ]
                })
                .collect(),
        })
    }

    /// Shared listing-vs-aggregate tail for the row sources: `values` is
    /// the source's aggregation column.
    fn rows_or_aggregate(
        &self,
        mut values: Vec<f64>,
        column: &str,
        listing: impl FnOnce() -> Table,
    ) -> Result<Table, QueryError> {
        let Some(agg) = self.aggregate else {
            return Ok(listing());
        };
        let value = aggregate_values(&mut values, agg);
        Ok(Table {
            title: self.describe(),
            columns: str_vec(&["source", "column", "aggregate", "value", "rows"]),
            rows: vec![vec![
                self.source.to_string(),
                column.to_string(),
                agg.to_string(),
                value.map_or_else(|| "-".to_string(), fmt_value),
                values.len().to_string(),
            ]],
        })
    }
}

/// Aggregates a plain column of row values (exact; no model error).
fn aggregate_values(values: &mut [f64], agg: Aggregate) -> Option<f64> {
    if values.is_empty() {
        return match agg {
            Aggregate::Count => Some(0.0),
            _ => None,
        };
    }
    Some(match agg {
        Aggregate::Count => values.len() as f64,
        Aggregate::Min => values.iter().copied().fold(f64::INFINITY, f64::min),
        Aggregate::Max => values.iter().copied().fold(f64::NEG_INFINITY, f64::max),
        Aggregate::Mean => values.iter().sum::<f64>() / values.len() as f64,
        Aggregate::Quantile(p) => {
            values.sort_by(|a, b| a.partial_cmp(b).expect("finite column values"));
            let n = values.len() as u64;
            let rank = (u64::from(p.min(100)) * n).div_ceil(100).max(1);
            values[(rank - 1) as usize]
        }
    })
}

/// `shard.offset` — readable, and stable across runs.
fn session_label(raw: u64) -> String {
    format!(
        "s{}.{}",
        raw / SHARD_SESSION_STRIDE,
        raw % SHARD_SESSION_STRIDE
    )
}

/// Deterministic numeric rendering: integers without a fraction, otherwise
/// three decimals.
fn fmt_value(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{v:.0}")
    } else {
        format!("{v:.3}")
    }
}

fn str_vec(items: &[&str]) -> Vec<String> {
    items.iter().map(|s| s.to_string()).collect()
}

// ----------------------------------------------------------------------
// Rendering
// ----------------------------------------------------------------------

/// A query result: a titled grid of strings.
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    /// The query plan that produced the table.
    pub title: String,
    /// Column headers.
    pub columns: Vec<String>,
    /// Row cells, one `Vec` per row, matching `columns` in length.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Aligned-text rendering: title, header, rule, rows — byte-identical
    /// for identical results.
    pub fn render(&self) -> String {
        // Widths are in characters, not bytes — cells like "±1%" hold
        // multi-byte glyphs and must still align.
        let w = |s: &str| s.chars().count();
        let mut widths: Vec<usize> = self.columns.iter().map(|c| w(c)).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                if i < widths.len() {
                    widths[i] = widths[i].max(w(cell));
                } else {
                    widths.push(w(cell));
                }
            }
        }
        let mut out = String::new();
        out.push_str(&self.title);
        out.push('\n');
        let fmt_row = |cells: &[String]| -> String {
            let mut line = String::new();
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(cell);
                let pad = widths
                    .get(i)
                    .copied()
                    .unwrap_or(0)
                    .saturating_sub(cell.chars().count());
                if i + 1 < cells.len() {
                    line.extend(std::iter::repeat_n(' ', pad));
                }
            }
            line
        };
        out.push_str(&fmt_row(&self.columns));
        out.push('\n');
        let rule: usize = widths.iter().sum::<usize>() + 2 * widths.len().saturating_sub(1);
        out.extend(std::iter::repeat_n('-', rule));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        if self.rows.is_empty() {
            out.push_str("(no rows)\n");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ErrorBound;
    use crate::sink::SeriesSink;
    use crate::store::SeriesKey;
    use tbm_time::TimeDelta;

    fn mini_store() -> TelemetryStore {
        let mut store = TelemetryStore::new(TimePoint::ZERO, TimeDelta::from_millis(50));
        let mut sink = SeriesSink::new(ErrorBound::percent(1.0));
        for v in [100.0; 40] {
            sink.append(v);
        }
        sink.flush();
        let key = SeriesKey {
            node: 2,
            shard: Some(1),
            metric: Metric::LatenessUs,
            degraded: true,
        };
        for seg in sink.drain() {
            store.ingest(key, seg);
        }
        store
    }

    #[test]
    fn typed_predicates_are_enforced() {
        let ctx = QueryCtx::new();
        let err = Query::scan(Source::Objects)
            .filter(Predicate::CauseIs(MissCause::NodeLoss))
            .run(&ctx)
            .expect_err("cause is not an object column");
        assert!(matches!(err, QueryError::PredicateNotTyped { .. }));
        let err = Query::scan(Source::Misses)
            .filter(Predicate::CodecIs("dct".into()))
            .run(&ctx)
            .expect_err("codec is not a miss column");
        assert!(err.to_string().contains("scan(misses)"));
    }

    #[test]
    fn metrics_scan_requires_store() {
        let ctx = QueryCtx::new();
        let err = Query::scan(Source::Metrics)
            .run(&ctx)
            .expect_err("no store");
        assert_eq!(err, QueryError::NoTelemetry);
    }

    #[test]
    fn metrics_aggregate_answers_from_models() {
        let store = mini_store();
        let ctx = QueryCtx::new().with_telemetry(&store);
        let table = Query::scan(Source::Metrics)
            .filter(Predicate::MetricIs(Metric::LatenessUs))
            .filter(Predicate::OnNode(2))
            .filter(Predicate::Degraded(true))
            .aggregate(Aggregate::Quantile(99))
            .run(&ctx)
            .expect("typed and backed");
        assert_eq!(table.len(), 1);
        assert_eq!(table.rows[0][2], "100");
        assert_eq!(table.rows[0][4], "40");
        assert!(table.render().contains("p99"));
    }

    #[test]
    fn metrics_listing_shows_series() {
        let store = mini_store();
        let ctx = QueryCtx::new().with_telemetry(&store);
        let table = Query::scan(Source::Metrics).run(&ctx).expect("listing");
        assert_eq!(table.len(), 1);
        assert_eq!(table.rows[0][0], "node2.shard1.lateness_us.degraded");
    }

    #[test]
    fn empty_aggregate_renders_dash() {
        let ctx = QueryCtx::new();
        let table = Query::scan(Source::Sessions)
            .aggregate(Aggregate::Quantile(99))
            .run(&ctx)
            .expect("typed");
        assert_eq!(table.rows[0][3], "-");
        // Count over nothing is 0, not a hole.
        let table = Query::scan(Source::Sessions)
            .aggregate(Aggregate::Count)
            .run(&ctx)
            .expect("typed");
        assert_eq!(table.rows[0][3], "0");
    }

    #[test]
    fn session_rows_filter_on_typed_columns() {
        let mut ctx = QueryCtx::new();
        for (i, degraded) in [(0u64, false), (1, true), (2, true)] {
            ctx.sessions.push(SessionRow {
                session: SHARD_SESSION_STRIDE * 2 + i,
                shard: 2,
                node: 1,
                object: format!("movie{i}"),
                state: SessionState::Playing,
                degraded,
                elements: 10,
                misses: i,
                max_lateness_us: 1000 * i as i64,
            });
        }
        let table = Query::scan(Source::Sessions)
            .filter(Predicate::Degraded(true))
            .run(&ctx)
            .expect("typed");
        assert_eq!(table.len(), 2);
        assert_eq!(table.rows[0][0], "s2.1");
        let agg = Query::scan(Source::Sessions)
            .filter(Predicate::Degraded(true))
            .aggregate(Aggregate::Max)
            .run(&ctx)
            .expect("typed");
        assert_eq!(agg.rows[0][3], "2000");
    }

    #[test]
    fn render_is_aligned_and_stable() {
        let table = Table {
            title: "scan(x)".into(),
            columns: str_vec(&["a", "long_column"]),
            rows: vec![
                vec!["1".into(), "2".into()],
                vec!["wide-cell".into(), "3".into()],
            ],
        };
        let r = table.render();
        assert_eq!(
            r,
            "scan(x)\na          long_column\n----------------------\n1          2\nwide-cell  3\n"
        );
        // Deterministic: rendering twice is byte-identical.
        assert_eq!(r, table.render());
    }

    #[test]
    fn describe_reads_like_a_plan() {
        let q = Query::scan(Source::Metrics)
            .filter(Predicate::OnNode(2))
            .filter(Predicate::Degraded(true))
            .aggregate(Aggregate::Quantile(99));
        assert_eq!(
            q.describe(),
            "scan(metrics) → filter(node=2 ∧ degraded) → p99"
        );
    }

    #[test]
    fn grouped_misses_count_by_cause_is_one_query() {
        let mut ctx = QueryCtx::new();
        for (i, cause) in [
            (1i64, MissCause::NodeLoss),
            (2, MissCause::RetryStorm),
            (3, MissCause::NodeLoss),
            (4, MissCause::NodeLoss),
        ] {
            ctx.misses.push(MissRow {
                session: 5,
                shard: (i % 2) as u16,
                node: 0,
                element: i,
                at: TimePoint::from_secs(i),
                lateness_us: 100 * i,
                cause,
            });
        }
        let table = Query::scan(Source::Misses)
            .group_by(GroupBy::Cause)
            .aggregate(Aggregate::Count)
            .run(&ctx)
            .expect("typed");
        assert_eq!(table.len(), 2);
        // MissCause::ALL order: node-loss before retry-storm.
        assert_eq!(table.rows[0][0], "node-loss");
        assert_eq!(table.rows[0][3], "3");
        assert_eq!(table.rows[1][0], "retry-storm");
        assert_eq!(table.rows[1][3], "1");
        assert!(table.title.contains("group(cause)"));
        // Grouping by shard works on the same source.
        let table = Query::scan(Source::Misses)
            .group_by(GroupBy::Shard)
            .aggregate(Aggregate::Max)
            .run(&ctx)
            .expect("typed");
        assert_eq!(table.len(), 2);
        assert_eq!(table.rows[1][0], "shard1");
        assert_eq!(table.rows[1][3], "300");
    }

    #[test]
    fn grouped_metrics_answer_from_models_per_group() {
        let store = mini_store();
        let ctx = QueryCtx::new().with_telemetry(&store);
        let table = Query::scan(Source::Metrics)
            .filter(Predicate::MetricIs(Metric::LatenessUs))
            .group_by(GroupBy::Node)
            .aggregate(Aggregate::Mean)
            .run(&ctx)
            .expect("typed and backed");
        assert_eq!(table.len(), 1);
        assert_eq!(table.rows[0][0], "node2");
        assert_eq!(table.rows[0][2], "100");
        assert_eq!(table.columns[0], "node");
    }

    #[test]
    fn group_typing_is_enforced() {
        let ctx = QueryCtx::new();
        let err = Query::scan(Source::Objects)
            .group_by(GroupBy::Cause)
            .aggregate(Aggregate::Count)
            .run(&ctx)
            .expect_err("cause is not an object column");
        assert!(matches!(err, QueryError::GroupNotTyped { .. }));
        assert!(err.to_string().contains("group(cause)"));
        let err = Query::scan(Source::Misses)
            .group_by(GroupBy::Degraded)
            .aggregate(Aggregate::Count)
            .run(&ctx)
            .expect_err("fidelity is not a miss column");
        assert!(matches!(err, QueryError::GroupNotTyped { .. }));
        let err = Query::scan(Source::Sessions)
            .group_by(GroupBy::Node)
            .run(&ctx)
            .expect_err("group without aggregate");
        assert_eq!(err, QueryError::GroupWithoutAggregate);
    }

    #[test]
    fn miss_rows_window_and_cause_filter() {
        let mut ctx = QueryCtx::new();
        for (i, cause) in [
            (1i64, MissCause::NodeLoss),
            (2, MissCause::RetryStorm),
            (3, MissCause::NodeLoss),
        ] {
            ctx.misses.push(MissRow {
                session: 5,
                shard: 0,
                node: 0,
                element: i,
                at: TimePoint::from_secs(i),
                lateness_us: 100 * i,
                cause,
            });
        }
        let table = Query::scan(Source::Misses)
            .filter(Predicate::CauseIs(MissCause::NodeLoss))
            .filter(Predicate::During(
                TimePoint::from_secs(2),
                TimePoint::from_secs(9),
            ))
            .run(&ctx)
            .expect("typed");
        assert_eq!(table.len(), 1);
        assert_eq!(table.rows[0][4], "3");
    }
}
