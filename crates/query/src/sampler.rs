//! Sampling a live [`Fleet`] into the telemetry plane.
//!
//! [`FleetTelemetry`] owns one [`SeriesSink`] per telemetry series and the
//! central [`TelemetryStore`] they drain into. Each call to
//! [`tick`](FleetTelemetry::tick) on the simulated clock:
//!
//! 1. snapshots every shard's cumulative metrics (`Histogram`s and
//!    counters are cheap `Copy` values) and turns the *delta* since the
//!    previous tick into one sample per series — mean lateness split by
//!    session fidelity, storage throughput, cache hit rate, and per-node
//!    load;
//! 2. appends the samples to the sinks, compressing under the configured
//!    [`ErrorBound`];
//! 3. ships every segment the sinks finished over the owning node's
//!    [`Link`] via [`Fleet::charge_transfer`] — telemetry pays for its
//!    bytes like any other transfer, may be lost, and is retried on later
//!    ticks (order-preserving per node) until delivered.
//!
//! Everything runs on the simulated clock with seeded loss draws, so a
//! same-seed run ships the same segments and the store's contents are
//! byte-identical.
//!
//! A [`HealthMonitor`] can ride the tick via
//! [`with_health`](FleetTelemetry::with_health): each tick's samples are
//! fed to the monitor *before* compression, its alert transitions become
//! [`Category::Health`] spans and `health.*` counters on the fleet, and
//! every closed alert is expanded into an [`IncidentReport`] on the spot.
//!
//! [`Link`]: tbm_serve::Link

use std::collections::BTreeMap;

use tbm_blob::BlobStore;
use tbm_obs::{AttrValue, Category, Histogram, SpanId, LATENCY_BUCKETS_US};
use tbm_serve::Fleet;
use tbm_time::{TimeDelta, TimePoint};

use crate::health::{AlertKind, HealthMonitor, IncidentReport};
use crate::model::{ErrorBound, Segment};
use crate::query::QueryCtx;
use crate::remediate::Remediator;
use crate::sink::SeriesSink;
use crate::store::{Metric, SeriesKey, TelemetryStore};

/// Cumulative per-shard counters, snapshotted each tick so the next tick
/// can sample the delta.
#[derive(Debug, Clone, Copy, Default)]
struct ShardSnap {
    late_full_count: u64,
    late_full_sum: u64,
    late_degraded_count: u64,
    late_degraded_sum: u64,
    bytes_read: u64,
    cache_hits: u64,
    cache_lookups: u64,
    served: u64,
    dropped: u64,
    unverified: u64,
}

/// A [`HealthMonitor`] riding the sampler's tick, with the open-alert
/// spans it holds in the tracer and the reports its closed alerts
/// expanded into.
#[derive(Debug)]
struct HealthRider {
    monitor: HealthMonitor,
    spans: BTreeMap<String, SpanId>,
    reports: Vec<IncidentReport>,
}

/// The fleet-side half of the telemetry plane: per-series compressors plus
/// the shipping loop into a [`TelemetryStore`].
#[derive(Debug)]
pub struct FleetTelemetry {
    bound: ErrorBound,
    interval: TimeDelta,
    store: Option<TelemetryStore>,
    ticks: u32,
    sinks: BTreeMap<SeriesKey, SeriesSink>,
    prev: Vec<ShardSnap>,
    /// Per node: segments whose shipment was lost, awaiting retry in
    /// arrival order ahead of anything newer.
    pending: BTreeMap<usize, Vec<(SeriesKey, Segment)>>,
    shipped_segments: u64,
    shipped_bytes: u64,
    lost_shipments: u64,
    salvaged_segments: u64,
    health: Option<HealthRider>,
    remediator: Option<Remediator>,
}

impl FleetTelemetry {
    /// A sampler compressing under `bound`, expecting one
    /// [`tick`](FleetTelemetry::tick) every `interval`.
    ///
    /// # Panics
    /// When `interval` is not strictly positive.
    pub fn new(bound: ErrorBound, interval: TimeDelta) -> FleetTelemetry {
        assert!(
            !interval.is_zero() && !interval.is_negative(),
            "telemetry tick interval must be positive"
        );
        FleetTelemetry {
            bound,
            interval,
            store: None,
            ticks: 0,
            sinks: BTreeMap::new(),
            prev: Vec::new(),
            pending: BTreeMap::new(),
            shipped_segments: 0,
            shipped_bytes: 0,
            lost_shipments: 0,
            salvaged_segments: 0,
            health: None,
            remediator: None,
        }
    }

    /// Builder: attaches a [`HealthMonitor`] that evaluates its SLO rules
    /// against every tick's samples as they are taken. Alert transitions
    /// become [`Category::Health`] spans and `health.*` counters on the
    /// fleet; closed alerts are expanded into [`IncidentReport`]s
    /// retrievable via [`incident_reports`](FleetTelemetry::incident_reports).
    ///
    /// # Panics
    /// When the monitor's tick interval differs from the sampler's.
    pub fn with_health(mut self, monitor: HealthMonitor) -> FleetTelemetry {
        assert_eq!(
            monitor.interval(),
            self.interval,
            "health monitor must share the sampler's tick interval"
        );
        self.health = Some(HealthRider {
            monitor,
            spans: BTreeMap::new(),
            reports: Vec::new(),
        });
        self
    }

    /// Builder: attaches a [`Remediator`] that turns the riding health
    /// monitor's alerts into guarded fleet actions each tick, after the
    /// monitor has judged the tick's samples. Closed incidents get the
    /// remediator's action lines stamped into their report timeline.
    ///
    /// # Panics
    /// When no health monitor is attached ([`with_health`] first — the
    /// remediator acts on its alerts).
    ///
    /// [`with_health`]: FleetTelemetry::with_health
    pub fn with_remediator(mut self, remediator: Remediator) -> FleetTelemetry {
        assert!(
            self.health.is_some(),
            "a remediator needs a health monitor to subscribe to"
        );
        self.remediator = Some(remediator);
        self
    }

    /// The riding health monitor, when one was attached.
    pub fn health(&self) -> Option<&HealthMonitor> {
        self.health.as_ref().map(|h| &h.monitor)
    }

    /// The riding remediator, when one was attached.
    pub fn remediator(&self) -> Option<&Remediator> {
        self.remediator.as_ref()
    }

    /// Incident reports expanded so far (one per closed alert, in close
    /// order; empty without a health monitor).
    pub fn incident_reports(&self) -> &[IncidentReport] {
        self.health.as_ref().map_or(&[], |h| h.reports.as_slice())
    }

    /// The configured error bound.
    pub fn bound(&self) -> ErrorBound {
        self.bound
    }

    /// Ticks sampled so far.
    pub fn ticks(&self) -> u32 {
        self.ticks
    }

    /// Segments delivered into the store over node links.
    pub fn shipped_segments(&self) -> u64 {
        self.shipped_segments
    }

    /// Payload bytes delivered over node links.
    pub fn shipped_bytes(&self) -> u64 {
        self.shipped_bytes
    }

    /// Shipment attempts lost to node/link faults (each later retried).
    pub fn lost_shipments(&self) -> u64 {
        self.lost_shipments
    }

    /// Segments force-ingested by [`finish`](FleetTelemetry::finish) after
    /// their last shipment attempt was lost.
    pub fn salvaged_segments(&self) -> u64 {
        self.salvaged_segments
    }

    /// The store accumulated so far (`None` before the first tick).
    pub fn store(&self) -> Option<&TelemetryStore> {
        self.store.as_ref()
    }

    /// Samples the fleet at `at` — one tick. The first call fixes the tick
    /// schedule's origin; later calls must land exactly `interval` apart.
    ///
    /// The sampled values cover activity since the previous tick (cumulative
    /// counter deltas), so the first tick of an idle fleet reads all zeros.
    ///
    /// # Panics
    /// When `at` is off the tick schedule.
    pub fn tick<S: BlobStore>(&mut self, fleet: &mut Fleet<S>, at: TimePoint) {
        fleet.run_until(at);
        match &self.store {
            Some(store) => assert_eq!(
                store.tick_time(self.ticks),
                at,
                "telemetry tick off schedule: expected {}, got {at}",
                store.tick_time(self.ticks)
            ),
            None => self.store = Some(TelemetryStore::new(at, self.interval)),
        }

        let shard_count = fleet.shard_count();
        let node_count = fleet.node_count();
        self.prev.resize(shard_count, ShardSnap::default());
        let interval_secs = self.interval.seconds().to_f64();

        // Per-node load accumulators, filled while walking the shards.
        let mut committed = vec![0u64; node_count];
        let mut capacity = vec![0u64; node_count];
        // This tick's samples, collected before compression so the health
        // monitor (when riding) sees exactly what the sinks ingest.
        let mut samples: Vec<(SeriesKey, f64)> = Vec::new();

        for shard in 0..shard_count {
            let server = fleet.shard(shard);
            let metrics = server.metrics();
            let stats = server.stats();
            // Load is charged to the node *currently* hosting the shard;
            // the shard's series identity stays keyed on its home node so
            // a migration or rebalance mid-run cannot fork the series
            // (a forked series would restart its tick axis at zero).
            let hosting = fleet.placement().node_of_shard(shard);
            committed[hosting] += stats.committed_bps;
            capacity[hosting] += server.capacity().storage_bandwidth;
            let node = fleet.placement().home_of(shard);

            let hist =
                |name: &str| -> Histogram { metrics.histogram_or_empty(name, &LATENCY_BUCKETS_US) };
            let full = hist("serve.lateness_us.full");
            let degraded = hist("serve.lateness_us.degraded");
            let snap = ShardSnap {
                late_full_count: full.count(),
                late_full_sum: full.sum(),
                late_degraded_count: degraded.count(),
                late_degraded_sum: degraded.sum(),
                bytes_read: metrics.counter("storage.bytes_read"),
                cache_hits: stats.cache.hits,
                cache_lookups: stats.cache.lookups(),
                served: stats.elements_served as u64,
                dropped: stats.dropped_elements as u64,
                // The tiered store promises never to serve unverified
                // bytes; this counter existing at zero is the promise the
                // health plane's watchdog rule holds it to.
                unverified: metrics.counter("storage.unverified_serves"),
            };
            let prev = std::mem::replace(&mut self.prev[shard], snap);

            let mean_delta = |count: u64, sum: u64, p_count: u64, p_sum: u64| -> f64 {
                let dc = count.saturating_sub(p_count);
                if dc == 0 {
                    0.0
                } else {
                    (sum.saturating_sub(p_sum)) as f64 / dc as f64
                }
            };
            let node16 = node as u16;
            let shard16 = shard as u16;
            let mut push = |metric: Metric, degraded_split: bool, value: f64| {
                let key = SeriesKey {
                    node: node16,
                    shard: Some(shard16),
                    metric,
                    degraded: degraded_split,
                };
                samples.push((key, value));
            };
            push(
                Metric::LatenessUs,
                false,
                mean_delta(
                    snap.late_full_count,
                    snap.late_full_sum,
                    prev.late_full_count,
                    prev.late_full_sum,
                ),
            );
            push(
                Metric::LatenessUs,
                true,
                mean_delta(
                    snap.late_degraded_count,
                    snap.late_degraded_sum,
                    prev.late_degraded_count,
                    prev.late_degraded_sum,
                ),
            );
            push(
                Metric::ThroughputBps,
                false,
                snap.bytes_read.saturating_sub(prev.bytes_read) as f64 / interval_secs,
            );
            let d_lookups = snap.cache_lookups.saturating_sub(prev.cache_lookups);
            let d_hits = snap.cache_hits.saturating_sub(prev.cache_hits);
            push(
                Metric::CacheHitPct,
                false,
                if d_lookups == 0 {
                    0.0
                } else {
                    100.0 * d_hits as f64 / d_lookups as f64
                },
            );
            let d_served = snap.served.saturating_sub(prev.served);
            let d_dropped = snap.dropped.saturating_sub(prev.dropped);
            push(
                Metric::DropRatePct,
                false,
                if d_served + d_dropped == 0 {
                    0.0
                } else {
                    100.0 * d_dropped as f64 / (d_served + d_dropped) as f64
                },
            );
            push(
                Metric::UnverifiedServes,
                false,
                snap.unverified.saturating_sub(prev.unverified) as f64,
            );
        }

        for node in 0..node_count {
            let key = SeriesKey {
                node: node as u16,
                shard: None,
                metric: Metric::NodeLoadPct,
                degraded: false,
            };
            let load = if capacity[node] == 0 {
                0.0
            } else {
                100.0 * committed[node] as f64 / capacity[node] as f64
            };
            samples.push((key, load));
        }
        for (key, value) in &samples {
            sink_for(&mut self.sinks, self.bound, *key).append(*value);
        }
        self.ticks += 1;
        self.ship(fleet, at, false);
        self.observe_health(fleet, at, &samples);
    }

    /// Feeds one tick's samples to the riding health monitor and turns its
    /// alert transitions into first-class observability: a
    /// [`Category::Health`] span per incident (opened on alert open,
    /// closed on clear), `health.alerts.*` counters on the fleet, and a
    /// fully expanded [`IncidentReport`] for every alert this tick closed.
    fn observe_health<S: BlobStore>(
        &mut self,
        fleet: &mut Fleet<S>,
        at: TimePoint,
        samples: &[(SeriesKey, f64)],
    ) {
        let Some(health) = &mut self.health else {
            return;
        };
        let prior_incidents = health.monitor.incidents().len();
        let transitions = health.monitor.observe_tick(at, samples);
        if transitions.is_empty() && self.remediator.is_none() {
            return;
        }
        let tracer = fleet.tracer().clone();
        let milli = |burn: f64| AttrValue::U64((burn * 1000.0).round() as u64);
        for tr in &transitions {
            match tr.kind {
                AlertKind::Opened => {
                    let span = tracer.begin_span("alert", Category::Health, at, SpanId::NONE, None);
                    tracer.attr(span, "rule", AttrValue::Text(tr.rule.clone()));
                    tracer.attr(span, "open_tick", AttrValue::U64(u64::from(tr.tick)));
                    tracer.attr(span, "fast_burn_milli", milli(tr.fast_burn));
                    tracer.attr(span, "slow_burn_milli", milli(tr.slow_burn));
                    health.spans.insert(tr.rule.clone(), span);
                    fleet.inc_metric("health.alerts.opened", 1);
                    fleet.inc_metric(format!("health.alerts.opened.{}", tr.rule), 1);
                }
                AlertKind::Closed => {
                    if let Some(span) = health.spans.remove(&tr.rule) {
                        tracer.end_span(span, at);
                    }
                    fleet.inc_metric("health.alerts.closed", 1);
                }
            }
        }
        // The remediation pass runs after the monitor has judged the tick
        // (so it sees this tick's open/close state and burns) and before
        // report expansion (so an incident that closes this tick carries
        // every action attempted while it was open, final verdicts
        // included — a close resolves its in-flight action as improved).
        if let Some(rem) = &mut self.remediator {
            let tick = health.monitor.ticks() - 1;
            rem.on_tick(fleet, &health.monitor, &transitions, tick, at);
        }
        // Expand every alert this tick closed against the monitor's own
        // lossless view of the run (so the report never depends on which
        // compressed segments have shipped) plus a fleet snapshot for the
        // miss-attribution rows.
        let closed = health.monitor.incidents()[prior_incidents..].to_vec();
        if !closed.is_empty() {
            let telemetry = health.monitor.store_view();
            let ctx = QueryCtx::from_fleet(fleet).with_telemetry(&telemetry);
            for incident in closed {
                let actions = self.remediator.as_ref().map_or_else(Vec::new, |rem| {
                    rem.actions_for(&incident.rule, incident.opened_tick, incident.closed_tick)
                });
                health
                    .reports
                    .push(IncidentReport::expand(incident, &telemetry, &ctx).with_actions(actions));
            }
        }
    }

    /// Flushes every open run and makes a final shipping pass at `at`.
    /// Segments whose last attempt is lost too are force-ingested (and
    /// counted as salvaged) so the store always ends complete — the
    /// operator reading the report should see the whole run, lossy links
    /// notwithstanding.
    ///
    /// Returns the completed store; [`FleetTelemetry::store`] keeps working
    /// afterwards.
    pub fn finish<S: BlobStore>(&mut self, fleet: &mut Fleet<S>, at: TimePoint) -> &TelemetryStore {
        for sink in self.sinks.values_mut() {
            sink.flush();
        }
        self.ship(fleet, at, true);
        self.store
            .get_or_insert_with(|| TelemetryStore::new(at, self.interval))
    }

    /// Ships pending + freshly drained segments, one batched transfer per
    /// node. `salvage` forces lost batches into the store anyway (the
    /// finish path).
    fn ship<S: BlobStore>(&mut self, fleet: &mut Fleet<S>, at: TimePoint, salvage: bool) {
        let Some(store) = &mut self.store else {
            return;
        };
        // Collect this tick's finished segments onto each owning node's
        // queue; pending (older) segments are already at the front.
        for (key, sink) in &mut self.sinks {
            for seg in sink.drain() {
                let node = match key.shard {
                    Some(shard) => fleet.placement().home_of(usize::from(shard)),
                    None => usize::from(key.node),
                };
                self.pending.entry(node).or_default().push((*key, seg));
            }
        }
        for (&node, batch) in &mut self.pending {
            if batch.is_empty() {
                continue;
            }
            let bytes: u64 = batch.iter().map(|(_, s)| s.encoded_bytes()).sum();
            let delivered = fleet.charge_transfer(node, at, bytes).is_some();
            if delivered || salvage {
                if delivered {
                    self.shipped_segments += batch.len() as u64;
                    self.shipped_bytes += bytes;
                } else {
                    self.lost_shipments += 1;
                    self.salvaged_segments += batch.len() as u64;
                }
                for (key, seg) in batch.drain(..) {
                    store.ingest(key, seg);
                }
            } else {
                self.lost_shipments += 1;
            }
        }
    }
}

/// The sink for `key`, created on first use.
fn sink_for(
    sinks: &mut BTreeMap<SeriesKey, SeriesSink>,
    bound: ErrorBound,
    key: SeriesKey,
) -> &mut SeriesSink {
    sinks.entry(key).or_insert_with(|| SeriesSink::new(bound))
}
