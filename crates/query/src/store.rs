//! The fleet-wide telemetry store: compressed series in, model-native
//! aggregates out.
//!
//! A [`TelemetryStore`] holds every shipped [`Segment`] keyed by
//! [`SeriesKey`] — which node, which shard (if shard-scoped), which
//! [`Metric`], and whether the series covers degraded-fidelity sessions.
//! All series share one tick schedule (`origin + k · interval`), so a
//! segment's tick range *is* its time range and windowed queries reduce to
//! integer tick arithmetic on exact [`Rational`] seconds.
//!
//! Aggregates ([`Aggregate`]) are evaluated directly on the segment
//! models — a constant segment contributes a `(value, weight)` pair, a
//! linear segment its closed-form endpoints/sum — never by materialising
//! the original samples, which no longer exist. Every [`AggResult`] carries
//! `error_pct`: the worst relative bound among the segments that
//! contributed, `0` when only raw segments did. Since telemetry samples are
//! non-negative, count/min/max/mean/quantile over reconstructions are each
//! within that same relative bound of the value the raw series would have
//! given (the property `tests/prop.rs` pins).

use std::collections::BTreeMap;
use std::fmt;

use tbm_obs::MissCause;
use tbm_time::{Rational, TimeDelta, TimePoint};

use crate::model::{Segment, SegmentModel, RAW_SAMPLE_BYTES};

/// What a telemetry series measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Metric {
    /// Mean deadline lateness of elements served in the tick, µs
    /// (0 when every element in the tick was on time).
    LatenessUs,
    /// Storage bytes read during the tick, scaled to bytes/second.
    ThroughputBps,
    /// Segment-cache hit rate over the tick's lookups, percent.
    CacheHitPct,
    /// Committed session bandwidth over node capacity, percent.
    NodeLoadPct,
    /// Elements dropped over elements scheduled in the tick, percent
    /// (0 when nothing was scheduled).
    DropRatePct,
    /// Bytes served without checksum verification during the tick. The
    /// tiered store promises this is always zero; the series exists so
    /// the health plane can hold it to that promise.
    UnverifiedServes,
}

impl Metric {
    /// All metrics, in key order.
    pub const ALL: [Metric; 6] = [
        Metric::LatenessUs,
        Metric::ThroughputBps,
        Metric::CacheHitPct,
        Metric::NodeLoadPct,
        Metric::DropRatePct,
        Metric::UnverifiedServes,
    ];

    /// Stable display name.
    pub fn as_str(&self) -> &'static str {
        match self {
            Metric::LatenessUs => "lateness_us",
            Metric::ThroughputBps => "throughput_bps",
            Metric::CacheHitPct => "cache_hit_pct",
            Metric::NodeLoadPct => "node_load_pct",
            Metric::DropRatePct => "drop_rate_pct",
            Metric::UnverifiedServes => "unverified_serves",
        }
    }
}

impl fmt::Display for Metric {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Identity of one telemetry series.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct SeriesKey {
    /// The node the series belongs to. For shard-scoped series this is
    /// the shard's *home* node — stable across migration and rebalance,
    /// so one series keeps one tick axis for the whole run.
    pub node: u16,
    /// The shard the series covers; `None` for node-level series
    /// (e.g. [`Metric::NodeLoadPct`]).
    pub shard: Option<u16>,
    /// What the series measures.
    pub metric: Metric,
    /// `true` when the series covers degraded-fidelity sessions only
    /// (the lateness split); `false` for full fidelity or unsplit metrics.
    pub degraded: bool,
}

impl fmt::Display for SeriesKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node{}", self.node)?;
        if let Some(s) = self.shard {
            write!(f, ".shard{s}")?;
        }
        write!(f, ".{}", self.metric)?;
        if self.degraded {
            write!(f, ".degraded")?;
        }
        Ok(())
    }
}

/// Which series an aggregate ranges over, plus an optional inclusive time
/// window. Unset fields match everything.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Selector {
    /// Only series from this node.
    pub node: Option<u16>,
    /// Only series covering this shard.
    pub shard: Option<u16>,
    /// Only this metric.
    pub metric: Option<Metric>,
    /// Only the degraded (`Some(true)`) or full-fidelity (`Some(false)`)
    /// split.
    pub degraded: Option<bool>,
    /// Only ticks at or after this instant.
    pub from: Option<TimePoint>,
    /// Only ticks at or before this instant.
    pub to: Option<TimePoint>,
}

impl Selector {
    /// Matches every series and tick.
    pub fn all() -> Selector {
        Selector::default()
    }

    /// Restricts to one metric.
    pub fn metric(metric: Metric) -> Selector {
        Selector {
            metric: Some(metric),
            ..Selector::default()
        }
    }

    /// Builder: only series from `node`.
    pub fn on_node(mut self, node: u16) -> Selector {
        self.node = Some(node);
        self
    }

    /// Builder: only series covering `shard`.
    pub fn on_shard(mut self, shard: u16) -> Selector {
        self.shard = Some(shard);
        self
    }

    /// Builder: only the degraded / full-fidelity split.
    pub fn degraded(mut self, degraded: bool) -> Selector {
        self.degraded = Some(degraded);
        self
    }

    /// Builder: only ticks inside `[from, to]` (inclusive).
    pub fn between(mut self, from: TimePoint, to: TimePoint) -> Selector {
        self.from = Some(from);
        self.to = Some(to);
        self
    }

    /// Whether the non-temporal fields match `key`.
    pub fn matches(&self, key: &SeriesKey) -> bool {
        self.node.is_none_or(|n| key.node == n)
            && self.shard.is_none_or(|s| key.shard == Some(s))
            && self.metric.is_none_or(|m| key.metric == m)
            && self.degraded.is_none_or(|d| key.degraded == d)
    }
}

/// An aggregate evaluated on segment models.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Aggregate {
    /// Number of covered ticks (exact).
    Count,
    /// Smallest reconstructed sample.
    Min,
    /// Largest reconstructed sample.
    Max,
    /// Arithmetic mean of reconstructed samples.
    Mean,
    /// Nearest-rank percentile `p` (0–100) of reconstructed samples.
    Quantile(u8),
}

impl fmt::Display for Aggregate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Aggregate::Count => write!(f, "count"),
            Aggregate::Min => write!(f, "min"),
            Aggregate::Max => write!(f, "max"),
            Aggregate::Mean => write!(f, "mean"),
            Aggregate::Quantile(p) => write!(f, "p{p}"),
        }
    }
}

/// Which [`SeriesKey`] field (or miss column) a grouped aggregate keys
/// its rows on.
///
/// `Node`, `Shard` and `Degraded` group telemetry series; `Cause` only
/// exists on the `Misses` row source (the query layer's type check keeps
/// it off the store).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum GroupBy {
    /// One row per node.
    Node,
    /// One row per shard (node-level series, which have no shard, are
    /// excluded).
    Shard,
    /// One row per fidelity split.
    Degraded,
    /// One row per attributed miss cause (`Misses` source only).
    Cause,
}

impl fmt::Display for GroupBy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            GroupBy::Node => "node",
            GroupBy::Shard => "shard",
            GroupBy::Degraded => "fidelity",
            GroupBy::Cause => "cause",
        })
    }
}

/// The key of one row in a grouped aggregate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum GroupKey {
    /// Rows grouped per node.
    Node(u16),
    /// Rows grouped per shard.
    Shard(u16),
    /// Rows grouped per fidelity split.
    Degraded(bool),
    /// Rows grouped per miss cause.
    Cause(MissCause),
}

impl fmt::Display for GroupKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GroupKey::Node(n) => write!(f, "node{n}"),
            GroupKey::Shard(s) => write!(f, "shard{s}"),
            GroupKey::Degraded(true) => write!(f, "degraded"),
            GroupKey::Degraded(false) => write!(f, "full"),
            GroupKey::Cause(c) => write!(f, "{c}"),
        }
    }
}

/// An aggregate's answer plus its exact error accounting.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AggResult {
    /// The aggregate value.
    pub value: f64,
    /// Worst relative model bound (percent) among contributing segments;
    /// `0` when the answer came only from raw segments (or is a count).
    pub error_pct: f64,
    /// Ticks the aggregate ranged over.
    pub points: u64,
    /// Segments consulted.
    pub segments: usize,
}

/// Per-series bookkeeping: the segments in tick order.
#[derive(Debug, Clone, Default)]
struct Series {
    segments: Vec<Segment>,
    points: u64,
}

/// The central store of model-compressed telemetry for one fleet run.
#[derive(Debug, Clone)]
pub struct TelemetryStore {
    origin: TimePoint,
    interval: TimeDelta,
    series: BTreeMap<SeriesKey, Series>,
}

impl TelemetryStore {
    /// An empty store on the tick schedule `origin + k · interval`.
    ///
    /// # Panics
    /// When `interval` is not strictly positive.
    pub fn new(origin: TimePoint, interval: TimeDelta) -> TelemetryStore {
        assert!(
            !interval.is_zero() && !interval.is_negative(),
            "telemetry tick interval must be positive"
        );
        TelemetryStore {
            origin,
            interval,
            series: BTreeMap::new(),
        }
    }

    /// The instant of tick `k`.
    pub fn tick_time(&self, tick: u32) -> TimePoint {
        self.origin + self.interval * Rational::from(i64::from(tick))
    }

    /// The tick schedule's origin.
    pub fn origin(&self) -> TimePoint {
        self.origin
    }

    /// The tick interval.
    pub fn interval(&self) -> TimeDelta {
        self.interval
    }

    /// Appends `segment` to `key`'s series.
    ///
    /// # Panics
    /// When the segment does not continue the series exactly where its
    /// last segment ended — shipped segments must tile the tick axis.
    pub fn ingest(&mut self, key: SeriesKey, segment: Segment) {
        let series = self.series.entry(key).or_default();
        let expected = series.segments.last().map_or(0, Segment::end_tick);
        assert_eq!(
            segment.start_tick, expected,
            "series {key}: segments must tile the tick axis (got start {}, expected {expected})",
            segment.start_tick
        );
        series.points += u64::from(segment.count);
        series.segments.push(segment);
    }

    /// Number of distinct series.
    pub fn series_count(&self) -> usize {
        self.series.len()
    }

    /// Total stored segments.
    pub fn segment_count(&self) -> usize {
        self.series.values().map(|s| s.segments.len()).sum()
    }

    /// Total ticks covered across all series.
    pub fn point_count(&self) -> u64 {
        self.series.values().map(|s| s.points).sum()
    }

    /// Every series key, in key order.
    pub fn keys(&self) -> impl Iterator<Item = &SeriesKey> {
        self.series.keys()
    }

    /// The segments of one series, in tick order.
    pub fn segments(&self, key: &SeriesKey) -> &[Segment] {
        self.series.get(key).map_or(&[], |s| s.segments.as_slice())
    }

    /// Encoded bytes of everything stored: per-series framing (16 bytes for
    /// the key + tick schedule reference) plus each segment's encoding.
    pub fn compressed_bytes(&self) -> u64 {
        self.series
            .values()
            .map(|s| 16 + s.segments.iter().map(Segment::encoded_bytes).sum::<u64>())
            .sum()
    }

    /// Bytes the same ticks would occupy uncompressed (8 per sample).
    pub fn raw_bytes(&self) -> u64 {
        self.point_count() * RAW_SAMPLE_BYTES
    }

    /// `raw_bytes / compressed_bytes` — how much smaller the model
    /// representation is.
    pub fn compression_ratio(&self) -> f64 {
        let compressed = self.compressed_bytes();
        if compressed == 0 {
            return 1.0;
        }
        self.raw_bytes() as f64 / compressed as f64
    }

    /// Evaluates `agg` over every tick selected by `sel`, directly on the
    /// stored models. Returns `None` when no tick matches.
    pub fn aggregate(&self, sel: &Selector, agg: Aggregate) -> Option<AggResult> {
        let mut acc = AggAcc::new(agg);
        for (key, series) in &self.series {
            if !sel.matches(key) {
                continue;
            }
            for seg in &series.segments {
                if let Some((lo, hi)) = self.window_offsets(seg, sel) {
                    acc.add_segment(seg, lo, hi);
                }
            }
        }
        acc.finish(agg)
    }

    /// Evaluates `agg` once per distinct value of `group` among the series
    /// `sel` matches — one [`AggResult`] row per group, in key order.
    ///
    /// Each matching segment is visited exactly once and contributes to
    /// exactly one group's accumulator; in particular, when the selector
    /// already pins the grouped field to one value (e.g. `on_node(2)`
    /// grouped by node) the result is a single row identical to the
    /// ungrouped [`aggregate`](TelemetryStore::aggregate) — not the same
    /// work repeated per candidate group.
    ///
    /// Grouping by [`GroupBy::Shard`] excludes node-level series (no shard
    /// in their key); [`GroupBy::Cause`] is not a series field and yields
    /// no rows (the query layer's type check routes it to the `Misses`
    /// source instead).
    pub fn aggregate_grouped(
        &self,
        sel: &Selector,
        agg: Aggregate,
        group: GroupBy,
    ) -> Vec<(GroupKey, AggResult)> {
        let mut groups: BTreeMap<GroupKey, AggAcc> = BTreeMap::new();
        for (key, series) in &self.series {
            if !sel.matches(key) {
                continue;
            }
            let gk = match group {
                GroupBy::Node => GroupKey::Node(key.node),
                GroupBy::Shard => match key.shard {
                    Some(s) => GroupKey::Shard(s),
                    None => continue,
                },
                GroupBy::Degraded => GroupKey::Degraded(key.degraded),
                GroupBy::Cause => continue,
            };
            let acc = groups.entry(gk).or_insert_with(|| AggAcc::new(agg));
            for seg in &series.segments {
                if let Some((lo, hi)) = self.window_offsets(seg, sel) {
                    acc.add_segment(seg, lo, hi);
                }
            }
        }
        groups
            .into_iter()
            .filter_map(|(gk, acc)| acc.finish(agg).map(|res| (gk, res)))
            .collect()
    }

    /// Reconstructs one series' per-tick values from its models, in tick
    /// order starting at the series' first stored tick. Lossless for raw
    /// segments; within each segment's `error_pct` otherwise. Empty when
    /// the key is unknown.
    pub fn reconstruct(&self, key: &SeriesKey) -> Vec<f64> {
        let Some(series) = self.series.get(key) else {
            return Vec::new();
        };
        let mut out = Vec::with_capacity(series.points as usize);
        for seg in &series.segments {
            for i in 0..seg.count {
                out.push(seg.value_at(i));
            }
        }
        out
    }

    /// The inclusive offset range of `seg` that falls inside `sel`'s time
    /// window, or `None` when they do not intersect.
    fn window_offsets(&self, seg: &Segment, sel: &Selector) -> Option<(u32, u32)> {
        let mut lo = i64::from(seg.start_tick);
        let mut hi = i64::from(seg.end_tick()) - 1;
        if let Some(from) = sel.from {
            // First tick at or after `from`: ceil((from - origin) / interval).
            let ticks = ((from - self.origin).seconds() / self.interval.seconds()).ceil();
            lo = lo.max(ticks);
        }
        if let Some(to) = sel.to {
            let ticks = ((to - self.origin).seconds() / self.interval.seconds()).floor();
            hi = hi.min(ticks);
        }
        if lo > hi {
            return None;
        }
        Some((
            (lo - i64::from(seg.start_tick)) as u32,
            (hi - i64::from(seg.start_tick)) as u32,
        ))
    }
}

/// One aggregate in progress: the running extrema/sum plus the weighted
/// value set a quantile needs, fed one segment window at a time. Shared by
/// the plain and grouped aggregate paths so both make exactly one pass.
#[derive(Debug)]
struct AggAcc {
    points: u64,
    segments: usize,
    error_pct: f64,
    min: f64,
    max: f64,
    sum: f64,
    /// (value, weight) pairs for the quantile; weight-compressed for
    /// constant segments, enumerated for linear/raw ones.
    weighted: Vec<(f64, u64)>,
    want_quantile: bool,
}

impl AggAcc {
    fn new(agg: Aggregate) -> AggAcc {
        AggAcc {
            points: 0,
            segments: 0,
            error_pct: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            sum: 0.0,
            weighted: Vec::new(),
            want_quantile: matches!(agg, Aggregate::Quantile(_)),
        }
    }

    fn add_segment(&mut self, seg: &Segment, lo: u32, hi: u32) {
        let n = u64::from(hi - lo + 1);
        self.points += n;
        self.segments += 1;
        self.error_pct = self.error_pct.max(seg.error_pct);
        self.min = self.min.min(seg.min_over(lo, hi));
        self.max = self.max.max(seg.max_over(lo, hi));
        self.sum += seg.sum_over(lo, hi);
        if self.want_quantile {
            match &seg.model {
                SegmentModel::Constant { value } => self.weighted.push((*value, n)),
                _ => self
                    .weighted
                    .extend((lo..=hi).map(|i| (seg.value_at(i), 1))),
            }
        }
    }

    fn finish(mut self, agg: Aggregate) -> Option<AggResult> {
        if self.points == 0 {
            return None;
        }
        let value = match agg {
            Aggregate::Count => {
                self.error_pct = 0.0;
                self.points as f64
            }
            Aggregate::Min => self.min,
            Aggregate::Max => self.max,
            Aggregate::Mean => self.sum / self.points as f64,
            Aggregate::Quantile(p) => weighted_quantile(&mut self.weighted, p, self.points),
        };
        Some(AggResult {
            value,
            error_pct: self.error_pct,
            points: self.points,
            segments: self.segments,
        })
    }
}

/// Nearest-rank percentile over `(value, weight)` pairs covering `total`
/// ticks: `p = 0` is the minimum, `p = 100` the maximum, mirroring
/// `Histogram::quantile`'s pinned edges.
fn weighted_quantile(weighted: &mut [(f64, u64)], p: u8, total: u64) -> f64 {
    let p = u64::from(p.min(100));
    weighted.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("telemetry samples are finite"));
    let rank = (p * total).div_ceil(100).max(1);
    let mut seen = 0u64;
    for &(value, weight) in weighted.iter() {
        seen += weight;
        if seen >= rank {
            return value;
        }
    }
    weighted.last().map_or(0.0, |&(v, _)| v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ErrorBound;
    use crate::sink::SeriesSink;

    fn key(node: u16, shard: Option<u16>, metric: Metric) -> SeriesKey {
        SeriesKey {
            node,
            shard,
            metric,
            degraded: false,
        }
    }

    fn store_series(store: &mut TelemetryStore, k: SeriesKey, series: &[f64], bound: f64) {
        let mut sink = SeriesSink::new(ErrorBound::percent(bound));
        for &v in series {
            sink.append(v);
        }
        sink.flush();
        for seg in sink.drain() {
            store.ingest(k, seg);
        }
    }

    fn ms(v: i64) -> TimeDelta {
        TimeDelta::from_millis(v)
    }

    #[test]
    fn aggregates_on_models_match_raw_exactly_for_raw_series() {
        let mut store = TelemetryStore::new(TimePoint::ZERO, ms(50));
        let k = key(0, Some(0), Metric::LatenessUs);
        let series = [5.0, 900.0, 2.0, 770.0, 13.0, 1.0, 400.0];
        store_series(&mut store, k, &series, 1.0);
        let sel = Selector::metric(Metric::LatenessUs);
        let agg = |a| store.aggregate(&sel, a).expect("non-empty");
        assert_eq!(agg(Aggregate::Count).value, 7.0);
        assert_eq!(agg(Aggregate::Min).value, 1.0);
        assert_eq!(agg(Aggregate::Max).value, 900.0);
        let mean: f64 = series.iter().sum::<f64>() / series.len() as f64;
        assert!((agg(Aggregate::Mean).value - mean).abs() < 1e-9);
        assert_eq!(agg(Aggregate::Quantile(0)).value, 1.0);
        assert_eq!(agg(Aggregate::Quantile(100)).value, 900.0);
        assert_eq!(agg(Aggregate::Quantile(50)).value, 13.0);
        // A noisy 7-tick series compresses to raw: error accounting is 0.
        assert_eq!(agg(Aggregate::Mean).error_pct, 0.0);
    }

    #[test]
    fn windowed_aggregate_uses_tick_schedule() {
        let mut store = TelemetryStore::new(TimePoint::ZERO, ms(100));
        let k = key(1, Some(3), Metric::ThroughputBps);
        // Ticks at 0 ms, 100 ms, ... 900 ms with values 0..=9.
        let series: Vec<f64> = (0..10).map(f64::from).collect();
        store_series(&mut store, k, &series, 0.0);
        let sel = Selector::metric(Metric::ThroughputBps)
            .between(TimePoint::ZERO + ms(250), TimePoint::ZERO + ms(700));
        // Ticks 3..=7 → values 3,4,5,6,7.
        let got = store.aggregate(&sel, Aggregate::Mean).expect("window hits");
        assert_eq!(got.points, 5);
        assert_eq!(got.value, 5.0);
        assert_eq!(
            store.aggregate(&sel, Aggregate::Min).expect("window").value,
            3.0
        );
        assert_eq!(
            store.aggregate(&sel, Aggregate::Max).expect("window").value,
            7.0
        );
    }

    #[test]
    fn between_bounds_are_inclusive_at_both_ends() {
        let mut store = TelemetryStore::new(TimePoint::ZERO, ms(100));
        let k = key(0, Some(0), Metric::LatenessUs);
        let series: Vec<f64> = (0..10).map(f64::from).collect();
        store_series(&mut store, k, &series, 0.0);
        // A window landing exactly on ticks 2 and 5 keeps both boundary
        // ticks: `between` is `[from, to]` inclusive.
        let sel = Selector::metric(Metric::LatenessUs)
            .between(TimePoint::ZERO + ms(200), TimePoint::ZERO + ms(500));
        let got = store
            .aggregate(&sel, Aggregate::Count)
            .expect("window hits");
        assert_eq!(got.points, 4, "ticks 2,3,4,5");
        assert_eq!(
            store.aggregate(&sel, Aggregate::Min).expect("window").value,
            2.0
        );
        assert_eq!(
            store.aggregate(&sel, Aggregate::Max).expect("window").value,
            5.0
        );
        // Nudging either bound off-schedule by 1 ms excludes only the
        // boundary tick it crosses.
        let inner = Selector::metric(Metric::LatenessUs)
            .between(TimePoint::ZERO + ms(201), TimePoint::ZERO + ms(499));
        assert_eq!(
            store
                .aggregate(&inner, Aggregate::Count)
                .expect("hits")
                .points,
            2,
            "ticks 3,4"
        );
        // A degenerate window on a single tick instant keeps that tick.
        let point = Selector::metric(Metric::LatenessUs)
            .between(TimePoint::ZERO + ms(700), TimePoint::ZERO + ms(700));
        let got = store.aggregate(&point, Aggregate::Mean).expect("hits");
        assert_eq!(got.points, 1);
        assert_eq!(got.value, 7.0);
    }

    #[test]
    fn grouped_aggregate_rows_per_node() {
        let mut store = TelemetryStore::new(TimePoint::ZERO, ms(50));
        store_series(
            &mut store,
            key(0, Some(0), Metric::LatenessUs),
            &[10.0; 8],
            0.0,
        );
        store_series(
            &mut store,
            key(0, Some(1), Metric::LatenessUs),
            &[30.0; 8],
            0.0,
        );
        store_series(
            &mut store,
            key(2, Some(2), Metric::LatenessUs),
            &[90.0; 8],
            0.0,
        );
        let sel = Selector::metric(Metric::LatenessUs);
        let rows = store.aggregate_grouped(&sel, Aggregate::Mean, GroupBy::Node);
        assert_eq!(rows.len(), 2);
        assert_eq!(
            rows[0],
            (
                GroupKey::Node(0),
                AggResult {
                    value: 20.0,
                    error_pct: 0.0,
                    points: 16,
                    segments: 2
                }
            )
        );
        assert_eq!(rows[1].0, GroupKey::Node(2));
        assert_eq!(rows[1].1.value, 90.0);
        // Grouping by shard gives three rows, in shard order.
        let by_shard = store.aggregate_grouped(&sel, Aggregate::Max, GroupBy::Shard);
        assert_eq!(
            by_shard
                .iter()
                .map(|(k, r)| (*k, r.value))
                .collect::<Vec<_>>(),
            vec![
                (GroupKey::Shard(0), 10.0),
                (GroupKey::Shard(1), 30.0),
                (GroupKey::Shard(2), 90.0),
            ]
        );
    }

    #[test]
    fn grouping_a_pinned_field_returns_a_single_row() {
        let mut store = TelemetryStore::new(TimePoint::ZERO, ms(50));
        store_series(
            &mut store,
            key(0, Some(0), Metric::LatenessUs),
            &[10.0; 8],
            0.0,
        );
        store_series(
            &mut store,
            key(1, Some(1), Metric::LatenessUs),
            &[30.0; 8],
            0.0,
        );
        // The selector already pins node=1; grouping by node must not fan
        // the aggregate back out — one row, identical to the plain
        // aggregate (same points and segments consulted: no duplicated
        // work).
        let sel = Selector::metric(Metric::LatenessUs).on_node(1);
        let rows = store.aggregate_grouped(&sel, Aggregate::Mean, GroupBy::Node);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].0, GroupKey::Node(1));
        let plain = store.aggregate(&sel, Aggregate::Mean).expect("matches");
        assert_eq!(rows[0].1, plain);
        // Same with a pinned fidelity split.
        let split = store.aggregate_grouped(
            &Selector::metric(Metric::LatenessUs).degraded(false),
            Aggregate::Count,
            GroupBy::Degraded,
        );
        assert_eq!(split.len(), 1);
        assert_eq!(split[0].0, GroupKey::Degraded(false));
    }

    #[test]
    fn node_level_series_are_excluded_from_shard_grouping() {
        let mut store = TelemetryStore::new(TimePoint::ZERO, ms(50));
        store_series(
            &mut store,
            key(0, None, Metric::NodeLoadPct),
            &[50.0; 8],
            0.0,
        );
        store_series(
            &mut store,
            key(0, Some(3), Metric::LatenessUs),
            &[10.0; 8],
            0.0,
        );
        let rows = store.aggregate_grouped(&Selector::all(), Aggregate::Count, GroupBy::Shard);
        assert_eq!(rows.len(), 1, "only the shard-scoped series groups");
        assert_eq!(rows[0].0, GroupKey::Shard(3));
        // Grouped by node, both series land on node 0.
        let rows = store.aggregate_grouped(&Selector::all(), Aggregate::Count, GroupBy::Node);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].1.points, 16);
    }

    #[test]
    fn reconstruct_replays_models_in_tick_order() {
        let mut store = TelemetryStore::new(TimePoint::ZERO, ms(50));
        let k = key(0, Some(0), Metric::ThroughputBps);
        let series: Vec<f64> = (0..200).map(|i| f64::from(i % 7) * 100.0).collect();
        store_series(&mut store, k, &series, 0.0);
        // Lossless bound: reconstruction is the original series.
        assert_eq!(store.reconstruct(&k), series);
        assert!(store
            .reconstruct(&key(9, None, Metric::NodeLoadPct))
            .is_empty());
    }

    #[test]
    fn selector_separates_series() {
        let mut store = TelemetryStore::new(TimePoint::ZERO, ms(50));
        store_series(
            &mut store,
            key(0, Some(0), Metric::CacheHitPct),
            &[10.0; 20],
            1.0,
        );
        store_series(
            &mut store,
            key(1, Some(1), Metric::CacheHitPct),
            &[90.0; 20],
            1.0,
        );
        let on = |sel: Selector| store.aggregate(&sel, Aggregate::Mean).expect("hit").value;
        assert_eq!(on(Selector::metric(Metric::CacheHitPct).on_node(0)), 10.0);
        assert_eq!(on(Selector::metric(Metric::CacheHitPct).on_node(1)), 90.0);
        assert_eq!(on(Selector::metric(Metric::CacheHitPct)), 50.0);
        assert!(store
            .aggregate(
                &Selector::metric(Metric::CacheHitPct).on_node(7),
                Aggregate::Mean
            )
            .is_none());
    }

    #[test]
    fn error_accounting_reports_worst_contributing_bound() {
        let mut store = TelemetryStore::new(TimePoint::ZERO, ms(50));
        let k = key(0, Some(0), Metric::LatenessUs);
        store_series(&mut store, k, &[500.0; 30], 2.5);
        let got = store
            .aggregate(&Selector::metric(Metric::LatenessUs), Aggregate::Mean)
            .expect("hit");
        assert_eq!(got.error_pct, 2.5);
        assert!((got.value - 500.0).abs() <= 0.025 * 500.0);
        // Count is always exact.
        let count = store
            .aggregate(&Selector::metric(Metric::LatenessUs), Aggregate::Count)
            .expect("hit");
        assert_eq!(count.error_pct, 0.0);
    }

    #[test]
    fn compression_ratio_counts_framing() {
        let mut store = TelemetryStore::new(TimePoint::ZERO, ms(50));
        let k = key(0, Some(0), Metric::LatenessUs);
        store_series(&mut store, k, &[0.0; 100], 1.0);
        // 100 ticks → 800 raw bytes; one constant segment (16) + series
        // framing (16) = 32 bytes → 25×.
        assert_eq!(store.raw_bytes(), 800);
        assert_eq!(store.compressed_bytes(), 32);
        assert!((store.compression_ratio() - 25.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "tile")]
    fn ingest_rejects_gaps() {
        let mut store = TelemetryStore::new(TimePoint::ZERO, ms(50));
        let k = key(0, None, Metric::NodeLoadPct);
        store.ingest(
            k,
            Segment {
                start_tick: 5,
                count: 1,
                error_pct: 0.0,
                model: SegmentModel::Raw { values: vec![1.0] },
            },
        );
    }

    #[test]
    fn series_key_renders_stably() {
        let k = SeriesKey {
            node: 2,
            shard: Some(5),
            metric: Metric::LatenessUs,
            degraded: true,
        };
        assert_eq!(k.to_string(), "node2.shard5.lateness_us.degraded");
        let n = key(3, None, Metric::NodeLoadPct);
        assert_eq!(n.to_string(), "node3.node_load_pct");
    }
}
