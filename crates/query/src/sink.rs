//! The streaming compressor: per-tick samples in, verified segments out.
//!
//! A [`SeriesSink`] consumes one telemetry series sample-by-sample and
//! greedily extends the current run while a constant (PMC-Mean) or linear
//! (Swing) model still reproduces *every* buffered sample within the bound.
//! When a sample breaks both models the run is closed:
//!
//! * runs of at least [`MIN_MODEL_TICKS`] emit as a model segment;
//! * shorter runs are not worth a model's framing overhead and join a
//!   pending *raw run*, emitted verbatim (and losslessly) as one
//!   [`SegmentModel::Raw`] segment once a model run closes after it or the
//!   raw run itself reaches [`MAX_SEGMENT_TICKS`].
//!
//! The sink never reorders: drained segments tile the tick axis exactly —
//! contiguous, non-overlapping, in tick order — which the store asserts on
//! ingest.

use crate::model::{fit_constant, fit_linear, ErrorBound, Segment, SegmentModel};

/// Longest run a single segment may cover, bounding both fitting cost
/// (refits scan the buffered run) and the work a model-native quantile does
/// per linear segment.
pub const MAX_SEGMENT_TICKS: usize = 128;

/// Shortest run worth a model segment. A 2-tick "line" costs 24 bytes
/// encoded versus 16 raw — below this length the samples ride the raw run
/// instead.
pub const MIN_MODEL_TICKS: usize = 4;

/// The best model currently covering the whole buffered run.
#[derive(Debug, Clone, Copy)]
enum Fit {
    Constant { value: f64 },
    Linear { first: f64, slope: f64 },
}

/// A streaming model-compressor for one telemetry series.
///
/// Feed samples with [`append`](SeriesSink::append) (one per tick, in tick
/// order), close the tail with [`flush`](SeriesSink::flush), and collect
/// finished segments with [`drain`](SeriesSink::drain) at any point — e.g.
/// each sampling tick, to ship them over a node's link.
#[derive(Debug)]
pub struct SeriesSink {
    bound: ErrorBound,
    /// Tick index the next appended sample will occupy.
    next_tick: u32,
    /// The open model run (always entirely covered by `fit` when non-empty).
    buf: Vec<f64>,
    buf_start: u32,
    fit: Option<Fit>,
    /// Samples awaiting a raw segment, immediately preceding `buf`.
    raw: Vec<f64>,
    raw_start: u32,
    /// Finished segments not yet drained.
    done: Vec<Segment>,
}

impl SeriesSink {
    /// A sink compressing under `bound`.
    pub fn new(bound: ErrorBound) -> SeriesSink {
        SeriesSink {
            bound,
            next_tick: 0,
            buf: Vec::new(),
            buf_start: 0,
            fit: None,
            raw: Vec::new(),
            raw_start: 0,
            done: Vec::new(),
        }
    }

    /// The configured error bound.
    pub fn bound(&self) -> ErrorBound {
        self.bound
    }

    /// Total samples appended so far (== the next sample's tick index).
    pub fn ticks(&self) -> u32 {
        self.next_tick
    }

    /// Appends the sample for the next tick.
    pub fn append(&mut self, v: f64) {
        let v = if v.is_finite() { v } else { 0.0 };
        if self.buf.is_empty() {
            self.buf_start = self.next_tick;
        }
        self.buf.push(v);
        self.next_tick += 1;

        if let Some(fit) = self.refit() {
            self.fit = Some(fit);
            if self.buf.len() >= MAX_SEGMENT_TICKS {
                self.close_model_run();
            }
            return;
        }

        // `v` broke both models. The run *without* it (buf[..len-1]) was
        // still covered by `self.fit`, so close that run and restart from
        // `v` alone.
        let broke = self.buf.pop().expect("just pushed");
        self.close_model_run();
        self.buf_start = self.next_tick - 1;
        self.buf.push(broke);
        self.fit = None;
    }

    /// Closes the open run (model or raw) so every appended sample is
    /// represented by a finished segment. Call once sampling stops; the
    /// sink stays usable for further ticks afterwards.
    pub fn flush(&mut self) {
        self.close_model_run();
        self.flush_raw();
    }

    /// Removes and returns every finished segment, in tick order.
    pub fn drain(&mut self) -> Vec<Segment> {
        std::mem::take(&mut self.done)
    }

    /// Finished segments waiting to be drained.
    pub fn pending(&self) -> usize {
        self.done.len()
    }

    /// Best verified model over the whole buffer, constant preferred (it
    /// encodes smaller).
    fn refit(&self) -> Option<Fit> {
        if let Some(value) = fit_constant(&self.buf, &self.bound) {
            return Some(Fit::Constant { value });
        }
        fit_linear(&self.buf, &self.bound).map(|(first, slope)| Fit::Linear { first, slope })
    }

    fn close_model_run(&mut self) {
        if self.buf.is_empty() {
            return;
        }
        if self.buf.len() >= MIN_MODEL_TICKS {
            let model = match self.fit.expect("non-empty run always has a fit") {
                Fit::Constant { value } => SegmentModel::Constant { value },
                Fit::Linear { first, slope } => SegmentModel::Linear { first, slope },
            };
            // The raw run precedes this run on the tick axis: emit it first.
            self.flush_raw();
            self.done.push(Segment {
                start_tick: self.buf_start,
                count: self.buf.len() as u32,
                error_pct: self.bound.as_percent(),
                model,
            });
            self.buf.clear();
        } else {
            // Too short to amortise a model header — move onto the raw run.
            if self.raw.is_empty() {
                self.raw_start = self.buf_start;
            }
            self.raw.append(&mut self.buf);
            while self.raw.len() >= MAX_SEGMENT_TICKS {
                let rest = self.raw.split_off(MAX_SEGMENT_TICKS);
                let head = std::mem::replace(&mut self.raw, rest);
                let start = self.raw_start;
                self.raw_start = start + head.len() as u32;
                self.emit_raw(start, head);
            }
        }
        self.fit = None;
    }

    fn flush_raw(&mut self) {
        if self.raw.is_empty() {
            return;
        }
        let values = std::mem::take(&mut self.raw);
        let start = self.raw_start;
        self.emit_raw(start, values);
    }

    fn emit_raw(&mut self, start_tick: u32, values: Vec<f64>) {
        self.done.push(Segment {
            start_tick,
            count: values.len() as u32,
            error_pct: 0.0,
            model: SegmentModel::Raw { values },
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Compresses a whole series and returns the segments tiling it.
    fn compress(series: &[f64], bound_pct: f64) -> Vec<Segment> {
        let mut sink = SeriesSink::new(ErrorBound::percent(bound_pct));
        for &v in series {
            sink.append(v);
        }
        sink.flush();
        sink.drain()
    }

    fn reconstruct(segments: &[Segment]) -> Vec<f64> {
        segments.iter().flat_map(|s| s.values()).collect()
    }

    #[test]
    fn constant_run_collapses_to_one_segment() {
        let series = vec![42.0; 100];
        let segs = compress(&series, 1.0);
        assert_eq!(segs.len(), 1);
        assert!(matches!(segs[0].model, SegmentModel::Constant { value } if value == 42.0));
        assert_eq!(segs[0].count, 100);
        // 100 ticks at 8 bytes raw vs one 16-byte segment: 50×.
        assert_eq!(segs[0].encoded_bytes(), 16);
    }

    #[test]
    fn ramp_collapses_to_linear_segment() {
        let series: Vec<f64> = (0..80).map(|i| 1000.0 + 7.5 * i as f64).collect();
        let segs = compress(&series, 1.0);
        assert_eq!(segs.len(), 1);
        assert!(matches!(segs[0].model, SegmentModel::Linear { .. }));
        for (i, (&orig, rec)) in series.iter().zip(reconstruct(&segs)).enumerate() {
            assert!(
                (rec - orig).abs() <= 0.01 * orig.abs(),
                "tick {i}: {rec} vs {orig}"
            );
        }
    }

    #[test]
    fn noise_falls_back_to_raw_losslessly() {
        // Alternating extremes: no 4-tick run fits either model at 1%.
        let series: Vec<f64> = (0..20)
            .map(|i| if i % 2 == 0 { 10.0 } else { 1000.0 })
            .collect();
        let segs = compress(&series, 1.0);
        assert!(segs
            .iter()
            .all(|s| matches!(s.model, SegmentModel::Raw { .. })));
        assert_eq!(reconstruct(&segs), series);
    }

    #[test]
    fn segments_tile_the_tick_axis() {
        let series: Vec<f64> = (0..500)
            .map(|i| match i {
                0..=99 => 5.0,
                100..=199 => 5.0 + (i - 99) as f64,
                200 => 9999.0,
                _ => 3.0,
            })
            .collect();
        let segs = compress(&series, 1.0);
        let mut next = 0u32;
        for s in &segs {
            assert_eq!(s.start_tick, next, "gap or overlap at tick {next}");
            next = s.end_tick();
        }
        assert_eq!(next as usize, series.len());
    }

    #[test]
    fn long_runs_split_at_max_segment_ticks() {
        let series = vec![1.0; MAX_SEGMENT_TICKS * 2 + 10];
        let segs = compress(&series, 1.0);
        assert!(segs.iter().all(|s| (s.count as usize) <= MAX_SEGMENT_TICKS));
        assert_eq!(
            segs.iter().map(|s| s.count as usize).sum::<usize>(),
            series.len()
        );
    }

    #[test]
    fn drain_mid_stream_keeps_tail_open() {
        let mut sink = SeriesSink::new(ErrorBound::percent(1.0));
        for _ in 0..MAX_SEGMENT_TICKS + 3 {
            sink.append(7.0);
        }
        let first = sink.drain();
        assert_eq!(first.len(), 1); // the full 128-tick segment
        assert!(sink.drain().is_empty());
        sink.flush();
        let rest = sink.drain();
        assert_eq!(rest.iter().map(|s| s.count).sum::<u32>(), 3);
    }

    #[test]
    fn lossless_bound_only_emits_exact_segments() {
        let series = vec![1.0, 1.0, 1.0, 1.0, 2.0, 3.0, 4.0, 5.0, 1.5, 9.0];
        let segs = compress(&series, 0.0);
        assert_eq!(reconstruct(&segs), series);
    }
}
