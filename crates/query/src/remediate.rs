//! The remediation plane: alerts become guarded, reversible fleet actions.
//!
//! A [`Remediator`] rides the telemetry tick next to the
//! [`HealthMonitor`]: when an armed [`SloRule`]'s alert opens (or stays
//! open past a cooldown), the [`Playbook`] entry for that rule fires a
//! typed [`Action`] against the live fleet — rebalance a hot shard, probe
//! and evacuate unhealthy nodes, derate admission and force active
//! sessions onto their base layer (the paper's Def. 6 rule, applied by the
//! system to itself), or grow the segment caches. Safety is the point:
//!
//! * **Budgets and cooldowns** — each entry holds a token bucket in
//!   simulated ticks; a dry bucket means the action is `suppressed`, never
//!   applied, and a counter proves it.
//! * **Verification and rollback** — every applied action records the burn
//!   rate at apply time and a rollback handle; after the entry's
//!   verification window the Remediator re-reads the rule's burn and rolls
//!   the action back (restore placement / derate / cache budget) if the
//!   SLO got *worse*.
//! * **Freeze switch** — N rollbacks within a window freeze the whole
//!   plane (a flapping guard); every later attempt is `suppressed` until
//!   an operator looks.
//! * **Determinism** — everything runs on integer ticks over the seeded
//!   fleet, so a same-seed storm produces a byte-identical
//!   [action log](Remediator::render_log) and incident reports.
//!
//! Every decision is observable: a [`Category::Remediation`] span per
//! attempted action (rule/action attrs at apply, the verdict at close),
//! `remediation.actions.{applied,rolled_back,suppressed,noop}` counters on
//! the fleet, and the action lines stamped into each closed incident's
//! [`IncidentReport`](crate::IncidentReport) timeline — a closed incident
//! reads "what broke → what the system did → whether it worked".

use std::fmt;

use tbm_blob::BlobStore;
use tbm_obs::{AttrValue, Category, SpanId};
use tbm_serve::{Fleet, ShardMove};
use tbm_time::TimePoint;

use crate::health::{AlertKind, AlertTransition, HealthMonitor};

/// A typed, reversible fleet action the playbook can fire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// Migrate the hottest shard off the hottest node when cross-node
    /// load skew exceeds `min_skew_pct` ([`Fleet::rebalance_on_skew`]).
    /// Guarded no-op on single-node, balanced, or single-shard-hot
    /// fleets. Rollback: move the shard back.
    RebalanceShards {
        /// Skew floor below which the action refuses to churn placement.
        min_skew_pct: i64,
    },
    /// Probe tripped breakers and migrate shards off nodes that are down
    /// or breaker-open ([`Fleet::evacuate_unhealthy`]). Irreversible by
    /// design: shards are never rolled back onto a node that just failed
    /// (the restore-home path re-homes them when it heals).
    EvacuateNode,
    /// Set the fleet-wide admission derate to `percent` and force active
    /// full-fidelity sessions onto their base layer
    /// ([`Fleet::set_admission_derate`] + [`Fleet::force_degrade_all`]).
    /// Rollback: restore the previous derate and release the forced
    /// sessions.
    DerateAdmission {
        /// Percent of node capacity left to admission (100 = none).
        percent: u8,
    },
    /// Replace every shard's segment-cache budget with `bytes`
    /// ([`Fleet::set_cache_budget_all`]). Rollback: restore the previous
    /// budget.
    GrowCache {
        /// The new per-shard cache budget.
        bytes: u64,
    },
}

impl fmt::Display for Action {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Action::RebalanceShards { min_skew_pct } => {
                write!(f, "rebalance-shards(min-skew {min_skew_pct}%)")
            }
            Action::EvacuateNode => f.write_str("evacuate-node"),
            Action::DerateAdmission { percent } => write!(f, "derate-admission({percent}%)"),
            Action::GrowCache { bytes } => write!(f, "grow-cache({bytes}B)"),
        }
    }
}

/// Why an attempt was suppressed instead of applied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SuppressReason {
    /// The entry's token bucket was dry.
    Budget,
    /// The global freeze switch is on (too many recent rollbacks).
    Frozen,
}

/// What happened when the playbook attempted an action.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// The action changed the fleet and entered its verification window.
    Applied,
    /// A guardrail held the attempt back before it touched the fleet.
    Suppressed(SuppressReason),
    /// The action's own guard found nothing to do (no token consumed).
    Noop,
}

/// The verification verdict an applied action resolves to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// The alert closed — the action (or time) fixed it.
    Improved,
    /// The alert is still open but burn did not worsen; the action stands.
    Held,
    /// Burn got worse; the action was reverted.
    RolledBack,
}

impl Verdict {
    fn as_str(self) -> &'static str {
        match self {
            Verdict::Improved => "improved",
            Verdict::Held => "held",
            Verdict::RolledBack => "rolled back",
        }
    }
}

/// One line of the remediator's deterministic action log.
#[derive(Debug, Clone, PartialEq)]
pub struct ActionRecord {
    /// The tick the attempt happened on.
    pub tick: u32,
    /// The simulated instant of the attempt.
    pub at: TimePoint,
    /// The rule whose alert drove the attempt.
    pub rule: String,
    /// The action attempted.
    pub action: Action,
    /// What happened at attempt time.
    pub outcome: Outcome,
    /// The verification verdict, once resolved (`Applied` only).
    pub verdict: Option<Verdict>,
    /// Deterministic human detail (what moved, what was derated, the burn
    /// at apply).
    pub detail: String,
}

impl ActionRecord {
    /// The record as one deterministic log line.
    pub fn render(&self) -> String {
        let mut out = format!("tick {:>4} [{}] {}", self.tick, self.rule, self.action);
        match self.outcome {
            Outcome::Applied => {
                out.push_str(" applied");
                if !self.detail.is_empty() {
                    out.push_str(&format!(": {}", self.detail));
                }
            }
            Outcome::Suppressed(SuppressReason::Budget) => out.push_str(" suppressed (budget)"),
            Outcome::Suppressed(SuppressReason::Frozen) => out.push_str(" suppressed (frozen)"),
            Outcome::Noop => out.push_str(" no-op (guard held)"),
        }
        if let Some(v) = self.verdict {
            out.push_str(&format!(" → {}", v.as_str()));
        }
        out
    }
}

/// One playbook row: when `rule`'s alert is open, fire `action` under this
/// entry's budget, cooldown, and verification window.
#[derive(Debug, Clone, PartialEq)]
pub struct PlaybookEntry {
    /// The [`SloRule`](crate::SloRule) name that triggers this entry.
    pub rule: String,
    /// The action to fire.
    pub action: Action,
    /// Token-bucket capacity: how many applies the entry may burst.
    pub budget: u32,
    /// Ticks per regained token (0 = never refills).
    pub refill_ticks: u32,
    /// Minimum ticks between attempts while the alert stays open.
    pub cooldown_ticks: u32,
    /// Ticks after an apply before the verification pass judges it.
    pub verify_ticks: u32,
}

/// An ordered list of [`PlaybookEntry`]s — the fleet's remediation policy.
/// Multiple entries may share a rule (an escalation ladder: the first
/// fires on open, the rest as the alert persists past their cooldowns).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Playbook {
    entries: Vec<PlaybookEntry>,
}

impl Playbook {
    /// An empty playbook.
    pub fn new() -> Playbook {
        Playbook::default()
    }

    /// Builder: appends an entry with the default guardrails (budget 4,
    /// refill every 60 ticks, cooldown 8 ticks, verify after 6 ticks).
    pub fn on(mut self, rule: impl Into<String>, action: Action) -> Playbook {
        self.entries.push(PlaybookEntry {
            rule: rule.into(),
            action,
            budget: 4,
            refill_ticks: 60,
            cooldown_ticks: 8,
            verify_ticks: 6,
        });
        self
    }

    /// Builder: sets the last entry's token-bucket capacity.
    ///
    /// # Panics
    /// When the playbook is empty or `budget` is zero.
    pub fn budget(mut self, budget: u32) -> Playbook {
        assert!(budget >= 1, "a zero budget entry could never fire");
        self.last().budget = budget;
        self
    }

    /// Builder: sets the last entry's token refill period in ticks
    /// (0 = the budget never refills).
    ///
    /// # Panics
    /// When the playbook is empty.
    pub fn refill(mut self, ticks: u32) -> Playbook {
        self.last().refill_ticks = ticks;
        self
    }

    /// Builder: sets the last entry's attempt cooldown in ticks.
    ///
    /// # Panics
    /// When the playbook is empty.
    pub fn cooldown(mut self, ticks: u32) -> Playbook {
        self.last().cooldown_ticks = ticks;
        self
    }

    /// Builder: sets the last entry's verification window in ticks.
    ///
    /// # Panics
    /// When the playbook is empty or `ticks` is zero (an action must get
    /// at least one tick to act before being judged).
    pub fn verify(mut self, ticks: u32) -> Playbook {
        assert!(ticks >= 1, "a verification window needs at least one tick");
        self.last().verify_ticks = ticks;
        self
    }

    fn last(&mut self) -> &mut PlaybookEntry {
        self.entries
            .last_mut()
            .expect("builder methods tune the most recent `on` entry")
    }

    /// The entries, in firing order.
    pub fn entries(&self) -> &[PlaybookEntry] {
        &self.entries
    }

    /// The default policy for the built-in rules: rebalance on
    /// `load-skew`; probe/evacuate then derate-and-degrade on
    /// `lateness-p99-full` (the escalation ladder); derate-and-degrade on
    /// `drop-rate`; grow the caches on `cache-hit`.
    pub fn default_rules() -> Playbook {
        Playbook::new()
            .on("load-skew", Action::RebalanceShards { min_skew_pct: 50 })
            .on("lateness-p99-full", Action::EvacuateNode)
            .on("lateness-p99-full", Action::DerateAdmission { percent: 70 })
            .cooldown(12)
            .on("drop-rate", Action::DerateAdmission { percent: 70 })
            .on("cache-hit", Action::GrowCache { bytes: 64 << 20 })
            .budget(2)
    }
}

/// The rollback handle an applied action leaves behind.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Rollback {
    /// Move the shard back where it came from.
    Placement(ShardMove),
    /// Restore the previous admission derate and release forced sessions.
    Derate { prev: u8 },
    /// Restore the previous cache budget.
    Cache { prev: u64 },
    /// Irreversible by design (evacuation).
    None,
}

/// An applied action waiting for its verification tick.
#[derive(Debug, Clone)]
struct Inflight {
    record: usize,
    verify_at_tick: u32,
    burn_at_apply: f64,
    rollback: Rollback,
    span: SpanId,
}

/// Per-entry runtime state: the token bucket and the in-flight action.
#[derive(Debug, Clone)]
struct EntryState {
    tokens: u32,
    last_refill_tick: u32,
    last_attempt_tick: Option<u32>,
    inflight: Option<Inflight>,
}

const M_APPLIED: &str = "remediation.actions.applied";
const M_ROLLED_BACK: &str = "remediation.actions.rolled_back";
const M_SUPPRESSED: &str = "remediation.actions.suppressed";
const M_NOOP: &str = "remediation.actions.noop";

/// The guarded auto-remediation engine. Construct with a [`Playbook`],
/// attach to the sampler via
/// [`FleetTelemetry::with_remediator`](crate::FleetTelemetry::with_remediator),
/// and read the [action log](Remediator::render_log) afterwards.
#[derive(Debug, Clone)]
pub struct Remediator {
    playbook: Playbook,
    states: Vec<EntryState>,
    records: Vec<ActionRecord>,
    freeze_threshold: u32,
    freeze_window_ticks: u32,
    rollback_ticks: Vec<u32>,
    frozen_at_tick: Option<u32>,
}

impl Remediator {
    /// A remediator running `playbook`, with the freeze switch armed at 3
    /// rollbacks within 120 ticks.
    pub fn new(playbook: Playbook) -> Remediator {
        let states = playbook
            .entries
            .iter()
            .map(|e| EntryState {
                tokens: e.budget,
                last_refill_tick: 0,
                last_attempt_tick: None,
                inflight: None,
            })
            .collect();
        Remediator {
            playbook,
            states,
            records: Vec::new(),
            freeze_threshold: 3,
            freeze_window_ticks: 120,
            rollback_ticks: Vec::new(),
            frozen_at_tick: None,
        }
    }

    /// Builder: freeze the whole plane after `rollbacks` rollbacks within
    /// `window_ticks` ticks.
    ///
    /// # Panics
    /// When `rollbacks` is zero.
    pub fn freeze_after(mut self, rollbacks: u32, window_ticks: u32) -> Remediator {
        assert!(rollbacks >= 1, "a zero freeze threshold is always frozen");
        self.freeze_threshold = rollbacks;
        self.freeze_window_ticks = window_ticks;
        self
    }

    /// The playbook driving this remediator.
    pub fn playbook(&self) -> &Playbook {
        &self.playbook
    }

    /// Whether the freeze switch has tripped (operator attention needed;
    /// it never auto-clears within a run).
    pub fn frozen(&self) -> bool {
        self.frozen_at_tick.is_some()
    }

    /// Every attempt so far, in decision order.
    pub fn records(&self) -> &[ActionRecord] {
        &self.records
    }

    /// The whole action log as deterministic text, one line per attempt —
    /// byte-identical across same-seed runs.
    pub fn render_log(&self) -> String {
        let mut out = String::new();
        for r in &self.records {
            out.push_str(&r.render());
            out.push('\n');
        }
        if let Some(t) = self.frozen_at_tick {
            out.push_str(&format!(
                "frozen at tick {t} ({} rollbacks within {} ticks)\n",
                self.freeze_threshold, self.freeze_window_ticks
            ));
        }
        out
    }

    /// Rendered lines for every attempt against `rule` between
    /// `opened_tick` and `closed_tick` inclusive — what gets stamped into
    /// that incident's report timeline.
    pub fn actions_for(&self, rule: &str, opened_tick: u32, closed_tick: u32) -> Vec<String> {
        self.records
            .iter()
            .filter(|r| r.rule == rule && r.tick >= opened_tick && r.tick <= closed_tick)
            .map(ActionRecord::render)
            .collect()
    }

    /// One remediation pass at `tick`/`at`, after the monitor has observed
    /// the tick's samples: refill token buckets, verify due in-flight
    /// actions (rolling back the ones that made burn worse), then attempt
    /// the playbook entries whose alert is open and cooldown has elapsed.
    pub fn on_tick<S: BlobStore>(
        &mut self,
        fleet: &mut Fleet<S>,
        monitor: &HealthMonitor,
        transitions: &[AlertTransition],
        tick: u32,
        at: TimePoint,
    ) {
        let tracer = fleet.tracer().clone();
        // 1. Refill: one token per elapsed refill period, capped at the
        // budget (integer arithmetic — no drift, no float state).
        for (entry, st) in self.playbook.entries.iter().zip(&mut self.states) {
            if entry.refill_ticks == 0 || st.tokens >= entry.budget {
                st.last_refill_tick = tick;
                continue;
            }
            let gained = (tick - st.last_refill_tick) / entry.refill_ticks;
            if gained > 0 {
                st.tokens = (st.tokens + gained).min(entry.budget);
                st.last_refill_tick += gained * entry.refill_ticks;
            }
        }

        // 2. Verify due in-flight actions. An action resolves early (as
        // `improved`) the moment its alert closes; otherwise it waits for
        // its verification tick and is judged on the burn delta.
        for i in 0..self.playbook.entries.len() {
            let rule = self.playbook.entries[i].rule.clone();
            let Some(inflight) = self.states[i].inflight.clone() else {
                continue;
            };
            let closed = !monitor.is_open(&rule)
                || transitions
                    .iter()
                    .any(|t| t.rule == rule && t.kind == AlertKind::Closed);
            if !closed && tick < inflight.verify_at_tick {
                continue;
            }
            let burn_now = monitor
                .burns(&rule)
                .map_or(0.0, |(fast, slow)| fast.max(slow));
            let verdict = if closed {
                Verdict::Improved
            } else if burn_now > inflight.burn_at_apply && inflight.rollback != Rollback::None {
                self.apply_rollback(fleet, &inflight.rollback, at);
                fleet.inc_metric(M_ROLLED_BACK, 1);
                self.rollback_ticks.push(tick);
                Verdict::RolledBack
            } else {
                Verdict::Held
            };
            self.records[inflight.record].verdict = Some(verdict);
            tracer.attr(
                inflight.span,
                "verdict",
                AttrValue::Text(verdict.as_str().to_string()),
            );
            tracer.attr(
                inflight.span,
                "burn_at_verify_milli",
                AttrValue::U64((burn_now * 1000.0).round() as u64),
            );
            tracer.end_span(inflight.span, at);
            self.states[i].inflight = None;

            // Flapping guard: too many rollbacks inside the window freeze
            // the plane for the rest of the run.
            if verdict == Verdict::RolledBack && self.frozen_at_tick.is_none() {
                let window_start = tick.saturating_sub(self.freeze_window_ticks);
                let recent = self
                    .rollback_ticks
                    .iter()
                    .filter(|&&t| t >= window_start)
                    .count() as u32;
                if recent >= self.freeze_threshold {
                    self.frozen_at_tick = Some(tick);
                    tracer.event(
                        "remediation.freeze",
                        Category::Remediation,
                        at,
                        SpanId::NONE,
                        None,
                        vec![
                            ("tick", u64::from(tick).into()),
                            ("rollbacks", u64::from(recent).into()),
                        ],
                    );
                }
            }
        }

        // 3. Attempt entries whose alert is open, in playbook order. One
        // in-flight action per entry; cooldown between attempts.
        for i in 0..self.playbook.entries.len() {
            let entry = self.playbook.entries[i].clone();
            if self.states[i].inflight.is_some() || !monitor.is_open(&entry.rule) {
                continue;
            }
            if let Some(last) = self.states[i].last_attempt_tick {
                if tick - last < entry.cooldown_ticks {
                    continue;
                }
            }
            self.states[i].last_attempt_tick = Some(tick);
            if self.frozen_at_tick.is_some() {
                fleet.inc_metric(M_SUPPRESSED, 1);
                self.push_record(
                    tick,
                    at,
                    &entry,
                    Outcome::Suppressed(SuppressReason::Frozen),
                );
                continue;
            }
            if self.states[i].tokens == 0 {
                fleet.inc_metric(M_SUPPRESSED, 1);
                self.push_record(
                    tick,
                    at,
                    &entry,
                    Outcome::Suppressed(SuppressReason::Budget),
                );
                continue;
            }
            let span =
                tracer.begin_span("remediation", Category::Remediation, at, SpanId::NONE, None);
            tracer.attr(span, "rule", AttrValue::Text(entry.rule.clone()));
            tracer.attr(span, "action", AttrValue::Text(entry.action.to_string()));
            match self.apply_action(fleet, &entry.action, at) {
                None => {
                    // The action's own guard held — no token consumed.
                    fleet.inc_metric(M_NOOP, 1);
                    tracer.attr(span, "verdict", AttrValue::Text("noop".to_string()));
                    tracer.end_span(span, at);
                    self.push_record(tick, at, &entry, Outcome::Noop);
                }
                Some((detail, rollback)) => {
                    self.states[i].tokens -= 1;
                    fleet.inc_metric(M_APPLIED, 1);
                    let burn_at_apply = monitor
                        .burns(&entry.rule)
                        .map_or(0.0, |(fast, slow)| fast.max(slow));
                    let record = self.records.len();
                    self.records.push(ActionRecord {
                        tick,
                        at,
                        rule: entry.rule.clone(),
                        action: entry.action,
                        outcome: Outcome::Applied,
                        verdict: None,
                        detail,
                    });
                    self.states[i].inflight = Some(Inflight {
                        record,
                        verify_at_tick: tick + entry.verify_ticks,
                        burn_at_apply,
                        rollback,
                        span,
                    });
                }
            }
        }
    }

    fn push_record(&mut self, tick: u32, at: TimePoint, entry: &PlaybookEntry, outcome: Outcome) {
        self.records.push(ActionRecord {
            tick,
            at,
            rule: entry.rule.clone(),
            action: entry.action,
            outcome,
            verdict: None,
            detail: String::new(),
        });
    }

    /// Applies `action`; `None` means the action's own guard found nothing
    /// to do, `Some((detail, rollback))` that the fleet changed.
    fn apply_action<S: BlobStore>(
        &mut self,
        fleet: &mut Fleet<S>,
        action: &Action,
        at: TimePoint,
    ) -> Option<(String, Rollback)> {
        match *action {
            Action::RebalanceShards { min_skew_pct } => {
                let mv = fleet.rebalance_on_skew(at, min_skew_pct)?;
                Some((format!("moved {mv}"), Rollback::Placement(mv)))
            }
            Action::EvacuateNode => {
                let moves = fleet.evacuate_unhealthy(at);
                if moves.is_empty() {
                    return None;
                }
                let detail = moves
                    .iter()
                    .map(|m| m.to_string())
                    .collect::<Vec<_>>()
                    .join(", ");
                Some((format!("evacuated {detail}"), Rollback::None))
            }
            Action::DerateAdmission { percent } => {
                let prev = fleet.set_admission_derate(percent);
                if prev == percent.clamp(1, 100) {
                    return None;
                }
                let forced = fleet.force_degrade_all(at);
                Some((
                    format!("derated {prev}%→{percent}%, forced {forced} sessions to base layer"),
                    Rollback::Derate { prev },
                ))
            }
            Action::GrowCache { bytes } => {
                let prev = fleet.set_cache_budget_all(bytes);
                if prev == bytes {
                    return None;
                }
                Some((
                    format!("cache budget {prev}B→{bytes}B"),
                    Rollback::Cache { prev },
                ))
            }
        }
    }

    fn apply_rollback<S: BlobStore>(
        &mut self,
        fleet: &mut Fleet<S>,
        rollback: &Rollback,
        at: TimePoint,
    ) {
        match *rollback {
            Rollback::Placement(mv) => {
                fleet.move_shard(mv.shard, mv.from, at, "rollback");
            }
            Rollback::Derate { prev } => {
                fleet.set_admission_derate(prev);
                fleet.release_degrade_all(at);
            }
            Rollback::Cache { prev } => {
                fleet.set_cache_budget_all(prev);
            }
            Rollback::None => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn playbook_builders_tune_the_last_entry() {
        let pb = Playbook::new()
            .on("a", Action::EvacuateNode)
            .on("b", Action::GrowCache { bytes: 1 })
            .budget(7)
            .refill(30)
            .cooldown(2)
            .verify(9);
        assert_eq!(pb.entries()[0].budget, 4, "defaults untouched");
        let b = &pb.entries()[1];
        assert_eq!(
            (b.budget, b.refill_ticks, b.cooldown_ticks, b.verify_ticks),
            (7, 30, 2, 9)
        );
    }

    #[test]
    fn default_playbook_covers_the_builtin_rules() {
        let pb = Playbook::default_rules();
        let rules: Vec<&str> = pb.entries().iter().map(|e| e.rule.as_str()).collect();
        for rule in ["load-skew", "lateness-p99-full", "drop-rate", "cache-hit"] {
            assert!(rules.contains(&rule), "{rule} uncovered");
        }
        // The lateness ladder escalates: evacuate first, derate later.
        let lateness: Vec<&PlaybookEntry> = pb
            .entries()
            .iter()
            .filter(|e| e.rule == "lateness-p99-full")
            .collect();
        assert_eq!(lateness.len(), 2);
        assert_eq!(lateness[0].action, Action::EvacuateNode);
        assert!(matches!(lateness[1].action, Action::DerateAdmission { .. }));
    }

    #[test]
    fn action_records_render_deterministically() {
        let r = ActionRecord {
            tick: 12,
            at: TimePoint::ZERO,
            rule: "load-skew".to_string(),
            action: Action::RebalanceShards { min_skew_pct: 50 },
            outcome: Outcome::Applied,
            verdict: Some(Verdict::RolledBack),
            detail: "moved shard2 node0→node1".to_string(),
        };
        assert_eq!(
            r.render(),
            "tick   12 [load-skew] rebalance-shards(min-skew 50%) applied: moved shard2 node0→node1 → rolled back"
        );
        let s = ActionRecord {
            outcome: Outcome::Suppressed(SuppressReason::Budget),
            verdict: None,
            detail: String::new(),
            ..r
        };
        assert_eq!(
            s.render(),
            "tick   12 [load-skew] rebalance-shards(min-skew 50%) suppressed (budget)"
        );
    }
}
