//! Error-bounded segment models for telemetry series.
//!
//! A telemetry series is a run of `f64` samples taken at a fixed tick
//! interval. Instead of storing every sample, the plane stores *segments*:
//! short runs described by a model that reproduces every sample inside a
//! user-chosen relative error bound (the MiniModelarDB scheme). Three model
//! kinds cover the practical shapes:
//!
//! * [`SegmentModel::Constant`] — the PMC-Mean filter: one value stands in
//!   for the whole run (8 bytes of payload, any length).
//! * [`SegmentModel::Linear`] — the Swing filter: a start value and a
//!   per-tick slope (16 bytes of payload, any length).
//! * [`SegmentModel::Raw`] — the lossless fallback when neither model fits:
//!   the samples verbatim (8 bytes per sample, error zero).
//!
//! Fitting is *verified*: a model is only accepted after every covered
//! sample has been re-checked against the bound with the exact arithmetic
//! the readers use, so "a segment exists" implies "reconstruction is within
//! bound" by construction — the property the proptests pin.

/// A relative error bound in percent, `0.0` (lossless) to `< 100.0`.
///
/// A reconstructed value `approx` is acceptable for a true sample `v` when
/// `|approx - v| <= bound/100 · |v|`. Note the bound is relative to the
/// *sample*: a sample of exactly `0.0` admits only `0.0` back, so idle
/// stretches compress losslessly no matter the bound.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct ErrorBound(f64);

impl ErrorBound {
    /// A lossless (0%) bound: only [`SegmentModel::Raw`] and exact constant
    /// runs will be emitted.
    pub const LOSSLESS: ErrorBound = ErrorBound(0.0);

    /// A bound of `pct` percent.
    ///
    /// # Panics
    /// When `pct` is negative, not finite, or `>= 100`.
    pub fn percent(pct: f64) -> ErrorBound {
        assert!(
            pct.is_finite() && (0.0..100.0).contains(&pct),
            "error bound must be a finite percentage in [0, 100): {pct}"
        );
        ErrorBound(pct)
    }

    /// The bound as a percentage.
    pub fn as_percent(&self) -> f64 {
        self.0
    }

    /// Whether `approx` is an acceptable reconstruction of the true sample
    /// `actual` under this bound.
    pub fn allows(&self, actual: f64, approx: f64) -> bool {
        (approx - actual).abs() <= self.0 / 100.0 * actual.abs()
    }
}

/// The model inside a [`Segment`]: how the covered samples are reproduced.
#[derive(Debug, Clone, PartialEq)]
pub enum SegmentModel {
    /// Every covered tick reconstructs to `value` (PMC-Mean).
    Constant {
        /// The stand-in value (the mid-range of the covered samples).
        value: f64,
    },
    /// Tick `i` of the run reconstructs to `first + slope · i` (Swing).
    Linear {
        /// Reconstruction at the first covered tick.
        first: f64,
        /// Per-tick increment.
        slope: f64,
    },
    /// The covered samples verbatim; reconstruction is exact.
    Raw {
        /// One sample per covered tick.
        values: Vec<f64>,
    },
}

impl SegmentModel {
    /// A short tag for rendering (`const` / `linear` / `raw`).
    pub fn tag(&self) -> &'static str {
        match self {
            SegmentModel::Constant { .. } => "const",
            SegmentModel::Linear { .. } => "linear",
            SegmentModel::Raw { .. } => "raw",
        }
    }
}

/// Fixed per-segment framing cost in bytes: start tick (4), sample count
/// (2), model tag (1), reserved (1). Payload comes on top, per model.
pub const SEGMENT_HEADER_BYTES: u64 = 8;

/// Bytes one raw (uncompressed) sample occupies — the baseline the
/// compression ratio is measured against.
pub const RAW_SAMPLE_BYTES: u64 = 8;

/// One compressed run of a telemetry series: `count` ticks starting at
/// `start_tick`, reproduced by `model` within `error_pct` percent of every
/// original sample.
#[derive(Debug, Clone, PartialEq)]
pub struct Segment {
    /// Index of the first covered tick in the series' tick numbering.
    pub start_tick: u32,
    /// Number of covered ticks (always ≥ 1).
    pub count: u32,
    /// The relative bound (percent) the model was verified against; `0.0`
    /// for raw segments.
    pub error_pct: f64,
    /// The reconstruction model.
    pub model: SegmentModel,
}

impl Segment {
    /// The reconstructed value at offset `i` into the run (`0 <= i < count`).
    ///
    /// # Panics
    /// When `i >= count`.
    pub fn value_at(&self, i: u32) -> f64 {
        assert!(i < self.count, "offset {i} out of segment ({})", self.count);
        match &self.model {
            SegmentModel::Constant { value } => *value,
            SegmentModel::Linear { first, slope } => first + slope * f64::from(i),
            SegmentModel::Raw { values } => values[i as usize],
        }
    }

    /// All reconstructed values of the run, in tick order.
    pub fn values(&self) -> Vec<f64> {
        (0..self.count).map(|i| self.value_at(i)).collect()
    }

    /// The encoded size of this segment in bytes (header + payload).
    pub fn encoded_bytes(&self) -> u64 {
        SEGMENT_HEADER_BYTES
            + match &self.model {
                SegmentModel::Constant { .. } => 8,
                SegmentModel::Linear { .. } => 16,
                SegmentModel::Raw { values } => RAW_SAMPLE_BYTES * values.len() as u64,
            }
    }

    /// First tick index *after* the run.
    pub fn end_tick(&self) -> u32 {
        self.start_tick + self.count
    }

    /// Model-native minimum over offsets `[lo, hi]` (inclusive, relative to
    /// the segment start) — no decompression for constant/linear models.
    pub fn min_over(&self, lo: u32, hi: u32) -> f64 {
        match &self.model {
            SegmentModel::Constant { value } => *value,
            SegmentModel::Linear { .. } => self.value_at(lo).min(self.value_at(hi)),
            SegmentModel::Raw { values } => values[lo as usize..=hi as usize]
                .iter()
                .copied()
                .fold(f64::INFINITY, f64::min),
        }
    }

    /// Model-native maximum over offsets `[lo, hi]` (inclusive).
    pub fn max_over(&self, lo: u32, hi: u32) -> f64 {
        match &self.model {
            SegmentModel::Constant { value } => *value,
            SegmentModel::Linear { .. } => self.value_at(lo).max(self.value_at(hi)),
            SegmentModel::Raw { values } => values[lo as usize..=hi as usize]
                .iter()
                .copied()
                .fold(f64::NEG_INFINITY, f64::max),
        }
    }

    /// Model-native sum over offsets `[lo, hi]` (inclusive): a product for
    /// constant models, the arithmetic-series closed form for linear ones.
    pub fn sum_over(&self, lo: u32, hi: u32) -> f64 {
        let n = f64::from(hi - lo + 1);
        match &self.model {
            SegmentModel::Constant { value } => value * n,
            SegmentModel::Linear { .. } => (self.value_at(lo) + self.value_at(hi)) * n / 2.0,
            SegmentModel::Raw { values } => values[lo as usize..=hi as usize].iter().sum(),
        }
    }
}

/// Verified PMC-Mean fit: the mid-range of `values` as the stand-in,
/// accepted only if every value is within `bound` of it.
pub(crate) fn fit_constant(values: &[f64], bound: &ErrorBound) -> Option<f64> {
    let mut min = f64::INFINITY;
    let mut max = f64::NEG_INFINITY;
    for &v in values {
        min = min.min(v);
        max = max.max(v);
    }
    let candidate = min + (max - min) / 2.0;
    values
        .iter()
        .all(|&v| bound.allows(v, candidate))
        .then_some(candidate)
}

/// Verified Swing fit anchored at the first value: intersects the per-point
/// admissible slope ranges, takes the mid slope, and accepts only if every
/// value re-checks within `bound` under the exact reconstruction formula.
pub(crate) fn fit_linear(values: &[f64], bound: &ErrorBound) -> Option<(f64, f64)> {
    if values.len() < 2 {
        return None;
    }
    let first = values[0];
    let mut lo = f64::NEG_INFINITY;
    let mut hi = f64::INFINITY;
    for (i, &v) in values.iter().enumerate().skip(1) {
        let dt = i as f64;
        let tol = bound.as_percent() / 100.0 * v.abs();
        lo = lo.max((v - tol - first) / dt);
        hi = hi.min((v + tol - first) / dt);
        if lo > hi {
            return None;
        }
    }
    let slope = lo + (hi - lo) / 2.0;
    if !slope.is_finite() {
        return None;
    }
    values
        .iter()
        .enumerate()
        .all(|(i, &v)| bound.allows(v, first + slope * i as f64))
        .then_some((first, slope))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bound_allows_relative_window() {
        let b = ErrorBound::percent(1.0);
        assert!(b.allows(100.0, 100.9));
        assert!(b.allows(100.0, 99.1));
        assert!(!b.allows(100.0, 101.5));
        // A zero sample admits only zero back.
        assert!(b.allows(0.0, 0.0));
        assert!(!b.allows(0.0, 0.001));
    }

    #[test]
    fn lossless_bound_is_exact() {
        let b = ErrorBound::LOSSLESS;
        assert!(b.allows(5.0, 5.0));
        assert!(!b.allows(5.0, 5.0000001));
    }

    #[test]
    #[should_panic(expected = "error bound")]
    fn negative_bound_rejected() {
        ErrorBound::percent(-1.0);
    }

    #[test]
    fn constant_fit_midrange() {
        let b = ErrorBound::percent(2.0);
        let v = fit_constant(&[100.0, 101.0, 99.5], &b).expect("fits");
        assert!((v - 100.25).abs() < 1e-12);
        assert!(fit_constant(&[100.0, 110.0], &b).is_none());
    }

    #[test]
    fn linear_fit_exact_line() {
        let b = ErrorBound::percent(0.5);
        let series: Vec<f64> = (0..10).map(|i| 50.0 + 3.0 * i as f64).collect();
        let (first, slope) = fit_linear(&series, &b).expect("a line fits itself");
        assert_eq!(first, 50.0);
        assert!((slope - 3.0).abs() < 1e-9);
        // A step function does not fit one line at 0.5%.
        assert!(fit_linear(&[10.0, 10.0, 10.0, 40.0, 40.0], &b).is_none());
    }

    #[test]
    fn segment_native_aggregates_match_values() {
        let seg = Segment {
            start_tick: 7,
            count: 5,
            error_pct: 1.0,
            model: SegmentModel::Linear {
                first: 10.0,
                slope: 2.0,
            },
        };
        assert_eq!(seg.values(), vec![10.0, 12.0, 14.0, 16.0, 18.0]);
        assert_eq!(seg.min_over(1, 3), 12.0);
        assert_eq!(seg.max_over(1, 3), 16.0);
        assert_eq!(seg.sum_over(0, 4), 70.0);
        assert_eq!(seg.encoded_bytes(), SEGMENT_HEADER_BYTES + 16);
        assert_eq!(seg.end_tick(), 12);
    }

    #[test]
    fn raw_segment_is_lossless() {
        let seg = Segment {
            start_tick: 0,
            count: 3,
            error_pct: 0.0,
            model: SegmentModel::Raw {
                values: vec![1.0, -2.0, 3.0],
            },
        };
        assert_eq!(seg.sum_over(0, 2), 2.0);
        assert_eq!(seg.min_over(0, 2), -2.0);
        assert_eq!(seg.max_over(0, 2), 3.0);
        assert_eq!(seg.encoded_bytes(), SEGMENT_HEADER_BYTES + 24);
    }
}
