//! The fleet health plane: typed SLO rules, multi-window burn-rate
//! alerting, and deterministic incident reports.
//!
//! An [`SloRule`] is an objective declared against the telemetry plane's
//! [`SeriesKey`] space — "p99 full-fidelity lateness ≤ 5 ms", "mean drop
//! rate ≤ 1%", "cross-node load skew ≤ 50%" — via the same [`Selector`]
//! the query surface uses. A [`HealthMonitor`] evaluates every rule once
//! per telemetry tick, **continuously in simulated time**:
//!
//! * Each tick, the rule's windowed aggregate is turned into a **burn
//!   rate**: how many times over (or under, for lower bounds) the
//!   objective the measured value is. `1.0` sits exactly on the
//!   objective.
//! * Two windows run side by side — a **fast** window (default 6 ticks)
//!   that catches abrupt failures like a node kill within a few ticks,
//!   and a **slow** window (default 36 ticks) that catches sustained
//!   low-grade decay a short window would shrug off. An alert opens when
//!   the fast burn crosses its (higher) trigger *or* the slow burn
//!   crosses its (lower) trigger — the classic multi-window
//!   multi-burn-rate scheme.
//! * **Hysteresis**: an open alert closes only after both burns have been
//!   back inside the objective (`< 1.0`) for `clear_ticks` consecutive
//!   ticks, so a value oscillating around the threshold cannot flap the
//!   alert open and closed every tick.
//!
//! Evaluation is a pure function of the sampled values, so the same run
//! produces the same transitions whether the monitor rides the live
//! sampler tick by tick ([`HealthMonitor::observe_tick`]) or replays a
//! [`TelemetryStore`] after the fact ([`HealthMonitor::replay`]) — the
//! equivalence `tests/prop.rs` pins. On close, an alert expands into an
//! [`IncidentReport`]: open/close ticks, the full burn trajectory, the
//! dominant miss-attribution causes during the window, and per-node /
//! per-shard breakdown tables — each breakdown one grouped query
//! ([`GroupBy`]) over the incident window.

use std::collections::BTreeMap;
use std::fmt;

use tbm_time::{TimeDelta, TimePoint};

use crate::model::{Segment, SegmentModel};
use crate::query::{Predicate, Query, QueryCtx, Source, Table};
use crate::store::{Aggregate, GroupBy, Metric, Selector, SeriesKey, TelemetryStore};

/// Burn rates are clamped to this ceiling so zero-threshold objectives
/// ("unverified serves = 0") stay finite and reports render cleanly.
pub const BURN_CAP: f64 = 1000.0;

/// How an [`SloRule`] judges its windowed aggregate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SloObjective {
    /// The aggregate must stay at or below `threshold`. Burn is
    /// `value / threshold` (capped; a zero threshold burns [`BURN_CAP`]
    /// the moment the value is positive).
    Below {
        /// The windowed aggregate to evaluate.
        agg: Aggregate,
        /// The objective ceiling.
        threshold: f64,
    },
    /// The aggregate must stay at or above `threshold`. Burn is
    /// `threshold / value` (capped when the value collapses to zero).
    Above {
        /// The windowed aggregate to evaluate.
        agg: Aggregate,
        /// The objective floor.
        threshold: f64,
    },
    /// The cross-node skew of per-node window means —
    /// `(max − mean) / mean × 100`, the fleet's skew definition — must
    /// stay at or below `threshold_pct`. Needs at least two nodes
    /// reporting *and* a cross-node mean of at least `min_mean` (the
    /// low-traffic guard: skew over a near-idle fleet is placement noise,
    /// not imbalance); burns 0 otherwise.
    SkewBelow {
        /// The skew ceiling, percent.
        threshold_pct: f64,
        /// Minimum cross-node mean (in the series' own units) before
        /// skew is judged at all.
        min_mean: f64,
    },
}

impl SloObjective {
    /// The aggregate the objective windows, when it has one (`SkewBelow`
    /// reduces per-node means instead).
    pub fn aggregate(&self) -> Option<Aggregate> {
        match self {
            SloObjective::Below { agg, .. } | SloObjective::Above { agg, .. } => Some(*agg),
            SloObjective::SkewBelow { .. } => None,
        }
    }
}

impl fmt::Display for SloObjective {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SloObjective::Below { agg, threshold } => write!(f, "{agg} ≤ {}", fmt_burn(*threshold)),
            SloObjective::Above { agg, threshold } => write!(f, "{agg} ≥ {}", fmt_burn(*threshold)),
            SloObjective::SkewBelow {
                threshold_pct,
                min_mean,
            } => {
                write!(
                    f,
                    "node skew ≤ {}% (mean ≥ {})",
                    fmt_burn(*threshold_pct),
                    fmt_burn(*min_mean)
                )
            }
        }
    }
}

/// One typed SLO rule: an objective over a [`Selector`]'s series, plus the
/// burn-rate windows, triggers, and hysteresis that govern its alert.
#[derive(Debug, Clone, PartialEq)]
pub struct SloRule {
    /// Stable rule name — the alert's identity in traces, counters and
    /// reports.
    pub name: String,
    /// Which series the objective ranges over (identity fields only; the
    /// monitor supplies the time window each tick).
    pub selector: Selector,
    /// The objective.
    pub objective: SloObjective,
    /// Fast-window length, ticks.
    pub fast_ticks: u32,
    /// Slow-window length, ticks.
    pub slow_ticks: u32,
    /// Fast-window burn that opens the alert (the higher trigger).
    pub fast_trigger: f64,
    /// Slow-window burn that opens the alert (the lower trigger).
    pub slow_trigger: f64,
    /// Consecutive ticks both burns must stay `< 1.0` before an open
    /// alert closes.
    pub clear_ticks: u32,
}

impl SloRule {
    /// A rule with the default windows: fast 6 ticks at trigger 2×, slow
    /// 36 ticks at trigger 1×, clearing after 6 calm ticks.
    ///
    /// # Panics
    /// When `name` is empty, or the objective's threshold is negative or
    /// not finite (`SkewBelow` additionally requires a positive bound).
    pub fn new(name: impl Into<String>, selector: Selector, objective: SloObjective) -> SloRule {
        let name = name.into();
        assert!(!name.is_empty(), "an SLO rule needs a name");
        let threshold_ok = match objective {
            SloObjective::Below { threshold, .. } | SloObjective::Above { threshold, .. } => {
                threshold.is_finite() && threshold >= 0.0
            }
            SloObjective::SkewBelow {
                threshold_pct,
                min_mean,
            } => {
                threshold_pct.is_finite()
                    && threshold_pct > 0.0
                    && min_mean.is_finite()
                    && min_mean >= 0.0
            }
        };
        assert!(threshold_ok, "rule {name}: objective threshold invalid");
        SloRule {
            name,
            selector,
            objective,
            fast_ticks: 6,
            slow_ticks: 36,
            fast_trigger: 2.0,
            slow_trigger: 1.0,
            clear_ticks: 6,
        }
    }

    /// Builder: window lengths in ticks.
    ///
    /// # Panics
    /// When `fast` is zero or `slow < fast`.
    pub fn windows(mut self, fast: u32, slow: u32) -> SloRule {
        assert!(
            fast >= 1 && slow >= fast,
            "windows must satisfy 1 ≤ fast ≤ slow"
        );
        self.fast_ticks = fast;
        self.slow_ticks = slow;
        self
    }

    /// Builder: burn triggers for the fast and slow windows.
    ///
    /// # Panics
    /// When either trigger is not positive and finite.
    pub fn triggers(mut self, fast: f64, slow: f64) -> SloRule {
        assert!(
            fast > 0.0 && fast.is_finite() && slow > 0.0 && slow.is_finite(),
            "burn triggers must be positive"
        );
        self.fast_trigger = fast;
        self.slow_trigger = slow;
        self
    }

    /// Builder: hysteresis — calm ticks required before closing.
    ///
    /// # Panics
    /// When `ticks` is zero.
    pub fn clear_after(mut self, ticks: u32) -> SloRule {
        assert!(ticks >= 1, "hysteresis needs at least one calm tick");
        self.clear_ticks = ticks;
        self
    }

    /// Built-in: p99 full-fidelity lateness at or below `threshold_us`.
    pub fn p99_full_lateness_below(threshold_us: f64) -> SloRule {
        SloRule::new(
            "lateness-p99-full",
            Selector::metric(Metric::LatenessUs).degraded(false),
            SloObjective::Below {
                agg: Aggregate::Quantile(99),
                threshold: threshold_us,
            },
        )
    }

    /// Built-in: mean element drop rate at or below `threshold_pct`.
    pub fn drop_rate_below(threshold_pct: f64) -> SloRule {
        SloRule::new(
            "drop-rate",
            Selector::metric(Metric::DropRatePct),
            SloObjective::Below {
                agg: Aggregate::Mean,
                threshold: threshold_pct,
            },
        )
    }

    /// Built-in: zero unverified serves, ever — the watchdog on the
    /// tiered store's no-unverified-reads invariant.
    pub fn no_unverified_serves() -> SloRule {
        SloRule::new(
            "unverified-serves",
            Selector::metric(Metric::UnverifiedServes),
            SloObjective::Below {
                agg: Aggregate::Max,
                threshold: 0.0,
            },
        )
    }

    /// Built-in: cross-node load skew at or below `threshold_pct`, judged
    /// only while the cross-node mean load is at least 5% (an idle fleet's
    /// skew is placement noise, not imbalance).
    pub fn load_skew_below(threshold_pct: f64) -> SloRule {
        SloRule::new(
            "load-skew",
            Selector::metric(Metric::NodeLoadPct),
            SloObjective::SkewBelow {
                threshold_pct,
                min_mean: 5.0,
            },
        )
    }

    /// Built-in: mean cache hit rate at or above `threshold_pct`.
    pub fn cache_hit_above(threshold_pct: f64) -> SloRule {
        SloRule::new(
            "cache-hit",
            Selector::metric(Metric::CacheHitPct),
            SloObjective::Above {
                agg: Aggregate::Mean,
                threshold: threshold_pct,
            },
        )
    }

    /// The rule on one line, e.g.
    /// `lateness-p99-full: p99 ≤ 5000 over lateness_us full [fast 6t ≥ 2x | slow 36t ≥ 1x | clear 6t]`.
    pub fn describe(&self) -> String {
        format!(
            "{}: {} over {} [fast {}t ≥ {}x | slow {}t ≥ {}x | clear {}t]",
            self.name,
            self.objective,
            selector_label(&self.selector),
            self.fast_ticks,
            fmt_burn(self.fast_trigger),
            self.slow_ticks,
            fmt_burn(self.slow_trigger),
            self.clear_ticks,
        )
    }
}

/// Compact identity rendering of a rule selector: metric (or `*`), the
/// fidelity split when pinned, node/shard when pinned.
fn selector_label(sel: &Selector) -> String {
    let mut parts: Vec<String> = Vec::new();
    parts.push(
        sel.metric
            .map_or_else(|| "*".to_string(), |m| m.to_string()),
    );
    if let Some(d) = sel.degraded {
        parts.push(if d { "degraded" } else { "full" }.to_string());
    }
    if let Some(n) = sel.node {
        parts.push(format!("node{n}"));
    }
    if let Some(s) = sel.shard {
        parts.push(format!("shard{s}"));
    }
    parts.join(" ")
}

/// Whether a transition opened or closed the alert.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlertKind {
    /// The alert opened at this tick.
    Opened,
    /// The alert closed at this tick (after the hysteresis ran out).
    Closed,
}

impl fmt::Display for AlertKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            AlertKind::Opened => "opened",
            AlertKind::Closed => "closed",
        })
    }
}

/// One alert state change, with the burns that caused it.
#[derive(Debug, Clone, PartialEq)]
pub struct AlertTransition {
    /// The rule whose alert changed state.
    pub rule: String,
    /// Open or close.
    pub kind: AlertKind,
    /// The tick of the change.
    pub tick: u32,
    /// The simulated instant of the change.
    pub at: TimePoint,
    /// Fast-window burn at the change.
    pub fast_burn: f64,
    /// Slow-window burn at the change.
    pub slow_burn: f64,
}

/// One point of an open alert's burn trajectory.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BurnPoint {
    /// The tick.
    pub tick: u32,
    /// Fast-window burn at the tick.
    pub fast: f64,
    /// Slow-window burn at the tick.
    pub slow: f64,
}

/// A closed alert: one full open→close arc with its burn trajectory.
#[derive(Debug, Clone, PartialEq)]
pub struct Incident {
    /// The rule that alerted.
    pub rule: String,
    /// The rule's objective, rendered.
    pub objective: String,
    /// The rule's selector (drives the report's breakdown queries).
    pub selector: Selector,
    /// The rule's windowed aggregate (`None` for skew objectives; the
    /// report's breakdowns fall back to the mean).
    pub aggregate: Option<Aggregate>,
    /// Tick the alert opened.
    pub opened_tick: u32,
    /// Instant the alert opened.
    pub opened_at: TimePoint,
    /// Tick the alert closed.
    pub closed_tick: u32,
    /// Instant the alert closed.
    pub closed_at: TimePoint,
    /// Worst fast-window burn while open.
    pub peak_fast: f64,
    /// Worst slow-window burn while open.
    pub peak_slow: f64,
    /// Per-tick burns from open to close, inclusive.
    pub trajectory: Vec<BurnPoint>,
}

/// Per-rule alert state machine.
#[derive(Debug, Clone, Default)]
struct RuleState {
    active: bool,
    opened_tick: u32,
    opened_at: TimePoint,
    peak_fast: f64,
    peak_slow: f64,
    calm: u32,
    trajectory: Vec<BurnPoint>,
    opens: u64,
    /// Burns from the most recent evaluated tick — what the remediation
    /// plane's verification pass re-reads.
    last_fast: f64,
    last_slow: f64,
}

/// One series' raw per-tick history inside the monitor.
#[derive(Debug, Clone)]
struct SeriesHistory {
    start_tick: u32,
    values: Vec<f64>,
}

/// The health plane's evaluator: SLO rules over per-tick samples, with
/// alert state machines and the raw history the incident reports query.
///
/// Feed it one batch of `(key, value)` samples per tick —
/// [`FleetTelemetry`](crate::FleetTelemetry) does this when attached via
/// `with_health` — or replay a finished store with
/// [`HealthMonitor::replay`]. With **zero rules** a tick is a counter
/// bump and an immediate return: no history is retained and nothing is
/// evaluated, so an unused health plane costs nothing.
#[derive(Debug, Clone)]
pub struct HealthMonitor {
    interval: TimeDelta,
    origin: Option<TimePoint>,
    ticks: u32,
    rules: Vec<SloRule>,
    states: Vec<RuleState>,
    history: BTreeMap<SeriesKey, SeriesHistory>,
    incidents: Vec<Incident>,
}

impl HealthMonitor {
    /// A monitor expecting one [`observe_tick`](HealthMonitor::observe_tick)
    /// every `interval` of simulated time.
    ///
    /// # Panics
    /// When `interval` is not strictly positive.
    pub fn new(interval: TimeDelta) -> HealthMonitor {
        assert!(
            !interval.is_zero() && !interval.is_negative(),
            "health tick interval must be positive"
        );
        HealthMonitor {
            interval,
            origin: None,
            ticks: 0,
            rules: Vec::new(),
            states: Vec::new(),
            incidents: Vec::new(),
            history: BTreeMap::new(),
        }
    }

    /// Builder: arms `rule`.
    pub fn rule(mut self, rule: SloRule) -> HealthMonitor {
        self.rules.push(rule);
        self.states.push(RuleState::default());
        self
    }

    /// The armed rules.
    pub fn rules(&self) -> &[SloRule] {
        &self.rules
    }

    /// The expected tick interval.
    pub fn interval(&self) -> TimeDelta {
        self.interval
    }

    /// Ticks observed so far.
    pub fn ticks(&self) -> u32 {
        self.ticks
    }

    /// Names of rules whose alert is open right now, in rule order.
    pub fn open_alerts(&self) -> Vec<&str> {
        self.rules
            .iter()
            .zip(&self.states)
            .filter(|(_, st)| st.active)
            .map(|(r, _)| r.name.as_str())
            .collect()
    }

    /// How many times `rule`'s alert has opened — the flap count a quiet
    /// fleet keeps at ≤ 1 per fault.
    pub fn opens(&self, rule: &str) -> u64 {
        self.rules
            .iter()
            .zip(&self.states)
            .find(|(r, _)| r.name == rule)
            .map_or(0, |(_, st)| st.opens)
    }

    /// Closed alerts, in close order.
    pub fn incidents(&self) -> &[Incident] {
        &self.incidents
    }

    /// Whether `rule`'s alert is open right now.
    pub fn is_open(&self, rule: &str) -> bool {
        self.rules
            .iter()
            .zip(&self.states)
            .any(|(r, st)| r.name == rule && st.active)
    }

    /// The `(fast, slow)` burns `rule` computed at its most recent
    /// evaluated tick — `None` before the fast window has filled (or for
    /// an unknown rule). The remediation plane's verification pass reads
    /// this instead of recomputing windows.
    pub fn burns(&self, rule: &str) -> Option<(f64, f64)> {
        let (r, st) = self
            .rules
            .iter()
            .zip(&self.states)
            .find(|(r, _)| r.name == rule)?;
        if self.ticks < r.fast_ticks {
            return None;
        }
        Some((st.last_fast, st.last_slow))
    }

    /// Observes one tick of samples (at most one sample per series) at
    /// simulated instant `at`, evaluates every rule, and returns the alert
    /// transitions this tick caused, in rule order.
    ///
    /// Once a series has appeared it must be sampled every subsequent
    /// tick — the fleet sampler's contract — so each series' history
    /// stays aligned with the tick axis.
    pub fn observe_tick(
        &mut self,
        at: TimePoint,
        samples: &[(SeriesKey, f64)],
    ) -> Vec<AlertTransition> {
        if self.origin.is_none() {
            self.origin = Some(at);
        }
        let t = self.ticks;
        self.ticks += 1;
        if self.rules.is_empty() {
            // Zero rules: nothing to evaluate, nothing worth retaining.
            return Vec::new();
        }
        for (key, v) in samples {
            self.history
                .entry(*key)
                .or_insert_with(|| SeriesHistory {
                    start_tick: t,
                    values: Vec::new(),
                })
                .values
                .push(*v);
        }
        let mut out = Vec::new();
        for i in 0..self.rules.len() {
            let rule = &self.rules[i];
            // No verdicts until the fast window has filled once.
            if t + 1 < rule.fast_ticks {
                continue;
            }
            let fast = self.burn(rule, t, rule.fast_ticks);
            let slow = self.burn(rule, t, rule.slow_ticks);
            let rule = &self.rules[i];
            let st = &mut self.states[i];
            st.last_fast = fast;
            st.last_slow = slow;
            if !st.active {
                if fast >= rule.fast_trigger || slow >= rule.slow_trigger {
                    st.active = true;
                    st.opened_tick = t;
                    st.opened_at = at;
                    st.peak_fast = fast;
                    st.peak_slow = slow;
                    st.calm = 0;
                    st.trajectory = vec![BurnPoint {
                        tick: t,
                        fast,
                        slow,
                    }];
                    st.opens += 1;
                    out.push(AlertTransition {
                        rule: rule.name.clone(),
                        kind: AlertKind::Opened,
                        tick: t,
                        at,
                        fast_burn: fast,
                        slow_burn: slow,
                    });
                }
            } else {
                st.trajectory.push(BurnPoint {
                    tick: t,
                    fast,
                    slow,
                });
                st.peak_fast = st.peak_fast.max(fast);
                st.peak_slow = st.peak_slow.max(slow);
                if fast < 1.0 && slow < 1.0 {
                    st.calm += 1;
                } else {
                    st.calm = 0;
                }
                if st.calm >= rule.clear_ticks {
                    st.active = false;
                    self.incidents.push(Incident {
                        rule: rule.name.clone(),
                        objective: rule.objective.to_string(),
                        selector: rule.selector,
                        aggregate: rule.objective.aggregate(),
                        opened_tick: st.opened_tick,
                        opened_at: st.opened_at,
                        closed_tick: t,
                        closed_at: at,
                        peak_fast: st.peak_fast,
                        peak_slow: st.peak_slow,
                        trajectory: std::mem::take(&mut st.trajectory),
                    });
                    out.push(AlertTransition {
                        rule: rule.name.clone(),
                        kind: AlertKind::Closed,
                        tick: t,
                        at,
                        fast_burn: fast,
                        slow_burn: slow,
                    });
                }
            }
        }
        out
    }

    /// Replays a finished store through a fresh monitor — the batch
    /// evaluation path. Reconstructs every series tick by tick and feeds
    /// [`observe_tick`](HealthMonitor::observe_tick) exactly as the live
    /// sampler would have, so over a lossless store the transitions are
    /// identical to the streaming run's.
    pub fn replay(
        store: &TelemetryStore,
        rules: Vec<SloRule>,
    ) -> (HealthMonitor, Vec<AlertTransition>) {
        let mut monitor = HealthMonitor::new(store.interval());
        for r in rules {
            monitor = monitor.rule(r);
        }
        let recon: Vec<(SeriesKey, u32, Vec<f64>)> = store
            .keys()
            .map(|k| {
                let start = store.segments(k).first().map_or(0, |s| s.start_tick);
                (*k, start, store.reconstruct(k))
            })
            .collect();
        let ticks = recon
            .iter()
            .map(|(_, start, v)| start + v.len() as u32)
            .max()
            .unwrap_or(0);
        let mut transitions = Vec::new();
        let mut samples = Vec::new();
        for t in 0..ticks {
            samples.clear();
            for (k, start, vals) in &recon {
                if t >= *start {
                    if let Some(v) = vals.get((t - start) as usize) {
                        samples.push((*k, *v));
                    }
                }
            }
            transitions.extend(monitor.observe_tick(store.tick_time(t), &samples));
        }
        (monitor, transitions)
    }

    /// The monitor's raw history as a lossless [`TelemetryStore`] — one
    /// raw segment per series on the monitor's tick schedule. This is
    /// what the incident reports run their grouped breakdown queries
    /// against, so a report never depends on which compressed segments
    /// have finished shipping. Series that appeared after tick 0 are
    /// zero-filled up to their first sample, matching the sampler's
    /// "idle reads zero" convention.
    pub fn store_view(&self) -> TelemetryStore {
        let origin = self.origin.unwrap_or(TimePoint::ZERO);
        let mut store = TelemetryStore::new(origin, self.interval);
        for (key, h) in &self.history {
            if h.values.is_empty() {
                continue;
            }
            let mut values = vec![0.0; h.start_tick as usize];
            values.extend_from_slice(&h.values);
            let count = values.len() as u32;
            store.ingest(
                *key,
                Segment {
                    start_tick: 0,
                    count,
                    error_pct: 0.0,
                    model: SegmentModel::Raw { values },
                },
            );
        }
        store
    }

    /// The burn rate of `rule` over the trailing window of `window` ticks
    /// ending at tick `t` (shorter when the run is younger than the
    /// window).
    fn burn(&self, rule: &SloRule, t: u32, window: u32) -> f64 {
        match rule.objective {
            SloObjective::Below { agg, threshold } => {
                match self.windowed_aggregate(&rule.selector, agg, t, window) {
                    Some(value) => burn_over(value, threshold),
                    None => 0.0,
                }
            }
            SloObjective::Above { agg, threshold } => {
                match self.windowed_aggregate(&rule.selector, agg, t, window) {
                    Some(value) => burn_under(value, threshold),
                    None => 0.0,
                }
            }
            SloObjective::SkewBelow {
                threshold_pct,
                min_mean,
            } => {
                let mut per_node: BTreeMap<u16, (f64, u64)> = BTreeMap::new();
                self.for_window_values(&rule.selector, t, window, |key, v| {
                    let e = per_node.entry(key.node).or_insert((0.0, 0));
                    e.0 += v;
                    e.1 += 1;
                });
                let means: Vec<f64> = per_node
                    .values()
                    .filter(|(_, n)| *n > 0)
                    .map(|(sum, n)| sum / *n as f64)
                    .collect();
                if means.len() < 2 {
                    return 0.0;
                }
                let mean = means.iter().sum::<f64>() / means.len() as f64;
                if mean <= 0.0 || mean < min_mean {
                    return 0.0;
                }
                let max = means.iter().copied().fold(f64::NEG_INFINITY, f64::max);
                let skew_pct = (max - mean) / mean * 100.0;
                (skew_pct / threshold_pct).clamp(0.0, BURN_CAP)
            }
        }
    }

    /// Evaluates `agg` over every matching sample in the trailing window;
    /// `None` when the window holds no samples.
    fn windowed_aggregate(
        &self,
        sel: &Selector,
        agg: Aggregate,
        t: u32,
        window: u32,
    ) -> Option<f64> {
        let mut values = Vec::new();
        self.for_window_values(sel, t, window, |_, v| values.push(v));
        if values.is_empty() {
            return None;
        }
        Some(match agg {
            Aggregate::Count => values.len() as f64,
            Aggregate::Min => values.iter().copied().fold(f64::INFINITY, f64::min),
            Aggregate::Max => values.iter().copied().fold(f64::NEG_INFINITY, f64::max),
            Aggregate::Mean => values.iter().sum::<f64>() / values.len() as f64,
            Aggregate::Quantile(p) => {
                values.sort_by(|a, b| a.partial_cmp(b).expect("telemetry samples are finite"));
                let n = values.len() as u64;
                let rank = (u64::from(p.min(100)) * n).div_ceil(100).max(1);
                values[(rank - 1) as usize]
            }
        })
    }

    /// Visits every sample of every selector-matched series inside the
    /// trailing window `[t+1−window, t]`, in series-key order then tick
    /// order — a deterministic iteration both evaluation paths share.
    fn for_window_values(
        &self,
        sel: &Selector,
        t: u32,
        window: u32,
        mut visit: impl FnMut(&SeriesKey, f64),
    ) {
        let w_lo = (t + 1).saturating_sub(window);
        for (key, h) in &self.history {
            if !sel.matches(key) {
                continue;
            }
            let len = h.values.len() as u32;
            if len == 0 {
                continue;
            }
            let lo = w_lo.max(h.start_tick);
            let hi = t.min(h.start_tick + len - 1);
            if lo > hi {
                continue;
            }
            for v in &h.values[(lo - h.start_tick) as usize..=(hi - h.start_tick) as usize] {
                visit(key, *v);
            }
        }
    }
}

/// Burn of an upper-bound objective: how many times over the ceiling.
fn burn_over(value: f64, threshold: f64) -> f64 {
    if threshold > 0.0 {
        (value / threshold).clamp(0.0, BURN_CAP)
    } else if value <= 0.0 {
        0.0
    } else {
        BURN_CAP
    }
}

/// Burn of a lower-bound objective: how many times under the floor.
fn burn_under(value: f64, threshold: f64) -> f64 {
    if value > 0.0 {
        (threshold / value).clamp(0.0, BURN_CAP)
    } else if threshold <= 0.0 {
        0.0
    } else {
        BURN_CAP
    }
}

/// Deterministic burn rendering: two decimals, always.
fn fmt_burn(v: f64) -> String {
    format!("{v:.2}")
}

/// Burn trajectory rows rendered in full up to this many ticks; longer
/// incidents elide the middle (deterministically).
const TRAJECTORY_RENDER_CAP: usize = 48;

/// A closed alert expanded into its full, deterministic report: the
/// incident arc, the dominant miss causes during the window, and grouped
/// per-node / per-shard breakdowns — each breakdown one [`GroupBy`]
/// query.
#[derive(Debug, Clone, PartialEq)]
pub struct IncidentReport {
    /// The closed alert.
    pub incident: Incident,
    /// Misses during the incident window, grouped by attributed cause
    /// (`None` when no miss context was available).
    pub causes: Option<Table>,
    /// The rule's aggregate per node over the incident window.
    pub by_node: Option<Table>,
    /// The rule's aggregate per shard over the incident window.
    pub by_shard: Option<Table>,
    /// Remediation actions attempted while the alert was open, in apply
    /// order (rendered lines from the remediator's action log) — the
    /// "what the system did" third of the story. Empty without a
    /// remediator.
    pub actions: Vec<String>,
}

impl IncidentReport {
    /// A report without breakdown context — the arc and trajectory only.
    pub fn bare(incident: Incident) -> IncidentReport {
        IncidentReport {
            incident,
            causes: None,
            by_node: None,
            by_shard: None,
            actions: Vec::new(),
        }
    }

    /// Builder: stamps the remediation timeline into the report.
    pub fn with_actions(mut self, actions: Vec<String>) -> IncidentReport {
        self.actions = actions;
        self
    }

    /// Expands `incident` against the monitor's raw telemetry
    /// ([`HealthMonitor::store_view`]) and a fleet snapshot (for the miss
    /// rows). Each breakdown is one grouped query over the incident
    /// window.
    pub fn expand(
        incident: Incident,
        telemetry: &TelemetryStore,
        ctx: &QueryCtx<'_>,
    ) -> IncidentReport {
        let agg = incident.aggregate.unwrap_or(Aggregate::Mean);
        let causes = Query::scan(Source::Misses)
            .filter(Predicate::During(incident.opened_at, incident.closed_at))
            .group_by(GroupBy::Cause)
            .aggregate(Aggregate::Count)
            .run(ctx)
            .ok();
        let metrics_ctx = QueryCtx::new().with_telemetry(telemetry);
        let windowed = |group: GroupBy| {
            let mut q = Query::scan(Source::Metrics)
                .filter(Predicate::During(incident.opened_at, incident.closed_at));
            if let Some(m) = incident.selector.metric {
                q = q.filter(Predicate::MetricIs(m));
            }
            if let Some(d) = incident.selector.degraded {
                q = q.filter(Predicate::Degraded(d));
            }
            if let Some(n) = incident.selector.node {
                q = q.filter(Predicate::OnNode(n));
            }
            if let Some(s) = incident.selector.shard {
                q = q.filter(Predicate::OnShard(s));
            }
            q.group_by(group).aggregate(agg).run(&metrics_ctx).ok()
        };
        IncidentReport {
            by_node: windowed(GroupBy::Node),
            by_shard: windowed(GroupBy::Shard),
            causes,
            incident,
            actions: Vec::new(),
        }
    }

    /// The deterministic text report: byte-identical across same-seed
    /// runs.
    pub fn render(&self) -> String {
        let inc = &self.incident;
        let mut out = String::new();
        out.push_str(&format!("incident: {}\n", inc.rule));
        out.push_str(&format!("  objective   {}\n", inc.objective));
        out.push_str(&format!(
            "  opened      tick {} @ {} (fast {}x, slow {}x)\n",
            inc.opened_tick,
            inc.opened_at,
            fmt_burn(inc.trajectory.first().map_or(0.0, |b| b.fast)),
            fmt_burn(inc.trajectory.first().map_or(0.0, |b| b.slow)),
        ));
        out.push_str(&format!(
            "  closed      tick {} @ {}\n",
            inc.closed_tick, inc.closed_at
        ));
        out.push_str(&format!(
            "  duration    {} ticks\n",
            inc.closed_tick - inc.opened_tick + 1
        ));
        out.push_str(&format!(
            "  peak burn   fast {}x | slow {}x\n",
            fmt_burn(inc.peak_fast),
            fmt_burn(inc.peak_slow)
        ));
        out.push_str("  burn trajectory (tick: fast/slow):\n");
        let n = inc.trajectory.len();
        if n <= TRAJECTORY_RENDER_CAP {
            for b in &inc.trajectory {
                out.push_str(&trajectory_row(b));
            }
        } else {
            let head = TRAJECTORY_RENDER_CAP / 2;
            let tail = TRAJECTORY_RENDER_CAP - head;
            for b in &inc.trajectory[..head] {
                out.push_str(&trajectory_row(b));
            }
            out.push_str(&format!("    … {} ticks elided …\n", n - head - tail));
            for b in &inc.trajectory[n - tail..] {
                out.push_str(&trajectory_row(b));
            }
        }
        if !self.actions.is_empty() {
            out.push_str("  remediation timeline:\n");
            for a in &self.actions {
                out.push_str(&format!("    {a}\n"));
            }
        }
        if let Some(causes) = &self.causes {
            out.push_str("\nmisses during incident, by cause:\n");
            out.push_str(&causes.render());
        }
        if let Some(by_node) = &self.by_node {
            out.push_str("\nbreakdown by node:\n");
            out.push_str(&by_node.render());
        }
        if let Some(by_shard) = &self.by_shard {
            out.push_str("\nbreakdown by shard:\n");
            out.push_str(&by_shard.render());
        }
        out
    }
}

/// One `    tick: fast/slow` trajectory line.
fn trajectory_row(b: &BurnPoint) -> String {
    format!(
        "    {}: {}/{}\n",
        b.tick,
        fmt_burn(b.fast),
        fmt_burn(b.slow)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: i64) -> TimeDelta {
        TimeDelta::from_millis(v)
    }

    fn tp(v: i64) -> TimePoint {
        TimePoint::ZERO + ms(v)
    }

    fn lateness_key(node: u16, shard: u16) -> SeriesKey {
        SeriesKey {
            node,
            shard: Some(shard),
            metric: Metric::LatenessUs,
            degraded: false,
        }
    }

    /// Drives `monitor` over per-tick values of a single series,
    /// returning every transition.
    fn drive(monitor: &mut HealthMonitor, values: &[f64]) -> Vec<AlertTransition> {
        let key = lateness_key(0, 0);
        let mut out = Vec::new();
        for (t, v) in values.iter().enumerate() {
            out.extend(monitor.observe_tick(tp(50 * t as i64), &[(key, *v)]));
        }
        out
    }

    #[test]
    fn fast_window_catches_a_spike_and_hysteresis_closes_once() {
        let rule = SloRule::p99_full_lateness_below(1000.0)
            .windows(3, 12)
            .triggers(2.0, 1.0)
            .clear_after(3);
        let mut monitor = HealthMonitor::new(ms(50)).rule(rule);
        // 6 calm ticks, a 4-tick spike at 10x the objective, calm again.
        let mut series = vec![0.0; 6];
        series.extend([10_000.0; 4]);
        series.extend([0.0; 16]);
        let transitions = drive(&mut monitor, &series);
        assert_eq!(transitions.len(), 2, "one open, one close: {transitions:?}");
        assert_eq!(transitions[0].kind, AlertKind::Opened);
        assert_eq!(
            transitions[0].tick, 6,
            "p99 of the fast window crosses on the spike's first tick"
        );
        assert!(transitions[0].fast_burn >= 2.0);
        assert_eq!(transitions[1].kind, AlertKind::Closed);
        assert_eq!(monitor.opens("lateness-p99-full"), 1, "no flapping");
        assert_eq!(monitor.incidents().len(), 1);
        let inc = &monitor.incidents()[0];
        assert_eq!(inc.opened_tick, 6);
        assert_eq!(inc.closed_tick, transitions[1].tick);
        assert!(inc.peak_fast >= 10.0);
        assert_eq!(
            inc.trajectory.len() as u32,
            inc.closed_tick - inc.opened_tick + 1
        );
    }

    #[test]
    fn slow_window_catches_decay_the_fast_window_misses() {
        // Value sits at 1.2x the objective: fast burn 1.2 < trigger 2.0,
        // but the slow window's burn 1.2 ≥ 1.0 opens once it has seen
        // enough sustained decay to matter.
        let rule = SloRule::p99_full_lateness_below(1000.0)
            .windows(3, 12)
            .triggers(2.0, 1.0)
            .clear_after(3);
        let mut monitor = HealthMonitor::new(ms(50)).rule(rule);
        let series = vec![1200.0; 20];
        let transitions = drive(&mut monitor, &series);
        assert_eq!(
            transitions.len(),
            1,
            "opens and stays open: {transitions:?}"
        );
        assert_eq!(transitions[0].kind, AlertKind::Opened);
        assert!(transitions[0].fast_burn < 2.0);
        assert!(transitions[0].slow_burn >= 1.0);
        assert_eq!(monitor.open_alerts(), vec!["lateness-p99-full"]);
    }

    #[test]
    fn hysteresis_prevents_flapping_across_the_threshold() {
        // Oscillate around the objective: without hysteresis this would
        // open/close every few ticks; with clear_after(4) it opens once
        // and stays open until the calm stretch at the end.
        let rule = SloRule::p99_full_lateness_below(1000.0)
            .windows(2, 8)
            .triggers(1.5, 1.2)
            .clear_after(4);
        let mut monitor = HealthMonitor::new(ms(50)).rule(rule);
        let mut series = Vec::new();
        for i in 0..20 {
            series.push(if i % 2 == 0 { 2000.0 } else { 500.0 });
        }
        series.extend([0.0; 12]);
        let transitions = drive(&mut monitor, &series);
        assert_eq!(
            transitions.len(),
            2,
            "exactly one open and one close: {transitions:?}"
        );
        assert_eq!(monitor.opens("lateness-p99-full"), 1);
    }

    #[test]
    fn zero_threshold_objective_burns_capped_on_any_positive_value() {
        let rule = SloRule::no_unverified_serves().windows(2, 4).clear_after(2);
        let key = SeriesKey {
            node: 0,
            shard: Some(0),
            metric: Metric::UnverifiedServes,
            degraded: false,
        };
        let mut monitor = HealthMonitor::new(ms(50)).rule(rule);
        for t in 0..4 {
            assert!(monitor.observe_tick(tp(50 * t), &[(key, 0.0)]).is_empty());
        }
        let fired = monitor.observe_tick(tp(200), &[(key, 1.0)]);
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].fast_burn, BURN_CAP);
    }

    #[test]
    fn skew_objective_needs_two_nodes_and_tracks_imbalance() {
        let rule = SloRule::load_skew_below(50.0).windows(2, 4).clear_after(2);
        let load = |node: u16| SeriesKey {
            node,
            shard: None,
            metric: Metric::NodeLoadPct,
            degraded: false,
        };
        let mut monitor = HealthMonitor::new(ms(50)).rule(rule.clone());
        // One node only: skew undefined, never fires.
        for t in 0..8 {
            assert!(monitor
                .observe_tick(tp(50 * t), &[(load(0), 90.0)])
                .is_empty());
        }
        // Two nodes, one at 3x the other: skew (90-60)/60 = 50% → burn
        // 1.0 < fast trigger 2.0, and slow trigger 1.0 fires.
        let mut monitor = HealthMonitor::new(ms(50)).rule(rule);
        let mut fired = Vec::new();
        for t in 0..8 {
            fired.extend(monitor.observe_tick(tp(50 * t), &[(load(0), 90.0), (load(1), 30.0)]));
        }
        assert_eq!(fired.len(), 1, "{fired:?}");
        assert_eq!(fired[0].kind, AlertKind::Opened);
    }

    #[test]
    fn zero_rules_is_a_noop_and_retains_nothing() {
        let mut monitor = HealthMonitor::new(ms(50));
        for t in 0..100 {
            let out = monitor.observe_tick(tp(50 * t), &[(lateness_key(0, 0), 1e9)]);
            assert!(out.is_empty());
        }
        assert_eq!(monitor.ticks(), 100);
        assert_eq!(monitor.store_view().series_count(), 0);
    }

    #[test]
    fn replay_over_lossless_store_matches_streaming() {
        let rule = SloRule::p99_full_lateness_below(1000.0)
            .windows(3, 9)
            .triggers(2.0, 1.0)
            .clear_after(3);
        let mut streaming = HealthMonitor::new(ms(50)).rule(rule.clone());
        let mut series = vec![0.0; 5];
        series.extend([5000.0; 5]);
        series.extend([0.0; 10]);
        let live = drive(&mut streaming, &series);
        assert!(!live.is_empty());
        // Batch: replay the monitor's own lossless view of the run.
        let (replayed, batch) = HealthMonitor::replay(&streaming.store_view(), vec![rule]);
        assert_eq!(live, batch);
        assert_eq!(streaming.incidents(), replayed.incidents());
    }

    #[test]
    fn incident_report_renders_deterministically() {
        let rule = SloRule::p99_full_lateness_below(1000.0)
            .windows(2, 6)
            .clear_after(2);
        let mut monitor = HealthMonitor::new(ms(50)).rule(rule);
        let mut series = vec![0.0; 4];
        series.extend([8000.0; 3]);
        series.extend([0.0; 8]);
        drive(&mut monitor, &series);
        assert_eq!(monitor.incidents().len(), 1);
        let store = monitor.store_view();
        let ctx = QueryCtx::new();
        let report = IncidentReport::expand(monitor.incidents()[0].clone(), &store, &ctx);
        let text = report.render();
        assert!(text.starts_with("incident: lateness-p99-full\n"));
        assert!(text.contains("burn trajectory"));
        assert!(text.contains("breakdown by node:"));
        assert!(text.contains("breakdown by shard:"));
        // Byte-identical on re-render and on a rebuilt report.
        let again = IncidentReport::expand(monitor.incidents()[0].clone(), &store, &ctx);
        assert_eq!(text, again.render());
    }

    #[test]
    fn long_trajectories_elide_the_middle_deterministically() {
        let rule = SloRule::p99_full_lateness_below(1000.0)
            .windows(2, 6)
            .clear_after(2);
        let mut monitor = HealthMonitor::new(ms(50)).rule(rule);
        let mut series = vec![0.0; 4];
        series.extend(vec![8000.0; 100]);
        series.extend([0.0; 8]);
        drive(&mut monitor, &series);
        let report = IncidentReport::bare(monitor.incidents()[0].clone());
        let text = report.render();
        assert!(text.contains("ticks elided"));
        assert_eq!(
            text,
            IncidentReport::bare(monitor.incidents()[0].clone()).render()
        );
    }

    #[test]
    fn rule_describe_is_stable() {
        let rule = SloRule::p99_full_lateness_below(5000.0);
        assert_eq!(
            rule.describe(),
            "lateness-p99-full: p99 ≤ 5000.00 over lateness_us full [fast 6t ≥ 2.00x | slow 36t ≥ 1.00x | clear 6t]"
        );
    }

    #[test]
    #[should_panic(expected = "windows")]
    fn slow_window_must_cover_fast() {
        let _ = SloRule::p99_full_lateness_below(1.0).windows(10, 5);
    }
}
