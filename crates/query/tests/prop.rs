//! Property tests for the telemetry plane's compression contract.
//!
//! Two guarantees hold for *any* series and *any* configured error bound:
//!
//! 1. Compress → reconstruct stays within the bound, sample by sample
//!    (raw fallback segments are bit-exact).
//! 2. Model-native aggregates (evaluated on segment models, never on
//!    re-materialised samples) match the aggregates of the raw series
//!    within the same relative bound — count is exact.
//!
//! Series are generated as concatenations of the shapes real telemetry
//! exhibits: flat plateaus, linear ramps, noise bursts and zero runs —
//! so both the PMC-Mean and Swing filters and the raw fallback are all
//! exercised, at lossless and lossy bounds.

use proptest::prelude::*;
use tbm_query::{
    Aggregate, ErrorBound, HealthMonitor, IncidentReport, Metric, QueryCtx, Selector, SeriesKey,
    SeriesSink, SloRule, TelemetryStore,
};
use tbm_time::{TimeDelta, TimePoint};

/// One piece of a composite series.
fn piece() -> BoxedStrategy<Vec<f64>> {
    prop_oneof![
        // Flat plateau: PMC-Mean territory.
        (0.0f64..10_000.0, 1usize..40).prop_map(|(v, n)| vec![v; n]),
        // Linear ramp: Swing territory (clamped at zero to stay
        // telemetry-shaped, i.e. non-negative).
        (0.0f64..10_000.0, -80.0f64..80.0, 1usize..40).prop_map(|(v0, slope, n)| {
            (0..n).map(|i| (v0 + slope * i as f64).max(0.0)).collect()
        }),
        // Noise burst: raw-fallback territory.
        proptest::collection::vec(0.0f64..10_000.0, 1..20),
        // Zero run: the v=0 edge of the relative bound.
        (1usize..20).prop_map(|n| vec![0.0; n]),
    ]
    .boxed()
}

/// A composite series: 1–6 pieces, concatenated.
fn series() -> BoxedStrategy<Vec<f64>> {
    proptest::collection::vec(piece(), 1..6)
        .prop_map(|pieces| pieces.into_iter().flatten().collect())
        .boxed()
}

/// The error bounds under test: lossless plus representative lossy tiers.
fn bound_pct() -> BoxedStrategy<f64> {
    prop_oneof![Just(0.0), Just(0.1), Just(1.0), Just(5.0), Just(10.0),].boxed()
}

/// Compresses `values` through a fresh sink and returns every segment.
fn compress(values: &[f64], pct: f64) -> Vec<tbm_query::Segment> {
    let mut sink = SeriesSink::new(ErrorBound::percent(pct));
    for &v in values {
        sink.append(v);
    }
    sink.flush();
    sink.drain()
}

/// Nearest-rank percentile of a raw slice, mirroring the store's rank
/// arithmetic (`rank = max(1, ceil(p·N/100))`).
fn raw_quantile(sorted: &[f64], p: u64) -> f64 {
    let total = sorted.len() as u64;
    let rank = (p * total).div_ceil(100).max(1);
    sorted[(rank - 1) as usize]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Every reconstructed sample is within the configured relative bound
    /// of its raw counterpart, and the segments tile the tick axis.
    #[test]
    fn reconstruction_stays_within_bound(xs in series(), pct in bound_pct()) {
        let bound = ErrorBound::percent(pct);
        let segments = compress(&xs, pct);

        let mut tick = 0u32;
        let mut rebuilt = Vec::with_capacity(xs.len());
        for seg in &segments {
            prop_assert_eq!(seg.start_tick, tick, "segments must tile");
            prop_assert!(
                seg.error_pct <= pct,
                "segment claims a looser bound than configured"
            );
            rebuilt.extend(seg.values());
            tick = seg.end_tick();
        }
        prop_assert_eq!(rebuilt.len(), xs.len(), "every tick covered once");
        for (i, (&raw, &approx)) in xs.iter().zip(rebuilt.iter()).enumerate() {
            prop_assert!(
                bound.allows(raw, approx),
                "tick {}: raw {} vs approx {} breaks the {}% bound",
                i, raw, approx, pct
            );
        }
    }

    /// A lossless bound reproduces the series bit-exactly.
    #[test]
    fn lossless_bound_is_bit_exact(xs in series()) {
        let segments = compress(&xs, 0.0);
        let rebuilt: Vec<f64> = segments.iter().flat_map(|s| s.values()).collect();
        prop_assert_eq!(rebuilt, xs);
    }

    /// Model-native aggregates equal the raw-series aggregates within the
    /// configured relative bound; count is exact.
    #[test]
    fn model_aggregates_match_raw_within_bound(xs in series(), pct in bound_pct()) {
        let mut store = TelemetryStore::new(TimePoint::ZERO, TimeDelta::from_millis(50));
        let key = SeriesKey {
            node: 0,
            shard: None,
            metric: Metric::LatenessUs,
            degraded: false,
        };
        for seg in compress(&xs, pct) {
            store.ingest(key, seg);
        }

        let sel = Selector::all();
        let n = xs.len() as u64;

        let count = store.aggregate(&sel, Aggregate::Count).expect("non-empty");
        prop_assert_eq!(count.value, n as f64, "count is exact");
        prop_assert_eq!(count.points, n);

        // Relative-bound tolerance: |model - raw| ≤ pct/100·|raw| + ε.
        // Valid for min/max/mean/quantile because every sample is
        // non-negative and per-sample error is relative.
        let tol = |raw: f64| pct / 100.0 * raw.abs() + 1e-9;

        let raw_min = xs.iter().copied().fold(f64::INFINITY, f64::min);
        let raw_max = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let raw_mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let mut sorted = xs.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));

        for (agg, raw) in [
            (Aggregate::Min, raw_min),
            (Aggregate::Max, raw_max),
            (Aggregate::Mean, raw_mean),
            (Aggregate::Quantile(50), raw_quantile(&sorted, 50)),
            (Aggregate::Quantile(99), raw_quantile(&sorted, 99)),
            (Aggregate::Quantile(0), raw_quantile(&sorted, 0)),
            (Aggregate::Quantile(100), raw_quantile(&sorted, 100)),
        ] {
            let got = store.aggregate(&sel, agg).expect("non-empty");
            prop_assert!(
                (got.value - raw).abs() <= tol(raw),
                "{}: model {} vs raw {} outside {}%",
                agg, got.value, raw, pct
            );
            prop_assert!(
                got.error_pct <= pct,
                "{}: reported error {}% exceeds configured {}%",
                agg, got.error_pct, pct
            );
        }
    }

    /// Windowed aggregates agree with the raw slice of the same window.
    #[test]
    fn windowed_aggregates_match_raw_slice(
        xs in proptest::collection::vec(0.0f64..10_000.0, 8..64),
        pct in bound_pct(),
        cut in 0usize..8,
    ) {
        let interval = TimeDelta::from_millis(50);
        let mut store = TelemetryStore::new(TimePoint::ZERO, interval);
        let key = SeriesKey {
            node: 0,
            shard: None,
            metric: Metric::ThroughputBps,
            degraded: false,
        };
        for seg in compress(&xs, pct) {
            store.ingest(key, seg);
        }

        // Window [cut, len - 1 - cut] in ticks, clamped to stay non-empty.
        let cut = cut.min((xs.len() - 1) / 2);
        let lo = cut;
        let hi = xs.len() - 1 - cut;
        let sel = Selector::all().between(store.tick_time(lo as u32), store.tick_time(hi as u32));
        let slice = &xs[lo..=hi];

        let count = store.aggregate(&sel, Aggregate::Count).expect("non-empty");
        prop_assert_eq!(count.value, slice.len() as f64);

        let raw_max = slice.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let got = store.aggregate(&sel, Aggregate::Max).expect("non-empty");
        prop_assert!(
            (got.value - raw_max).abs() <= pct / 100.0 * raw_max.abs() + 1e-9,
            "windowed max: model {} vs raw {}",
            got.value, raw_max
        );
    }

    /// Streaming (per-tick) and batch (replay over a lossless shipped
    /// store) health evaluation open and close the same alerts at the
    /// same ticks, with bit-identical burns — for any series shapes and
    /// any rule windows/hysteresis. Lossless reconstruction gives back
    /// the exact samples, so both paths feed identical values through
    /// identical code.
    #[test]
    fn streaming_and_batch_health_evaluation_agree(
        cols in proptest::collection::vec(series(), 2..4),
        threshold in 200.0f64..6_000.0,
        fast in 2u32..6,
        slow_extra in 0u32..12,
        clear in 2u32..6,
    ) {
        let len = cols.iter().map(Vec::len).min().unwrap();
        let interval = TimeDelta::from_millis(50);
        let rule = SloRule::p99_full_lateness_below(threshold)
            .windows(fast, fast + slow_extra)
            .clear_after(clear);
        let keys: Vec<SeriesKey> = (0..cols.len() as u16)
            .map(|i| SeriesKey {
                node: i,
                shard: Some(i),
                metric: Metric::LatenessUs,
                degraded: false,
            })
            .collect();

        // Streaming: one observe_tick per tick, all series sampled.
        let mut streaming = HealthMonitor::new(interval).rule(rule.clone());
        let mut live = Vec::new();
        for t in 0..len {
            let at = TimePoint::ZERO + TimeDelta::from_millis(50 * t as i64);
            let samples: Vec<(SeriesKey, f64)> =
                keys.iter().zip(&cols).map(|(k, vs)| (*k, vs[t])).collect();
            live.extend(streaming.observe_tick(at, &samples));
        }

        // Batch: compress losslessly, ingest, replay the store.
        let mut store = TelemetryStore::new(TimePoint::ZERO, interval);
        for (k, vs) in keys.iter().zip(&cols) {
            for seg in compress(&vs[..len], 0.0) {
                store.ingest(*k, seg);
            }
        }
        let (batch, transitions) = HealthMonitor::replay(&store, vec![rule]);

        prop_assert_eq!(&live, &transitions, "transitions must match tick for tick");
        prop_assert_eq!(streaming.incidents(), batch.incidents());
        prop_assert_eq!(streaming.open_alerts(), batch.open_alerts());
    }

    /// Feeding the same input twice renders byte-identical incident
    /// reports — evaluation and rendering are pure functions of the
    /// samples.
    #[test]
    fn same_input_reruns_render_identical_reports(
        cols in proptest::collection::vec(series(), 1..3),
        threshold in 100.0f64..2_000.0,
    ) {
        let len = cols.iter().map(Vec::len).min().unwrap();
        let run = || {
            let interval = TimeDelta::from_millis(50);
            let mut monitor = HealthMonitor::new(interval)
                .rule(SloRule::p99_full_lateness_below(threshold).windows(2, 8).clear_after(2));
            for t in 0..len {
                let at = TimePoint::ZERO + TimeDelta::from_millis(50 * t as i64);
                let samples: Vec<(SeriesKey, f64)> = cols
                    .iter()
                    .enumerate()
                    .map(|(i, vs)| {
                        (
                            SeriesKey {
                                node: i as u16,
                                shard: Some(i as u16),
                                metric: Metric::LatenessUs,
                                degraded: false,
                            },
                            vs[t],
                        )
                    })
                    .collect();
                monitor.observe_tick(at, &samples);
            }
            let store = monitor.store_view();
            let ctx = QueryCtx::new();
            let mut out = String::new();
            for inc in monitor.incidents() {
                out.push_str(&IncidentReport::expand(inc.clone(), &store, &ctx).render());
            }
            out
        };
        prop_assert_eq!(run(), run(), "same input, same bytes");
    }
}

/// Property tests for the remediation plane's safety contract: token
/// budgets are hard (a dry bucket suppresses, never applies), and the
/// whole plane is deterministic (same inputs, byte-identical action log,
/// metrics and reports).
mod remediation {
    use super::*;
    use tbm_query::{Action, Outcome, Playbook, Remediator, SuppressReason, Verdict};
    use tbm_serve::{Capacity, Fleet, ShardedDb};

    fn drop_key() -> SeriesKey {
        SeriesKey {
            node: 0,
            shard: Some(0),
            metric: Metric::DropRatePct,
            degraded: false,
        }
    }

    fn load_key(node: u16) -> SeriesKey {
        SeriesKey {
            node,
            shard: None,
            metric: Metric::NodeLoadPct,
            degraded: false,
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// A dry token bucket suppresses — it never applies. The drawn
        /// drop-rate series worsens every tick, so every applied derate
        /// is rolled back at verification (tokens are *not* refunded:
        /// a failed action still spent its budget); once the bucket is
        /// dry every further attempt must be `suppressed (budget)`, and
        /// the rollbacks must have restored the fleet's admission derate.
        #[test]
        fn dry_budgets_suppress_and_never_apply(
            budget in 1u32..5,
            base in 10.0f64..100.0,
            step in 1.0f64..25.0,
        ) {
            let mut fleet = Fleet::new(ShardedDb::new(3, 7), 2, Capacity::new(1_000_000));
            let mut monitor = HealthMonitor::new(TimeDelta::from_millis(50)).rule(
                SloRule::drop_rate_below(1.0)
                    .windows(1, 1)
                    .triggers(1.0, 1.0)
                    .clear_after(1),
            );
            let mut rem = Remediator::new(
                Playbook::new()
                    .on("drop-rate", Action::DerateAdmission { percent: 70 })
                    .budget(budget)
                    .refill(0) // never refills: the bucket only drains
                    .cooldown(1)
                    .verify(1),
            )
            .freeze_after(100, 10); // out of the way: this is the budget's test
            let ticks = budget + 6;
            for tick in 0..ticks {
                let at = TimePoint::ZERO + TimeDelta::from_millis(50 * i64::from(tick));
                let samples = vec![(drop_key(), base + step * f64::from(tick))];
                let transitions = monitor.observe_tick(at, &samples);
                rem.on_tick(&mut fleet, &monitor, &transitions, tick, at);
            }

            let applied: Vec<_> = rem
                .records()
                .iter()
                .filter(|r| r.outcome == Outcome::Applied)
                .collect();
            prop_assert_eq!(applied.len() as u32, budget, "log:\n{}", rem.render_log());
            prop_assert!(
                applied.iter().all(|r| r.tick < budget),
                "applies stop when the bucket dries:\n{}",
                rem.render_log()
            );
            prop_assert!(
                applied.iter().all(|r| r.verdict == Some(Verdict::RolledBack)),
                "a monotonically worsening burn rolls every apply back:\n{}",
                rem.render_log()
            );
            let suppressed = rem
                .records()
                .iter()
                .filter(|r| r.outcome == Outcome::Suppressed(SuppressReason::Budget))
                .count();
            prop_assert!(suppressed >= 1, "log:\n{}", rem.render_log());
            prop_assert_eq!(fleet.metrics().counter("remediation.actions.applied"), u64::from(budget));
            prop_assert_eq!(fleet.metrics().counter("remediation.actions.rolled_back"), u64::from(budget));
            prop_assert_eq!(fleet.metrics().counter("remediation.actions.suppressed"), suppressed as u64);
            prop_assert_eq!(fleet.admission_derate(), 100, "rollbacks restore the derate");
            prop_assert!(!rem.frozen());
        }

        /// Same inputs, byte-identical outputs: the action log, the
        /// fleet's metrics rollup and every incident report — whatever
        /// mix of applies, holds, rollbacks, freezes and guard no-ops
        /// the drawn burn trajectories provoke.
        #[test]
        fn remediation_is_deterministic(
            hot in proptest::collection::vec(0.0f64..2_000.0, 12..30),
            drops in proptest::collection::vec(0.0f64..50.0, 12..30),
            budget in 1u32..4,
            cooldown in 1u32..4,
            verify in 1u32..3,
        ) {
            let run = || {
                let mut fleet = Fleet::new(ShardedDb::new(3, 7), 2, Capacity::new(1_000_000));
                let mut monitor = HealthMonitor::new(TimeDelta::from_millis(50))
                    .rule(SloRule::load_skew_below(60.0).windows(2, 4).triggers(2.0, 1.0).clear_after(2))
                    .rule(SloRule::drop_rate_below(1.0).windows(2, 4).triggers(2.0, 1.0).clear_after(2));
                let mut rem = Remediator::new(
                    Playbook::new()
                        .on("load-skew", Action::RebalanceShards { min_skew_pct: 10 })
                        .budget(budget).cooldown(cooldown).verify(verify)
                        .on("drop-rate", Action::DerateAdmission { percent: 70 })
                        .budget(budget).cooldown(cooldown).verify(verify)
                        .on("drop-rate", Action::GrowCache { bytes: 1 << 20 })
                        .budget(budget).cooldown(cooldown).verify(verify),
                )
                .freeze_after(2, 50);
                let ticks = hot.len().min(drops.len());
                for tick in 0..ticks {
                    let at = TimePoint::ZERO + TimeDelta::from_millis(50 * tick as i64);
                    let samples = vec![
                        (load_key(0), hot[tick]),
                        (load_key(1), 10.0),
                        (drop_key(), drops[tick]),
                    ];
                    let transitions = monitor.observe_tick(at, &samples);
                    rem.on_tick(&mut fleet, &monitor, &transitions, tick as u32, at);
                }
                let mut reports = String::new();
                for inc in monitor.incidents() {
                    let actions = rem.actions_for(&inc.rule, inc.opened_tick, inc.closed_tick);
                    reports.push_str(
                        &IncidentReport::bare(inc.clone()).with_actions(actions).render(),
                    );
                }
                (rem.render_log(), fleet.metrics().render(), reports)
            };
            let (log_a, metrics_a, reports_a) = run();
            let (log_b, metrics_b, reports_b) = run();
            prop_assert_eq!(log_a, log_b, "same inputs, same action-log bytes");
            prop_assert_eq!(metrics_a, metrics_b, "same inputs, same metric bytes");
            prop_assert_eq!(reports_a, reports_b, "same inputs, same report bytes");
        }
    }
}
