//! Property tests on multimedia-object timeline invariants.

use proptest::prelude::*;
use tbm_compose::{Component, ComponentKind, MultimediaObject};
use tbm_derive::Node;
use tbm_time::{AllenRelation, TimeDelta, TimePoint};

fn arb_object() -> impl Strategy<Value = MultimediaObject> {
    prop::collection::vec((0i64..200, 0i64..200, any::<bool>()), 1..12).prop_map(|specs| {
        let mut m = MultimediaObject::new("m");
        for (i, (start, dur, audio)) in specs.into_iter().enumerate() {
            m.add_component(
                Component::new(
                    &format!("c{i}"),
                    if audio {
                        ComponentKind::Audio
                    } else {
                        ComponentKind::Video
                    },
                    Node::source("x"),
                    TimePoint::from_secs(start),
                    TimeDelta::from_secs(dur),
                )
                .expect("non-negative duration"),
            )
            .expect("unique names");
        }
        m
    })
}

proptest! {
    /// The object's interval spans every component.
    #[test]
    fn interval_spans_components(m in arb_object()) {
        let iv = m.interval().expect("non-empty");
        for c in m.components() {
            prop_assert!(iv.contains_interval(c.interval), "{} vs {}", iv, c.interval);
        }
        prop_assert_eq!(iv.duration(), m.duration());
    }

    /// `active_at` agrees with per-component interval membership.
    #[test]
    fn active_at_agrees(m in arb_object(), t in 0i64..420) {
        let t = TimePoint::from_secs(t);
        let active = m.active_at(t);
        for c in m.components() {
            let listed = active.iter().any(|a| a.name == c.name);
            prop_assert_eq!(listed, c.interval.contains(t), "{}", c.name);
        }
    }

    /// Translation moves the span rigidly and preserves every pairwise
    /// Allen relation — so sync constraints survive translation.
    #[test]
    fn translation_preserves_relations(m in arb_object(), by in -100i64..100) {
        let before: Vec<_> = m
            .components()
            .iter()
            .flat_map(|a| {
                m.components()
                    .iter()
                    .map(move |b| AllenRelation::classify(a.interval, b.interval))
            })
            .collect();
        let mut moved = m.clone();
        moved.translate(TimeDelta::from_secs(by));
        let after: Vec<_> = moved
            .components()
            .iter()
            .flat_map(|a| {
                moved
                    .components()
                    .iter()
                    .map(move |b| AllenRelation::classify(a.interval, b.interval))
            })
            .collect();
        prop_assert_eq!(before, after);
        let d0 = m.duration();
        prop_assert_eq!(moved.duration(), d0);
    }

    /// Constraints recorded from the *actual* relations always validate,
    /// before and after translation.
    #[test]
    fn recorded_relations_validate(m in arb_object(), by in -50i64..50) {
        let mut m = m;
        let pairs: Vec<(String, String, AllenRelation)> = m
            .components()
            .iter()
            .zip(m.components().iter().skip(1))
            .map(|(a, b)| {
                (
                    a.name.clone(),
                    b.name.clone(),
                    AllenRelation::classify(a.interval, b.interval),
                )
            })
            .collect();
        for (a, b, r) in pairs {
            m.add_constraint(&a, r, &b).unwrap();
        }
        prop_assert!(m.validate().is_ok());
        m.translate(TimeDelta::from_secs(by));
        prop_assert!(m.validate().is_ok());
    }

    /// The timeline diagram renders one bar row per component and never
    /// exceeds the requested width (plus the name gutter).
    #[test]
    fn timeline_diagram_shape(m in arb_object(), cols in 10usize..80) {
        if m.duration().is_zero() {
            // Degenerate objects render a placeholder, not bars.
            prop_assert!(m.timeline_diagram(cols).contains("instantaneous"));
            return Ok(());
        }
        let d = m.timeline_diagram(cols);
        let bar_rows = d.lines().filter(|l| l.contains('|')).count();
        prop_assert_eq!(bar_rows, m.components().len());
        for line in d.lines().filter(|l| l.contains('|')) {
            // Count characters (not bytes: '█' is multi-byte) between pipes.
            let between = line
                .chars()
                .skip_while(|&c| c != '|')
                .skip(1)
                .take_while(|&c| c != '|')
                .count();
            prop_assert!(between <= cols, "bar width {} > {}", between, cols);
        }
    }
}
