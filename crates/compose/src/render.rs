//! Realizing multimedia objects for presentation.
//!
//! Composition in the paper is declarative — relationships, not pixels. To
//! *present* a multimedia object (and to drive the player simulation), the
//! [`Composer`] resolves each component's media through an
//! [`Expander`] and produces:
//!
//! * composited video frames at a given output clock and geometry
//!   (spatial composition: regions, layers), and
//! * mixed audio windows at a given output sample rate (temporal
//!   composition of sounds — "narrating a video sequence by combining it
//!   with an audio sequence").

use crate::{ComponentKind, ComposeError, MultimediaObject};
use tbm_derive::{Expander, Node};
use tbm_media::{AudioBuffer, Frame, PixelFormat};
use tbm_time::{TimeDelta, TimePoint, TimeSystem};

/// Realizes multimedia objects against an expander.
#[derive(Debug)]
pub struct Composer<'a> {
    expander: &'a Expander,
    /// Output canvas width.
    pub width: u32,
    /// Output canvas height.
    pub height: u32,
    /// Output audio sample rate.
    pub sample_rate: u32,
    /// Output audio channel count.
    pub channels: u16,
}

impl<'a> Composer<'a> {
    /// Creates a composer with an output geometry and audio format.
    pub fn new(expander: &'a Expander, width: u32, height: u32) -> Composer<'a> {
        Composer {
            expander,
            width,
            height,
            sample_rate: 44_100,
            channels: 2,
        }
    }

    /// Overrides the output audio format.
    pub fn with_audio(mut self, sample_rate: u32, channels: u16) -> Composer<'a> {
        self.sample_rate = sample_rate.max(1);
        self.channels = channels.max(1);
        self
    }

    /// The expander used to resolve component media.
    pub fn expander(&self) -> &Expander {
        self.expander
    }

    fn video_frame_of(
        &self,
        media: &Node,
        local: TimeDelta,
    ) -> Result<Option<Frame>, ComposeError> {
        let system: TimeSystem = self.expander.video_system(media)?;
        let len = self.expander.video_len(media)?;
        if len == 0 {
            return Ok(None);
        }
        let idx = system
            .seconds_to_tick_floor(TimePoint::ZERO + local)
            .clamp(0, len as i64 - 1) as usize;
        Ok(Some(self.expander.pull_frame(media, idx)?))
    }

    /// Renders the composited video frame of `m` at presentation time `t`.
    ///
    /// Active video components draw in ascending layer order; components
    /// without a region fill the whole canvas; regions scale their
    /// component's frame (nearest neighbour) into place.
    pub fn render_video_frame(
        &self,
        m: &MultimediaObject,
        t: TimePoint,
    ) -> Result<Frame, ComposeError> {
        let mut canvas = Frame::black(self.width, self.height, PixelFormat::Rgb24);
        let mut active: Vec<_> = m
            .active_at(t)
            .into_iter()
            .filter(|c| c.kind == ComponentKind::Video)
            .collect();
        active.sort_by_key(|c| c.region.map(|r| r.layer).unwrap_or(i32::MIN));
        for c in active {
            let local = t - c.interval.start();
            let Some(frame) = self.video_frame_of(&c.media, local)? else {
                continue;
            };
            let src = frame.to_format(PixelFormat::Rgb24);
            match c.region {
                None => {
                    // Full-canvas: scale to fit.
                    blit_scaled(&src, &mut canvas, 0, 0, self.width, self.height);
                }
                Some(r) => {
                    blit_scaled(&src, &mut canvas, r.x, r.y, r.width, r.height);
                }
            }
        }
        Ok(canvas)
    }

    /// Mixes the audio of `m` over the window `[from, from + duration)`
    /// into one output buffer at the composer's rate and channel count.
    pub fn mix_audio_window(
        &self,
        m: &MultimediaObject,
        from: TimePoint,
        duration: TimeDelta,
    ) -> Result<AudioBuffer, ComposeError> {
        let out_system = TimeSystem::from_hz(self.sample_rate as i64);
        let out_frames = out_system
            .seconds_to_tick_floor(TimePoint::ZERO + duration)
            .max(0) as usize;
        let mut out = AudioBuffer::silence(self.channels, out_frames);
        let window_end = from + duration;
        for c in m.components() {
            if c.kind != ComponentKind::Audio {
                continue;
            }
            let ov_start = c.interval.start().max(from);
            let ov_end = c.end().min(window_end);
            if ov_start >= ov_end {
                continue;
            }
            let rate = self.expander.audio_rate(&c.media)?;
            if rate != self.sample_rate {
                return Err(ComposeError::BadPlacement {
                    detail: format!(
                        "component `{}` at {rate} Hz but composer mixes at {} Hz \
                         (insert a resampling derivation)",
                        c.name, self.sample_rate
                    ),
                });
            }
            let comp_len = self.expander.audio_len(&c.media)?;
            let local_from = out_system
                .seconds_to_tick_floor(TimePoint::ZERO + (ov_start - c.interval.start()))
                .max(0) as usize;
            let want = out_system
                .seconds_to_tick_floor(TimePoint::ZERO + (ov_end - ov_start))
                .max(0) as usize;
            let take = want.min(comp_len.saturating_sub(local_from));
            if take == 0 {
                continue;
            }
            let pulled = self.expander.pull_audio(&c.media, local_from, take)?;
            let conformed = conform_channels(&pulled, self.channels);
            // Mix into the output at the right offset.
            let out_offset = out_system
                .seconds_to_tick_floor(TimePoint::ZERO + (ov_start - from))
                .max(0) as usize;
            mix_at(&mut out, &conformed, out_offset);
        }
        Ok(out)
    }
}

/// Nearest-neighbour blit of `src` scaled into `dst` at `(x, y, w, h)`,
/// clipped to the canvas.
fn blit_scaled(src: &Frame, dst: &mut Frame, x: i32, y: i32, w: u32, h: u32) {
    if w == 0 || h == 0 || src.width() == 0 || src.height() == 0 {
        return;
    }
    for dy in 0..h {
        let ty = y + dy as i32;
        if ty < 0 || ty as u32 >= dst.height() {
            continue;
        }
        let sy = (dy as u64 * src.height() as u64 / h as u64) as u32;
        for dx in 0..w {
            let tx = x + dx as i32;
            if tx < 0 || tx as u32 >= dst.width() {
                continue;
            }
            let sx = (dx as u64 * src.width() as u64 / w as u64) as u32;
            dst.set_rgb(tx as u32, ty as u32, src.get_rgb(sx, sy));
        }
    }
}

/// Converts a buffer to `channels` channels (duplicate or average).
fn conform_channels(buf: &AudioBuffer, channels: u16) -> AudioBuffer {
    if buf.channels() == channels {
        return buf.clone();
    }
    let mut out = AudioBuffer::silence(channels, buf.frames());
    for i in 0..buf.frames() {
        // Average source channels, then replicate.
        let mut acc = 0i32;
        for c in 0..buf.channels() {
            acc += buf.sample(i, c) as i32;
        }
        let v = (acc / buf.channels() as i32) as i16;
        for c in 0..channels {
            out.set_sample(i, c, v);
        }
    }
    out
}

/// Saturating mix of `src` into `dst` starting at frame `offset`.
fn mix_at(dst: &mut AudioBuffer, src: &AudioBuffer, offset: usize) {
    debug_assert_eq!(dst.channels(), src.channels());
    let channels = dst.channels();
    let n = src.frames().min(dst.frames().saturating_sub(offset));
    for i in 0..n {
        for c in 0..channels {
            let mixed = dst.sample(offset + i, c) as i32 + src.sample(i, c) as i32;
            dst.set_sample(
                offset + i,
                c,
                mixed.clamp(i16::MIN as i32, i16::MAX as i32) as i16,
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Component, Region};
    use tbm_derive::{AudioClip, MediaValue, VideoClip};
    use tbm_media::color::Rgb;
    use tbm_media::gen::AudioSignal;

    fn solid_clip(color: Rgb, n: usize) -> MediaValue {
        MediaValue::Video(VideoClip::new(
            vec![Frame::filled(16, 12, PixelFormat::Rgb24, color); n],
            TimeSystem::PAL,
        ))
    }

    fn setup() -> (Expander, MultimediaObject) {
        let mut e = Expander::new();
        e.add_source("red", solid_clip(Rgb::new(220, 0, 0), 50));
        e.add_source("blue", solid_clip(Rgb::new(0, 0, 220), 50));
        let tone = AudioSignal::Sine {
            hz: 440.0,
            amplitude: 8000,
        }
        .generate(0, 44100, 44100, 1);
        e.add_source("tone", MediaValue::Audio(AudioClip::new(tone, 44100)));

        let mut m = MultimediaObject::new("m");
        m.add_component(
            Component::new(
                "bg",
                ComponentKind::Video,
                Node::source("red"),
                TimePoint::ZERO,
                TimeDelta::from_secs(2),
            )
            .unwrap(),
        )
        .unwrap();
        m.add_component(
            Component::new(
                "pip",
                ComponentKind::Video,
                Node::source("blue"),
                TimePoint::from_secs(1),
                TimeDelta::from_secs(1),
            )
            .unwrap()
            .in_region(Region::new(2, 2, 8, 6).at_layer(1)),
        )
        .unwrap();
        m.add_component(
            Component::new(
                "narration",
                ComponentKind::Audio,
                Node::source("tone"),
                TimePoint::ZERO,
                TimeDelta::from_secs(1),
            )
            .unwrap(),
        )
        .unwrap();
        (e, m)
    }

    #[test]
    fn background_fills_canvas() {
        let (e, m) = setup();
        let composer = Composer::new(&e, 32, 24);
        let f = composer
            .render_video_frame(&m, TimePoint::from_seconds(tbm_time::Rational::new(1, 2)))
            .unwrap();
        // Before the PiP starts: all red.
        let p = f.get_rgb(16, 12);
        assert!(p.r > 180 && p.b < 40, "{p:?}");
    }

    #[test]
    fn picture_in_picture_layers() {
        let (e, m) = setup();
        let composer = Composer::new(&e, 32, 24);
        let f = composer
            .render_video_frame(&m, TimePoint::from_seconds(tbm_time::Rational::new(3, 2)))
            .unwrap();
        // Inside the region: blue; outside: red.
        let inside = f.get_rgb(5, 5);
        let outside = f.get_rgb(20, 12);
        assert!(inside.b > 180, "{inside:?}");
        assert!(outside.r > 180, "{outside:?}");
    }

    #[test]
    fn after_all_components_canvas_is_black() {
        let (e, m) = setup();
        let composer = Composer::new(&e, 32, 24);
        let f = composer
            .render_video_frame(&m, TimePoint::from_secs(5))
            .unwrap();
        let p = f.get_rgb(10, 10);
        assert_eq!((p.r, p.g, p.b), (0, 0, 0));
    }

    #[test]
    fn audio_mix_covers_active_window_only() {
        let (e, m) = setup();
        let composer = Composer::new(&e, 32, 24).with_audio(44100, 2);
        // Window [0.5 s, 1.5 s): narration active only in the first half.
        let buf = composer
            .mix_audio_window(
                &m,
                TimePoint::from_seconds(tbm_time::Rational::new(1, 2)),
                TimeDelta::from_secs(1),
            )
            .unwrap();
        assert_eq!(buf.frames(), 44100);
        assert_eq!(buf.channels(), 2);
        let first_half = buf.slice_frames(0, 22000);
        let second_half = buf.slice_frames(22100, 44100);
        assert!(first_half.peak() > 4000);
        assert_eq!(second_half.peak(), 0);
    }

    #[test]
    fn rate_mismatch_is_reported() {
        let (mut e, m) = setup();
        // Replace tone with a 22 kHz source.
        let tone = AudioSignal::Sine {
            hz: 440.0,
            amplitude: 8000,
        }
        .generate(0, 22050, 22050, 1);
        e.add_source("tone", MediaValue::Audio(AudioClip::new(tone, 22050)));
        let composer = Composer::new(&e, 32, 24);
        let err = composer
            .mix_audio_window(&m, TimePoint::ZERO, TimeDelta::from_secs(1))
            .unwrap_err();
        assert!(matches!(err, ComposeError::BadPlacement { .. }));
    }

    #[test]
    fn resampling_derivation_fixes_rate_mismatch() {
        // The error message suggests inserting a resampling derivation;
        // verify that actually works.
        let (mut e, mut m) = setup();
        let tone = AudioSignal::Sine {
            hz: 440.0,
            amplitude: 8000,
        }
        .generate(0, 22050, 22050, 1);
        e.add_source("tone22", MediaValue::Audio(AudioClip::new(tone, 22050)));
        m.add_component(
            Component::new(
                "narration22",
                ComponentKind::Audio,
                Node::derive(
                    tbm_derive::Op::AudioResample { to_rate: 44100 },
                    vec![Node::source("tone22")],
                ),
                TimePoint::ZERO,
                TimeDelta::from_secs(1),
            )
            .unwrap(),
        )
        .unwrap();
        let composer = Composer::new(&e, 32, 24);
        let buf = composer
            .mix_audio_window(&m, TimePoint::ZERO, TimeDelta::from_millis(100))
            .unwrap();
        assert!(buf.peak() > 4000);
    }

    #[test]
    fn mono_conforms_to_stereo() {
        let (e, m) = setup();
        let composer = Composer::new(&e, 32, 24).with_audio(44100, 2);
        let buf = composer
            .mix_audio_window(&m, TimePoint::ZERO, TimeDelta::from_millis(100))
            .unwrap();
        // Both channels carry the mono tone.
        assert!(buf.slice_frames(100, 4000).peak() > 4000);
        assert_eq!(buf.sample(500, 0), buf.sample(500, 1));
    }
}
