//! Multimedia objects: temporally composed components plus sync constraints.

use crate::{Component, ComposeError};
use tbm_time::{AllenRelation, Interval, TimeDelta, TimePoint, Timecode};

/// A declarative synchronization requirement between two components —
/// the "temporal correlations" of §2.2 ("audio elements must be
/// synchronized with visual elements"), expressed in Allen's algebra and
/// checked against concrete placements.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SyncConstraint {
    /// First component name.
    pub a: String,
    /// Second component name.
    pub b: String,
    /// Required relation of `a` to `b`.
    pub relation: AllenRelation,
}

/// The result of composition (Definition 7): named components with temporal
/// (and optionally spatial) placements, plus sync constraints.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MultimediaObject {
    name: String,
    components: Vec<Component>,
    constraints: Vec<SyncConstraint>,
}

impl MultimediaObject {
    /// Creates an empty multimedia object.
    pub fn new(name: &str) -> MultimediaObject {
        MultimediaObject {
            name: name.to_owned(),
            components: Vec::new(),
            constraints: Vec::new(),
        }
    }

    /// The object's name (Fig. 4 calls it `m`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Adds a component via temporal composition; names must be unique.
    pub fn add_component(&mut self, component: Component) -> Result<(), ComposeError> {
        if self.components.iter().any(|c| c.name == component.name) {
            return Err(ComposeError::DuplicateComponent {
                name: component.name.clone(),
            });
        }
        self.components.push(component);
        Ok(())
    }

    /// Adds a synchronization constraint.
    pub fn add_constraint(
        &mut self,
        a: &str,
        relation: AllenRelation,
        b: &str,
    ) -> Result<(), ComposeError> {
        self.component(a)?;
        self.component(b)?;
        self.constraints.push(SyncConstraint {
            a: a.to_owned(),
            b: b.to_owned(),
            relation,
        });
        Ok(())
    }

    /// Looks up a component.
    pub fn component(&self, name: &str) -> Result<&Component, ComposeError> {
        self.components
            .iter()
            .find(|c| c.name == name)
            .ok_or_else(|| ComposeError::NoSuchComponent {
                name: name.to_owned(),
            })
    }

    /// All components, in insertion order.
    pub fn components(&self) -> &[Component] {
        &self.components
    }

    /// All sync constraints.
    pub fn constraints(&self) -> &[SyncConstraint] {
        &self.constraints
    }

    /// The object's total presentation interval (span of all components).
    pub fn interval(&self) -> Option<Interval> {
        let mut iter = self.components.iter().map(|c| c.interval);
        let first = iter.next()?;
        Some(iter.fold(first, |acc, iv| acc.span(iv)))
    }

    /// The object's total duration.
    pub fn duration(&self) -> TimeDelta {
        self.interval()
            .map(|iv| iv.duration())
            .unwrap_or(TimeDelta::ZERO)
    }

    /// Components active at time `t`, in insertion order.
    pub fn active_at(&self, t: TimePoint) -> Vec<&Component> {
        self.components.iter().filter(|c| c.active_at(t)).collect()
    }

    /// Verifies every sync constraint against the concrete placements.
    pub fn validate(&self) -> Result<(), ComposeError> {
        for sc in &self.constraints {
            let a = self.component(&sc.a)?;
            let b = self.component(&sc.b)?;
            let actual = AllenRelation::classify(a.interval, b.interval);
            if actual != sc.relation {
                return Err(ComposeError::SyncViolation {
                    a: sc.a.clone(),
                    b: sc.b.clone(),
                    required: sc.relation,
                    actual,
                });
            }
        }
        Ok(())
    }

    /// Translates every component by `delta` (the whole object moves on a
    /// parent timeline — composition composes).
    pub fn translate(&mut self, delta: TimeDelta) {
        for c in &mut self.components {
            c.interval = c.interval.translate(delta);
        }
    }

    /// Renders a Fig. 4(b)-style timeline diagram: one row per component,
    /// with minute:second tick labels.
    pub fn timeline_diagram(&self, columns: usize) -> String {
        let Some(total) = self.interval() else {
            return format!("{} (empty)\n", self.name);
        };
        let columns = columns.max(10);
        let start = total.start();
        let dur = total.duration().seconds();
        if dur.is_zero() {
            return format!("{} (instantaneous)\n", self.name);
        }
        let col_of = |t: TimePoint| -> usize {
            let frac = (t - start).seconds() / dur;
            let c = (frac * tbm_time::Rational::from(columns as i64)).floor();
            (c.max(0) as usize).min(columns)
        };
        let name_width = self
            .components
            .iter()
            .map(|c| c.name.len())
            .max()
            .unwrap_or(4)
            .max(4);
        let mut out = String::new();
        for c in self.components.iter().rev() {
            let c0 = col_of(c.interval.start());
            let c1 = col_of(c.interval.end()).max(c0 + 1);
            let mut row = vec![' '; columns];
            for cell in row.iter_mut().take(c1.min(columns)).skip(c0) {
                *cell = '█';
            }
            out.push_str(&format!(
                "{:>width$} |{}|\n",
                c.name,
                row.iter().collect::<String>(),
                width = name_width
            ));
        }
        // Tick labels at the span boundaries of each component.
        let mut marks: Vec<TimePoint> = Vec::new();
        marks.push(total.start());
        marks.push(total.end());
        for c in &self.components {
            marks.push(c.interval.start());
            marks.push(c.interval.end());
        }
        marks.sort();
        marks.dedup();
        let mut label_row = vec![' '; columns + name_width + 16];
        for m in marks {
            let label = Timecode::new(m).minutes_seconds();
            let col = name_width + 2 + col_of(m);
            for (i, ch) in label.chars().enumerate() {
                if col + i < label_row.len() {
                    label_row[col + i] = ch;
                }
            }
        }
        out.push_str(label_row.iter().collect::<String>().trim_end());
        out.push('\n');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ComponentKind;
    use tbm_derive::Node;

    fn comp(name: &str, start: i64, dur: i64) -> Component {
        Component::new(
            name,
            if name.starts_with("audio") {
                ComponentKind::Audio
            } else {
                ComponentKind::Video
            },
            Node::source(name),
            TimePoint::from_secs(start),
            TimeDelta::from_secs(dur),
        )
        .unwrap()
    }

    /// Fig. 4: m has audio1 (0:00–2:10), audio2 (0:00–1:00) and video3
    /// (0:00–2:10).
    fn fig4_object() -> MultimediaObject {
        let mut m = MultimediaObject::new("m");
        m.add_component(comp("audio1", 0, 130)).unwrap();
        m.add_component(comp("audio2", 0, 60)).unwrap();
        m.add_component(comp("video3", 0, 130)).unwrap();
        m
    }

    #[test]
    fn fig4_span_and_duration() {
        let m = fig4_object();
        assert_eq!(m.duration(), TimeDelta::from_secs(130)); // 2:10
        assert_eq!(m.components().len(), 3);
        assert_eq!(m.active_at(TimePoint::from_secs(30)).len(), 3);
        assert_eq!(m.active_at(TimePoint::from_secs(90)).len(), 2); // audio2 over
    }

    #[test]
    fn duplicate_components_rejected() {
        let mut m = fig4_object();
        assert!(matches!(
            m.add_component(comp("audio1", 0, 5)),
            Err(ComposeError::DuplicateComponent { .. })
        ));
    }

    #[test]
    fn sync_constraints_validate() {
        let mut m = fig4_object();
        // audio1 equals video3; audio2 starts video3.
        m.add_constraint("audio1", AllenRelation::Equals, "video3")
            .unwrap();
        m.add_constraint("audio2", AllenRelation::Starts, "video3")
            .unwrap();
        assert!(m.validate().is_ok());
        // A wrong constraint is caught.
        m.add_constraint("audio2", AllenRelation::After, "video3")
            .unwrap();
        let err = m.validate().unwrap_err();
        assert!(matches!(err, ComposeError::SyncViolation { .. }));
        // Constraint on a missing component is rejected at insertion.
        assert!(m
            .add_constraint("ghost", AllenRelation::Before, "video3")
            .is_err());
    }

    #[test]
    fn translate_moves_everything() {
        let mut m = fig4_object();
        m.translate(TimeDelta::from_secs(10));
        let iv = m.interval().unwrap();
        assert_eq!(iv.start(), TimePoint::from_secs(10));
        assert_eq!(iv.end(), TimePoint::from_secs(140));
        assert!(m.validate().is_ok());
    }

    #[test]
    fn timeline_diagram_shows_rows_and_marks() {
        let m = fig4_object();
        let d = m.timeline_diagram(40);
        assert!(d.contains("video3"), "{d}");
        assert!(d.contains("audio1"), "{d}");
        assert!(d.contains("audio2"), "{d}");
        // Fig. 4(b) marks: 0:00, 1:00, 2:10 label the boundaries.
        assert!(d.contains("0:00"), "{d}");
        assert!(d.contains("2:10"), "{d}");
        // audio2's bar is roughly half of audio1's.
        let bars: Vec<usize> = d
            .lines()
            .filter(|l| l.contains('|'))
            .map(|l| l.matches('█').count())
            .collect();
        assert_eq!(bars.len(), 3);
    }

    #[test]
    fn empty_object() {
        let m = MultimediaObject::new("empty");
        assert_eq!(m.duration(), TimeDelta::ZERO);
        assert!(m.interval().is_none());
        assert!(m.timeline_diagram(20).contains("empty"));
        assert!(m.validate().is_ok());
    }
}
