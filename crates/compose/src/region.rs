//! Spatial composition: presentation-plane regions.
//!
//! "Spatial composition … deals with positioning objects in a 2D or 3D
//! space. An example would be placing an image within a page of text or
//! placing graphical objects in a scene." A [`Region`] positions a
//! component in the output plane; layers resolve stacking.

use std::fmt;

/// A placement rectangle in the output plane, with a stacking layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Region {
    /// Left edge (may be negative: partially off-screen).
    pub x: i32,
    /// Top edge.
    pub y: i32,
    /// Width in pixels.
    pub width: u32,
    /// Height in pixels.
    pub height: u32,
    /// Stacking layer: higher layers draw over lower ones.
    pub layer: i32,
}

impl Region {
    /// Creates a region at layer 0.
    pub fn new(x: i32, y: i32, width: u32, height: u32) -> Region {
        Region {
            x,
            y,
            width,
            height,
            layer: 0,
        }
    }

    /// Sets the stacking layer.
    pub fn at_layer(mut self, layer: i32) -> Region {
        self.layer = layer;
        self
    }

    /// Right edge (exclusive).
    pub fn right(&self) -> i32 {
        self.x + self.width as i32
    }

    /// Bottom edge (exclusive).
    pub fn bottom(&self) -> i32 {
        self.y + self.height as i32
    }

    /// `true` when the two regions share area.
    pub fn overlaps(&self, other: &Region) -> bool {
        self.x < other.right()
            && other.x < self.right()
            && self.y < other.bottom()
            && other.y < self.bottom()
    }

    /// Classifies the spatial relation of `self` to `other`.
    pub fn relation_to(&self, other: &Region) -> SpatialRelation {
        if self.right() <= other.x {
            SpatialRelation::LeftOf
        } else if other.right() <= self.x {
            SpatialRelation::RightOf
        } else if self.bottom() <= other.y {
            SpatialRelation::Above
        } else if other.bottom() <= self.y {
            SpatialRelation::Below
        } else if self.x <= other.x
            && self.y <= other.y
            && other.right() <= self.right()
            && other.bottom() <= self.bottom()
        {
            SpatialRelation::Contains
        } else if other.x <= self.x
            && other.y <= self.y
            && self.right() <= other.right()
            && self.bottom() <= other.bottom()
        {
            SpatialRelation::Inside
        } else {
            SpatialRelation::Overlapping
        }
    }
}

impl fmt::Display for Region {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "({}, {}) {}x{} @layer {}",
            self.x, self.y, self.width, self.height, self.layer
        )
    }
}

/// Qualitative 2-D relations between regions ("relative positioning during
/// presentation").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpatialRelation {
    /// Entirely to the left (no horizontal overlap).
    LeftOf,
    /// Entirely to the right.
    RightOf,
    /// Entirely above.
    Above,
    /// Entirely below.
    Below,
    /// Contains the other region.
    Contains,
    /// Inside the other region.
    Inside,
    /// Partial overlap.
    Overlapping,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edges_and_overlap() {
        let a = Region::new(0, 0, 10, 10);
        let b = Region::new(5, 5, 10, 10);
        let c = Region::new(10, 0, 5, 5);
        assert_eq!(a.right(), 10);
        assert_eq!(a.bottom(), 10);
        assert!(a.overlaps(&b));
        assert!(!a.overlaps(&c)); // touching edges don't overlap
    }

    #[test]
    fn qualitative_relations() {
        let a = Region::new(0, 0, 10, 10);
        assert_eq!(
            a.relation_to(&Region::new(20, 0, 5, 5)),
            SpatialRelation::LeftOf
        );
        assert_eq!(
            Region::new(20, 0, 5, 5).relation_to(&a),
            SpatialRelation::RightOf
        );
        assert_eq!(
            a.relation_to(&Region::new(0, 20, 5, 5)),
            SpatialRelation::Above
        );
        assert_eq!(
            Region::new(0, 20, 5, 5).relation_to(&a),
            SpatialRelation::Below
        );
        assert_eq!(
            a.relation_to(&Region::new(2, 2, 4, 4)),
            SpatialRelation::Contains
        );
        assert_eq!(
            Region::new(2, 2, 4, 4).relation_to(&a),
            SpatialRelation::Inside
        );
        assert_eq!(
            a.relation_to(&Region::new(5, 5, 10, 10)),
            SpatialRelation::Overlapping
        );
    }

    #[test]
    fn layering_and_display() {
        let r = Region::new(1, 2, 3, 4).at_layer(7);
        assert_eq!(r.layer, 7);
        assert_eq!(r.to_string(), "(1, 2) 3x4 @layer 7");
    }

    #[test]
    fn negative_positions_allowed() {
        let r = Region::new(-5, -5, 10, 10);
        assert_eq!(r.right(), 5);
        assert!(r.overlaps(&Region::new(0, 0, 2, 2)));
    }
}
