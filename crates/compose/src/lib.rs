//! # tbm-compose — multimedia composition
//!
//! Implements the paper's Definition 7:
//!
//! > *"Composition is the specification of temporal and/or spatial
//! > relationships between a group of media objects. The result of
//! > composition is called a multimedia object, the spatiotemporally related
//! > objects are called its components."*
//!
//! A [`MultimediaObject`] gathers [`Component`]s; each component carries a
//! *temporal* placement (an interval on the object's timeline — the Fig. 4
//! relationships c1, c2, c3) and optionally a *spatial* placement (a
//! [`Region`] in the presentation plane). [`SyncConstraint`]s express
//! declarative Allen-relation requirements between components, checked
//! against the concrete placements.
//!
//! [`Composer`] realizes a multimedia object for presentation: it resolves
//! component media through a [`tbm_derive::Expander`] (components may be
//! derived objects — Fig. 4's `video3`) and produces composited video frames
//! and mixed audio windows, completing the paper's Fig. 5 stack:
//! BLOB → interpretation → derivation → composition.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod component;
mod error;
mod multimedia;
mod region;
mod render;

pub use component::{Component, ComponentKind};
pub use error::ComposeError;
pub use multimedia::{MultimediaObject, SyncConstraint};
pub use region::{Region, SpatialRelation};
pub use render::Composer;
