//! Error type for the composition layer.

use std::fmt;
use tbm_derive::DeriveError;
use tbm_time::AllenRelation;

/// Errors raised while composing or realizing multimedia objects.
#[derive(Debug)]
pub enum ComposeError {
    /// A component name was reused within one multimedia object.
    DuplicateComponent {
        /// The conflicting name.
        name: String,
    },
    /// A referenced component does not exist.
    NoSuchComponent {
        /// The requested name.
        name: String,
    },
    /// A synchronization constraint is violated by the concrete placements.
    SyncViolation {
        /// First component.
        a: String,
        /// Second component.
        b: String,
        /// Required relation.
        required: AllenRelation,
        /// Relation actually holding.
        actual: AllenRelation,
    },
    /// A component's media could not be expanded.
    Derive(DeriveError),
    /// A component's media type does not match its declared kind.
    KindMismatch {
        /// The component.
        name: String,
        /// Declared kind.
        declared: &'static str,
        /// Expanded media type.
        found: &'static str,
    },
    /// Invalid placement or geometry parameters.
    BadPlacement {
        /// What was wrong.
        detail: String,
    },
}

impl fmt::Display for ComposeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ComposeError::DuplicateComponent { name } => {
                write!(f, "component `{name}` already present")
            }
            ComposeError::NoSuchComponent { name } => write!(f, "no component named `{name}`"),
            ComposeError::SyncViolation {
                a,
                b,
                required,
                actual,
            } => write!(
                f,
                "sync constraint violated: `{a}` must be {required} `{b}`, but is {actual}"
            ),
            ComposeError::Derive(e) => write!(f, "component expansion failed: {e}"),
            ComposeError::KindMismatch {
                name,
                declared,
                found,
            } => write!(
                f,
                "component `{name}` declared {declared} but expands to {found}"
            ),
            ComposeError::BadPlacement { detail } => write!(f, "bad placement: {detail}"),
        }
    }
}

impl std::error::Error for ComposeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ComposeError::Derive(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DeriveError> for ComposeError {
    fn from(e: DeriveError) -> ComposeError {
        ComposeError::Derive(e)
    }
}
