//! Components of multimedia objects.

use crate::Region;
use tbm_derive::Node;
use tbm_time::{Interval, TimeDelta, TimePoint};

/// The presentation kind of a component.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ComponentKind {
    /// A video (or rendered) visual component.
    Video,
    /// An audio component.
    Audio,
}

impl ComponentKind {
    /// Name for diagnostics.
    pub fn name(self) -> &'static str {
        match self {
            ComponentKind::Video => "video",
            ComponentKind::Audio => "audio",
        }
    }
}

/// One spatiotemporally related media object inside a multimedia object.
///
/// The media itself is a derivation [`Node`] — non-derived components are
/// `Node::Source` leaves, derived ones (Fig. 4's `video3`) are full trees.
/// The temporal placement is the Fig. 4(a) relationship instance (c1, c2,
/// c3); the optional [`Region`] is its spatial counterpart.
#[derive(Debug, Clone, PartialEq)]
pub struct Component {
    /// The component's name within the multimedia object.
    pub name: String,
    /// Presentation kind.
    pub kind: ComponentKind,
    /// The media expression (source or derivation object).
    pub media: Node,
    /// Placement on the multimedia object's timeline.
    pub interval: Interval,
    /// Spatial placement for visual components (`None` = full frame).
    pub region: Option<Region>,
}

impl Component {
    /// Creates a component placed at `[start, start + duration)`.
    pub fn new(
        name: &str,
        kind: ComponentKind,
        media: Node,
        start: TimePoint,
        duration: TimeDelta,
    ) -> Option<Component> {
        Some(Component {
            name: name.to_owned(),
            kind,
            media,
            interval: Interval::new(start, duration).ok()?,
            region: None,
        })
    }

    /// Sets the spatial region, builder style.
    pub fn in_region(mut self, region: Region) -> Component {
        self.region = Some(region);
        self
    }

    /// The component's end time.
    pub fn end(&self) -> TimePoint {
        self.interval.end()
    }

    /// `true` if the component is active (being presented) at `t`.
    pub fn active_at(&self, t: TimePoint) -> bool {
        self.interval.contains(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_activity() {
        let c = Component::new(
            "video3",
            ComponentKind::Video,
            Node::source("video3"),
            TimePoint::from_secs(10),
            TimeDelta::from_secs(120),
        )
        .unwrap();
        assert!(c.active_at(TimePoint::from_secs(10)));
        assert!(c.active_at(TimePoint::from_secs(100)));
        assert!(!c.active_at(TimePoint::from_secs(130))); // half-open
        assert_eq!(c.end(), TimePoint::from_secs(130));
        assert!(c.region.is_none());
    }

    #[test]
    fn negative_duration_rejected() {
        assert!(Component::new(
            "x",
            ComponentKind::Audio,
            Node::source("x"),
            TimePoint::ZERO,
            TimeDelta::from_secs(-1),
        )
        .is_none());
    }

    #[test]
    fn region_builder() {
        let c = Component::new(
            "pip",
            ComponentKind::Video,
            Node::source("v"),
            TimePoint::ZERO,
            TimeDelta::from_secs(1),
        )
        .unwrap()
        .in_region(Region::new(10, 10, 64, 48).at_layer(2));
        assert_eq!(c.region.unwrap().layer, 2);
        assert_eq!(ComponentKind::Video.name(), "video");
    }
}
