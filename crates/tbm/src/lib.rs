//! # tbm — *Data Modeling of Time-Based Media*, reproduced in Rust
//!
//! This umbrella crate re-exports the full stack of the reproduction of
//! Gibbs, Breiteneder & Tsichritzis, *Data Modeling of Time-Based Media*
//! (SIGMOD 1994), layered exactly as the paper's Figure 5:
//!
//! | layer | crate | paper concept |
//! |---|---|---|
//! | [`time`] | `tbm-time` | discrete time systems `D_f` (Def. 2) |
//! | [`core`] | `tbm-core` | media types, descriptors, timed streams (Defs. 1, 3; Fig. 1) |
//! | [`blob`] | `tbm-blob` | BLOBs (Def. 4) |
//! | [`media`] | `tbm-media` | concrete media elements + synthetic capture |
//! | [`codec`] | `tbm-codec` | the compression that creates the modeling issues of §2.2 |
//! | [`interp`] | `tbm-interp` | interpretation (Def. 5; Fig. 2) |
//! | [`mod@derive`] | `tbm-derive` | derivation (Def. 6; Table 1, Fig. 3) |
//! | [`compose`] | `tbm-compose` | composition (Def. 7; Fig. 4) |
//! | [`player`] | `tbm-player` | playback timing/jitter simulation (§2.2, §5) |
//! | [`db`] | `tbm-db` | the multimedia database facade (§1.2 queries) |
//! | [`serve`] | `tbm-serve` | multi-session delivery: admission control, segment cache, sharded catalogs |
//! | [`obs`] | `tbm-obs` | observability: deterministic tracing, metrics, miss attribution |
//! | [`query`] | `tbm-query` | model-compressed telemetry plane + typed queries over catalogs, sessions and metrics |
//!
//! ## Quickstart
//!
//! ```
//! use tbm::prelude::*;
//!
//! // Capture ten PAL frames + CD audio into a BLOB, Fig. 2 style.
//! let mut db = MediaDb::new();
//! let frames = tbm::media::gen::render_frames(
//!     tbm::media::gen::VideoPattern::MovingBar, 0, 10, 64, 48);
//! let audio = tbm::media::gen::AudioSignal::Sine { hz: 440.0, amplitude: 9000 }
//!     .generate(0, 10 * 1764, 44100, 2);
//! let cap = tbm::interp::capture::capture_av_interleaved(
//!     db.store_mut(), &frames, &audio, 1764, TimeSystem::PAL,
//!     tbm::codec::dct::DctParams::default(), None).unwrap();
//! db.register_interpretation(cap.interpretation).unwrap();
//!
//! // Non-destructive edit: a derivation object, not a copy.
//! let edit = Node::derive(
//!     Op::VideoEdit { cuts: vec![EditCut { input: 0, from: 2, to: 8 }] },
//!     vec![Node::source("video1")]);
//! db.create_derived("teaser", edit).unwrap();
//! match db.materialize("teaser").unwrap() {
//!     MediaValue::Video(v) => assert_eq!(v.len(), 6),
//!     _ => unreachable!(),
//! }
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub use tbm_blob as blob;
pub use tbm_codec as codec;
pub use tbm_compose as compose;
pub use tbm_core as core;
pub use tbm_db as db;
pub use tbm_derive as derive;
pub use tbm_interp as interp;
pub use tbm_media as media;
pub use tbm_obs as obs;
pub use tbm_player as player;
pub use tbm_query as query;
pub use tbm_serve as serve;
pub use tbm_time as time;

/// The most commonly used items, for glob import.
pub mod prelude {
    pub use tbm_blob::{
        is_transient, BlobStore, BreakerState, ByteSpan, FaultPlan, FaultStats, FaultyBlobStore,
        FileBlobStore, MemBlobStore, OpenReport, ReadCtx, RetryPolicy, RetryReport, SkipReason,
        TierConfig, TierStats, TieredBlobStore,
    };
    pub use tbm_compose::{Component, ComponentKind, Composer, MultimediaObject, Region};
    pub use tbm_core::{
        classify, crc32, keys, AudioQuality, Crc32, InterpretationId, MediaDescriptor, MediaKind,
        MediaType, QualityFactor, SessionId, StreamCategory, TimedStream, TimedTuple, VideoQuality,
    };
    pub use tbm_db::{MediaDb, SalvageReport, SectionSalvage, CATALOG_TMP};
    pub use tbm_derive::{EditCut, Expander, MediaValue, Node, Op, WipeDirection};
    pub use tbm_interp::{Interpretation, StreamInterp, VerifyReport};
    pub use tbm_obs::{
        attribute, chrome_trace, text_timeline, AttributionReport, Histogram, MetricsRegistry,
        MissCause, TraceSnapshot, Tracer,
    };
    pub use tbm_player::{
        CostModel, DegradationPolicy, ElementFate, PlaybackSim, ResilientPlayer, ResilientReport,
    };
    pub use tbm_query::{
        Action, Aggregate, AlertKind, AlertTransition, BurnPoint, ErrorBound, FleetTelemetry,
        GroupBy, GroupKey, HealthMonitor, Incident, IncidentReport, Metric, Playbook, Predicate,
        Query, QueryCtx, QueryError, Remediator, Selector, SeriesKey, SloObjective, SloRule,
        Source, Table, TelemetryStore, BURN_CAP,
    };
    pub use tbm_serve::{
        shard_of, skew_percent, AdmissionPolicy, AdmitDecision, CacheStats, Capacity, Fleet,
        FleetError, FleetStats, Link, NodeFaultPlan, NodeStats, PlacementService, RejectReason,
        Request, Response, SegmentCache, ServeError, Server, ServerStats, Session, SessionState,
        SessionStats, ShardError, ShardMove, ShardedDb, ShardedServer, ShardedStats,
    };
    pub use tbm_time::{
        AllenRelation, Interval, Rational, TimeDelta, TimePoint, TimeSystem, Timecode,
    };
}
