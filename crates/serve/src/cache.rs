//! The shared segment cache: an LRU, byte-budgeted cache over BLOB reads.
//!
//! The millions-of-users workload shape is many sessions playing the *same*
//! hot object at slightly different offsets. Without a cache every session
//! multiplies storage reads; with one, the first session's fetch of a
//! placement span serves everyone behind it. Keys are whole placement spans
//! (`(BlobId, ByteSpan)`) — exactly the units interpretation tables address
//! and the units the scheduler fetches, so there is no partial-overlap
//! bookkeeping.
//!
//! Only *verified* bytes are inserted (the server checks per-layer CRCs
//! before caching), which gives the cache a second job: it absorbs storage
//! faults. A span that survived checksum verification once is served intact
//! to every later session even if the underlying store would corrupt the
//! re-read.
//!
//! Eviction is strict least-recently-used over an exact byte budget,
//! implemented with a recency sequence number so behaviour is deterministic
//! and independent of hash-map iteration order.

use std::collections::{BTreeMap, HashMap};
use tbm_blob::ByteSpan;
use tbm_core::BlobId;

/// Cache key: one placement span of one BLOB.
type Key = (u64, u64, u64);

fn key(blob: BlobId, span: ByteSpan) -> Key {
    (blob.raw(), span.offset, span.len)
}

/// Hit/miss/eviction counters of a [`SegmentCache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that fell through to storage.
    pub misses: u64,
    /// Segments evicted to stay within the byte budget.
    pub evictions: u64,
    /// Segments inserted.
    pub insertions: u64,
    /// Bytes currently resident.
    pub bytes_cached: u64,
    /// Bytes served from the cache instead of storage, cumulatively.
    pub bytes_served: u64,
}

impl CacheStats {
    /// Total lookups (hits + misses).
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses
    }

    /// Fraction of lookups answered from the cache (0.0 when idle). The
    /// canonical name; used by the deadline-miss attribution report.
    pub fn hit_rate(&self) -> f64 {
        if self.lookups() == 0 {
            0.0
        } else {
            self.hits as f64 / self.lookups() as f64
        }
    }

    /// Alias of [`CacheStats::hit_rate`], kept for existing callers.
    pub fn hit_ratio(&self) -> f64 {
        self.hit_rate()
    }

    /// Adds `other`'s counters into this one — the cross-shard rollup: N
    /// per-shard caches report as one fleet-wide cache. `bytes_cached` adds
    /// too (total resident bytes across all shards' budgets).
    pub fn absorb(&mut self, other: &CacheStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.evictions += other.evictions;
        self.insertions += other.insertions;
        self.bytes_cached += other.bytes_cached;
        self.bytes_served += other.bytes_served;
    }
}

#[derive(Debug)]
struct CacheEntry {
    data: Vec<u8>,
    seq: u64,
}

/// An LRU, byte-budgeted cache of BLOB placement spans shared by every
/// session of a [`crate::Server`].
///
/// A budget of zero disables caching: every lookup misses and nothing is
/// retained — the cache-off baseline of the §serve experiments.
#[derive(Debug)]
pub struct SegmentCache {
    budget: u64,
    bytes: u64,
    seq: u64,
    generation: u64,
    entries: HashMap<Key, CacheEntry>,
    /// Recency order: sequence number → key; the smallest sequence is the
    /// least recently used segment.
    lru: BTreeMap<u64, Key>,
    hits: u64,
    misses: u64,
    evictions: u64,
    insertions: u64,
    bytes_served: u64,
}

impl SegmentCache {
    /// A cache holding at most `budget_bytes` bytes of segments.
    pub fn new(budget_bytes: u64) -> SegmentCache {
        SegmentCache {
            budget: budget_bytes,
            bytes: 0,
            seq: 0,
            generation: 0,
            entries: HashMap::new(),
            lru: BTreeMap::new(),
            hits: 0,
            misses: 0,
            evictions: 0,
            insertions: 0,
            bytes_served: 0,
        }
    }

    /// A zero-budget cache: every lookup misses (the cache-off baseline).
    pub fn disabled() -> SegmentCache {
        SegmentCache::new(0)
    }

    /// The byte budget.
    pub fn budget(&self) -> u64 {
        self.budget
    }

    /// `true` when the cache can hold anything at all.
    pub fn is_enabled(&self) -> bool {
        self.budget > 0
    }

    /// Bytes currently resident.
    pub fn bytes_cached(&self) -> u64 {
        self.bytes
    }

    /// A snapshot of the counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits,
            misses: self.misses,
            evictions: self.evictions,
            insertions: self.insertions,
            bytes_cached: self.bytes,
            bytes_served: self.bytes_served,
        }
    }

    /// Whether `span` of `blob` is resident (no counter or recency effect).
    pub fn contains(&self, blob: BlobId, span: ByteSpan) -> bool {
        self.entries.contains_key(&key(blob, span))
    }

    /// A counter that advances whenever the *set of resident spans* may
    /// have changed (insert, eviction, budget shrink, clear). Cache-aware
    /// admission uses it to decide when a session's residency-discounted
    /// storage charge is stale and must be repriced — unchanged generation
    /// means unchanged residency, so repricing can be skipped entirely.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Looks up a span, counting a hit (and refreshing its recency) or a
    /// miss. Returns the cached bytes on a hit.
    pub fn get(&mut self, blob: BlobId, span: ByteSpan) -> Option<&[u8]> {
        let k = key(blob, span);
        match self.entries.get_mut(&k) {
            Some(entry) => {
                self.hits += 1;
                self.bytes_served += span.len;
                self.lru.remove(&entry.seq);
                self.seq += 1;
                entry.seq = self.seq;
                self.lru.insert(self.seq, k);
                Some(&entry.data)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Inserts a span's bytes, evicting least-recently-used segments until
    /// the budget holds. Segments larger than the whole budget are not
    /// cached; re-inserting a resident span refreshes its bytes and recency.
    pub fn insert(&mut self, blob: BlobId, span: ByteSpan, data: Vec<u8>) {
        if data.len() as u64 > self.budget {
            return;
        }
        let k = key(blob, span);
        if let Some(old) = self.entries.remove(&k) {
            self.lru.remove(&old.seq);
            self.bytes -= old.data.len() as u64;
        } else {
            // A genuinely new span changes the resident set; a refresh of
            // an already-resident one does not.
            self.generation += 1;
        }
        self.bytes += data.len() as u64;
        self.seq += 1;
        self.lru.insert(self.seq, k);
        self.entries.insert(
            k,
            CacheEntry {
                data,
                seq: self.seq,
            },
        );
        self.insertions += 1;
        while self.bytes > self.budget {
            let (_, victim) = self
                .lru
                .pop_first()
                .expect("over budget implies a resident entry");
            let evicted = self.entries.remove(&victim).expect("lru and entries agree");
            self.bytes -= evicted.data.len() as u64;
            self.evictions += 1;
            self.generation += 1;
        }
    }

    /// Replaces the byte budget mid-run, returning the previous one. A
    /// shrink evicts least-recently-used segments until the new budget
    /// holds (counted as evictions); a grow takes effect immediately. The
    /// remediation plane's `GrowCache` action — and its rollback — land
    /// here.
    pub fn set_budget(&mut self, budget_bytes: u64) -> u64 {
        let prev = self.budget;
        self.budget = budget_bytes;
        while self.bytes > self.budget {
            let (_, victim) = self
                .lru
                .pop_first()
                .expect("over budget implies a resident entry");
            let evicted = self.entries.remove(&victim).expect("lru and entries agree");
            self.bytes -= evicted.data.len() as u64;
            self.evictions += 1;
            self.generation += 1;
        }
        prev
    }

    /// Drops every resident segment (counters are retained).
    pub fn clear(&mut self) {
        if !self.entries.is_empty() {
            self.generation += 1;
        }
        self.entries.clear();
        self.lru.clear();
        self.bytes = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(offset: u64, len: u64) -> ByteSpan {
        ByteSpan::new(offset, len)
    }

    #[test]
    fn miss_then_hit() {
        let mut c = SegmentCache::new(1024);
        let b = BlobId::new(1);
        assert!(c.get(b, span(0, 4)).is_none());
        c.insert(b, span(0, 4), vec![1, 2, 3, 4]);
        assert_eq!(c.get(b, span(0, 4)).unwrap(), &[1, 2, 3, 4]);
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.insertions), (1, 1, 1));
        assert_eq!(s.bytes_cached, 4);
        assert_eq!(s.bytes_served, 4);
        assert!((s.hit_ratio() - 0.5).abs() < 1e-12);
        assert_eq!(s.hit_rate(), s.hit_ratio());
    }

    #[test]
    fn hit_rate_is_zero_when_idle() {
        assert_eq!(CacheStats::default().hit_rate(), 0.0);
        let one_hit = CacheStats {
            hits: 3,
            misses: 1,
            ..CacheStats::default()
        };
        assert!((one_hit.hit_rate() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn distinct_spans_are_distinct_keys() {
        let mut c = SegmentCache::new(1024);
        let b = BlobId::new(1);
        c.insert(b, span(0, 4), vec![0; 4]);
        assert!(c.get(b, span(0, 8)).is_none(), "length is part of the key");
        assert!(c.get(b, span(4, 4)).is_none(), "offset is part of the key");
        assert!(c.get(BlobId::new(2), span(0, 4)).is_none());
    }

    #[test]
    fn lru_eviction_respects_recency_and_budget() {
        let mut c = SegmentCache::new(10);
        let b = BlobId::new(1);
        c.insert(b, span(0, 4), vec![0; 4]);
        c.insert(b, span(4, 4), vec![1; 4]);
        // Touch the first segment so the second is now least recent.
        assert!(c.get(b, span(0, 4)).is_some());
        // 4 + 4 + 4 > 10: inserting a third evicts span(4, 4).
        c.insert(b, span(8, 4), vec![2; 4]);
        assert!(c.contains(b, span(0, 4)));
        assert!(!c.contains(b, span(4, 4)));
        assert!(c.contains(b, span(8, 4)));
        assert_eq!(c.stats().evictions, 1);
        assert!(c.bytes_cached() <= 10);
    }

    #[test]
    fn oversized_segment_is_not_cached() {
        let mut c = SegmentCache::new(8);
        let b = BlobId::new(1);
        c.insert(b, span(0, 16), vec![0; 16]);
        assert!(!c.contains(b, span(0, 16)));
        assert_eq!(c.stats().insertions, 0);
        assert_eq!(c.bytes_cached(), 0);
    }

    #[test]
    fn disabled_cache_always_misses() {
        let mut c = SegmentCache::disabled();
        assert!(!c.is_enabled());
        let b = BlobId::new(1);
        c.insert(b, span(0, 4), vec![0; 4]);
        assert!(c.get(b, span(0, 4)).is_none());
        assert_eq!(c.stats().hits, 0);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn reinsert_refreshes_bytes_without_leaking_budget() {
        let mut c = SegmentCache::new(16);
        let b = BlobId::new(1);
        c.insert(b, span(0, 4), vec![0; 4]);
        c.insert(b, span(0, 4), vec![9; 4]);
        assert_eq!(c.bytes_cached(), 4);
        assert_eq!(c.get(b, span(0, 4)).unwrap(), &[9; 4]);
    }

    #[test]
    fn set_budget_shrink_evicts_lru_and_grow_is_immediate() {
        let mut c = SegmentCache::new(12);
        let b = BlobId::new(1);
        c.insert(b, span(0, 4), vec![0; 4]);
        c.insert(b, span(4, 4), vec![1; 4]);
        c.insert(b, span(8, 4), vec![2; 4]);
        assert!(c.get(b, span(0, 4)).is_some(), "refresh recency of first");
        assert_eq!(c.set_budget(8), 12);
        assert!(c.contains(b, span(0, 4)), "recently used survives");
        assert!(!c.contains(b, span(4, 4)), "LRU victim of the shrink");
        assert!(c.bytes_cached() <= 8);
        assert_eq!(c.set_budget(64), 8, "returns the shrunk budget");
        c.insert(b, span(16, 16), vec![3; 16]);
        assert!(c.contains(b, span(16, 16)), "grow takes effect at once");
    }

    #[test]
    fn generation_tracks_resident_set_changes() {
        let mut c = SegmentCache::new(8);
        let b = BlobId::new(1);
        assert_eq!(c.generation(), 0);
        c.insert(b, span(0, 4), vec![0; 4]);
        assert_eq!(c.generation(), 1, "new span advances");
        c.insert(b, span(0, 4), vec![9; 4]);
        assert_eq!(c.generation(), 1, "refresh does not");
        assert!(c.get(b, span(0, 4)).is_some());
        assert_eq!(c.generation(), 1, "hits do not");
        c.insert(b, span(4, 8), vec![1; 8]);
        assert_eq!(c.generation(), 3, "insert plus the eviction it forced");
        c.clear();
        assert_eq!(c.generation(), 4, "clear of a non-empty cache advances");
        c.clear();
        assert_eq!(c.generation(), 4, "clear of an empty cache does not");
    }

    #[test]
    fn clear_keeps_counters() {
        let mut c = SegmentCache::new(64);
        let b = BlobId::new(1);
        c.insert(b, span(0, 4), vec![0; 4]);
        assert!(c.get(b, span(0, 4)).is_some());
        c.clear();
        assert_eq!(c.bytes_cached(), 0);
        assert!(c.get(b, span(0, 4)).is_none());
        let s = c.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
    }
}
